#!/usr/bin/env python
"""Fail CI when an intra-repo markdown link points at nothing.

Scans every tracked ``*.md`` file (README, docs/, examples, ...) for
inline markdown links and reference definitions, resolves each relative
target against the linking file's directory, and reports targets that do
not exist. External schemes (http/https/mailto) and pure in-page anchors
(``#section``) are skipped; a ``path#fragment`` link is checked for the
path only.

Run:  python tools/check_docs_links.py
Exits nonzero listing every broken link, ``file:line`` first so editors
can jump straight to it.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: ``[text](target)`` inline links — target stops at the first unescaped
#: closing paren, optional ``"title"`` suffix stripped afterwards.
INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ``![alt](target)`` images — checked too; a missing figure is as broken
#: as a missing page.
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ``[ref]: target`` reference-style definitions at line start.
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> list[Path]:
    """Every tracked markdown file (falls back to rglob outside git)."""
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        files = [REPO / line for line in out.splitlines() if line]
    except (OSError, subprocess.CalledProcessError):
        files = list(REPO.rglob("*.md"))
    return sorted(f for f in files if f.is_file())


def targets_in(text: str) -> list[tuple[int, str]]:
    """(line, target) pairs for every link in one markdown document."""
    found = []
    for pattern in (INLINE_LINK, IMAGE_LINK, REF_DEF):
        for match in pattern.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            found.append((line, match.group(1)))
    return found


def broken_links(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for line, target in targets_in(text):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        if target_path.startswith("/"):
            resolved = REPO / target_path.lstrip("/")
        else:
            resolved = path.parent / target_path
        if not resolved.exists():
            rel = path.relative_to(REPO)
            problems.append(f"{rel}:{line}: broken link -> {target}")
    return problems


def main() -> int:
    files = markdown_files()
    problems = [issue for path in files for issue in broken_links(path)]
    if problems:
        print(f"{len(problems)} broken markdown link(s):")
        for issue in problems:
            print(f"  {issue}")
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
