"""In-repo PEP 517 build backend: setuptools minus the editable hooks.

The offline environment ships setuptools but not ``wheel``, and on
setuptools < 70 both the PEP 660 editable hooks and the stock
``prepare_metadata_for_build_wheel`` (via the ``dist_info`` command) shell
out to ``bdist_wheel``. This backend therefore

- omits ``build_editable``, so ``pip install -e . --no-build-isolation``
  falls back to the legacy ``setup.py develop`` path, which needs no
  ``wheel`` and picks up all ``[project]`` metadata from pyproject.toml
  (setuptools >= 61);
- implements ``prepare_metadata_for_build_wheel`` by running ``egg_info``
  and converting the result to a ``.dist-info`` by hand (PKG-INFO already
  is the METADATA format).

``build_wheel``/``build_sdist`` delegate to setuptools unchanged (wheel
builds still require the ``wheel`` package, as before).
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

from setuptools.build_meta import (  # noqa: F401
    build_sdist,
    build_wheel,
    get_requires_for_build_sdist,
    get_requires_for_build_wheel,
)

_WHEEL_FILE = """\
Wheel-Version: 1.0
Generator: fcad_build_backend (0.1)
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _safe(component: str) -> str:
    """Escape a name component for a dist-info dir (PEP 491)."""
    return re.sub(r"[^\w\d.]+", "_", component)


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    with tempfile.TemporaryDirectory() as tmp:
        subprocess.run(
            [sys.executable, "setup.py", "-q", "egg_info", "--egg-base", tmp],
            check=True,
        )
        egg_info = next(Path(tmp).glob("*.egg-info"))
        pkg_info = (egg_info / "PKG-INFO").read_text()
        entry_points_file = egg_info / "entry_points.txt"
        entry_points = (
            entry_points_file.read_text()
            if entry_points_file.exists()
            else None
        )

    fields = dict(
        line.split(": ", 1)
        for line in pkg_info.splitlines()
        if ": " in line and not line.startswith(" ")
    )
    name = _safe(fields["Name"])
    version = _safe(fields["Version"])
    dist_info = Path(metadata_directory) / f"{name}-{version}.dist-info"
    dist_info.mkdir(parents=True, exist_ok=True)
    (dist_info / "METADATA").write_text(pkg_info)
    (dist_info / "WHEEL").write_text(_WHEEL_FILE)
    if entry_points is not None:
        (dist_info / "entry_points.txt").write_text(entry_points)
    return dist_info.name
