#!/usr/bin/env python
"""Run a reduced benchmark suite and emit a machine-readable BENCH_*.json.

Two suites, one per CI smoke job, so the repo's performance trajectory is
comparable PR over PR:

- ``--suite dse`` (default) — the DSE convergence study at reduced size,
  serial vs parallel, written to ``BENCH_dse.json``. Exits nonzero if the
  parallel run is not bit-identical to the serial one.
- ``--suite serving`` — the avatar serving layer: explore a design once,
  deploy simulated replicas, and serve the *same* mixed-deadline workload
  under FIFO and EDF batching, then push the event-heap engine through a
  million-avatar diurnal session with autoscaling. Written to
  ``BENCH_serving.json`` with p99 latency, deadline-miss rate, and
  throughput per policy plus the engine's scale numbers. Exits nonzero if
  two sessions at the same seed are not bit-identical (the virtual
  clock's determinism guarantee), if the heap engine's counters diverge
  from the coroutine scheduler's on the shared workload, or if the scale
  session blows its wall-time budget.

Run:  PYTHONPATH=src python tools/bench_to_json.py [--suite serving] [--out F]
(or from anywhere: the script puts ``src/`` on ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.convergence import ConvergenceResult, run_convergence  # noqa: E402


def physical_core_count() -> int | None:
    """Physical cores from /proc/cpuinfo (``None`` where unreadable).

    ``os.cpu_count()`` reports hyperthreads; the speedup gate's story
    ("parallel should beat serial on a multi-core box") is about real
    cores, so the payload records both.
    """
    try:
        text = Path("/proc/cpuinfo").read_text()
    except OSError:
        return None
    cores: set[tuple[str, str]] = set()
    physical_id = "0"
    for line in text.splitlines():
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip()
        if key == "physical id":
            physical_id = value.strip()
        elif key == "core id":
            cores.add((physical_id, value.strip()))
    return len(cores) or None


def environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "physical_cores": physical_core_count(),
        # CI pins the parallel run's worker count through this variable;
        # recording it makes payloads from differently-pinned runners
        # distinguishable.
        "FCAD_BENCH_WORKERS": os.environ.get("FCAD_BENCH_WORKERS"),
    }


# ---------------------------------------------------------------------------
# suite: dse
# ---------------------------------------------------------------------------
#: How much slower than serial the parallel run may be before the gate
#: fails (only enforced on multi-core runners).
SPEEDUP_GATE_TOLERANCE = 1.10


def summarize(result: ConvergenceResult, wall_seconds: float) -> dict:
    return {
        "workers": result.workers,
        "wall_seconds": round(wall_seconds, 3),
        "best_fitness": result.best_fitness,
        "best_fitness_per_search": [s.best_fitness for s in result.searches],
        "avg_convergence_iteration": result.avg_iteration,
        "evaluations": result.total_evaluations,
        "cache_hits": result.total_cache_hits,
        # Headline rate: hits over lookups across the whole evaluation
        # data path (bucket-level result cache + Algorithm 2's stage
        # memo tables). The per-level rates sit next to it.
        "cache_hit_rate": round(result.combined_hit_rate, 4),
        "bucket_hit_rate": round(result.bucket_hit_rate, 4),
        "stage_hits": result.total_stage_hits,
        "stage_lookups": result.total_stage_lookups,
        "phases": {
            "eval_seconds": round(result.eval_seconds, 3),
            "cache_seconds": round(result.cache_seconds, 3),
            "pool_overhead_seconds": round(result.overhead_seconds, 3),
            # The batched kernel's share of eval_seconds, split by
            # Algorithm-2 phase (wall time inside the solving process).
            "ladder_seconds": round(result.ladder_seconds, 3),
            "growth_seconds": round(result.growth_seconds, 3),
            "measure_seconds": round(result.measure_seconds, 3),
        },
    }


#: Config keys that name the objective layer rather than the search size.
#: A baseline produced under a different objective/oracle measured a
#: different amount of work per generation, so its timings are not a
#: comparable trajectory — the gate is skipped instead of misfiring.
_OBJECTIVE_KEYS = ("objective", "rerank")


def load_baseline(
    path: Path, config: dict
) -> tuple[dict | None, str | None]:
    """The committed BENCH_dse.json, if it matches this run's config.

    Returns ``(baseline, objective_mismatch_reason)``: the baseline is
    ``None`` when there is nothing comparable; the reason is set (and the
    baseline still ``None``) when the only difference is the objective /
    re-rank oracle the baseline was produced under.
    """
    if not path.exists():
        return None, None
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None, None
    if baseline.get("benchmark") != "dse_convergence":
        return None, None
    base_config = dict(baseline.get("config") or {})
    # Baselines from before the objective layer were all paper-objective.
    base_config.setdefault("objective", "paper")
    base_config.setdefault("rerank", "none")
    strip = lambda cfg: {  # noqa: E731
        k: v for k, v in cfg.items() if k not in _OBJECTIVE_KEYS
    }
    if strip(base_config) != strip(config):
        return None, None
    mismatch = [
        f"{key}={base_config[key]!r} (baseline) vs {config[key]!r} (this run)"
        for key in _OBJECTIVE_KEYS
        if base_config[key] != config[key]
    ]
    if mismatch:
        return None, (
            "baseline was produced under a different objective layer: "
            + ", ".join(mismatch)
        )
    return baseline, None


def _trend(label: str, old: float | None, new: float) -> str:
    if not old:
        return f"  {label}: {new} (no baseline)"
    change = 100.0 * (new - old) / old
    return f"  {label}: {old} -> {new} ({change:+.1f}%)"


def compare_to_baseline(
    baseline: dict | None, payload: dict, objective_note: str | None = None
) -> dict | None:
    """Print the perf trajectory vs the committed file; return the deltas."""
    if baseline is None:
        if objective_note is not None:
            print(f"perf trajectory: SKIPPED — {objective_note}")
        else:
            print(
                "no comparable committed BENCH_dse.json baseline "
                "(first run, or the reduced-size config changed)"
            )
        return None
    print("perf trajectory vs committed BENCH_dse.json:")
    rows = [
        (
            "serial wall s",
            baseline.get("serial", {}).get("wall_seconds"),
            payload["serial"]["wall_seconds"],
        ),
        (
            "parallel wall s",
            baseline.get("parallel", {}).get("wall_seconds"),
            payload["parallel"]["wall_seconds"],
        ),
        ("speedup", baseline.get("speedup"), payload["speedup"]),
        (
            "cache hit rate",
            baseline.get("parallel", {}).get("cache_hit_rate"),
            payload["parallel"]["cache_hit_rate"],
        ),
    ]
    deltas = {}
    for label, old, new in rows:
        print(_trend(label, old, new))
        key = label.replace(" ", "_")
        deltas[key] = {"baseline": old, "now": new}
    return deltas


#: Minimum fraction of Algorithm-2 bucket solves the prune-mode
#: surrogate must skip relative to the surrogate-off run, and the bound
#: on how far its best fitness may drift from exact.
SURROGATE_SOLVE_REDUCTION_GATE = 0.30
SURROGATE_FITNESS_TOLERANCE = 0.01


def _surrogate_run_fields(result: ConvergenceResult, wall: float) -> dict:
    return {
        "wall_seconds": round(wall, 3),
        "best_fitness": result.best_fitness,
        "best_fitness_per_search": [s.best_fitness for s in result.searches],
        "evaluations": result.total_evaluations,
        "pruned_candidates": result.total_pruned_candidates,
        "pruned_buckets": result.total_pruned_buckets,
        "false_prunes": result.total_false_prunes,
    }


def run_surrogate_section(
    run_kwargs: dict, serial: ConvergenceResult
) -> tuple[dict, list[str]]:
    """Surrogate modes vs the exact (surrogate-off) serial run.

    Four hard gates: prune mode must skip at least 30% of the off run's
    Algorithm-2 bucket solves while landing within 1% of its best
    fitness; two prune runs at one seed must be bit-identical; verify
    mode must reproduce the off run's per-search best fitness and design
    exactly.
    """
    from repro.dse.worker import clear_process_caches

    def timed(mode):
        clear_process_caches()
        started = time.perf_counter()
        result = run_convergence(**run_kwargs, workers=1, surrogate=mode)
        return result, time.perf_counter() - started

    prune, prune_wall = timed("prune")
    prune_again, _ = timed("prune")
    verify, verify_wall = timed("verify")

    off_evals = serial.total_evaluations
    reduction = (
        (off_evals - prune.total_evaluations) / off_evals if off_evals else 0.0
    )
    fitness_drift = (
        abs(prune.best_fitness - serial.best_fitness)
        / abs(serial.best_fitness)
        if serial.best_fitness
        else 0.0
    )
    prune_deterministic = _surrogate_run_fields(
        prune, 0.0
    ) == _surrogate_run_fields(prune_again, 0.0) and [
        s.best_config for s in prune.searches
    ] == [s.best_config for s in prune_again.searches]
    verify_identical = [
        (s.best_fitness, s.best_config) for s in verify.searches
    ] == [(s.best_fitness, s.best_config) for s in serial.searches]

    gates = []
    if reduction < SURROGATE_SOLVE_REDUCTION_GATE:
        gates.append(
            f"prune mode skipped only {reduction:.1%} of Algorithm-2 "
            f"solves ({off_evals} -> {prune.total_evaluations}, gate "
            f"{SURROGATE_SOLVE_REDUCTION_GATE:.0%})"
        )
    if fitness_drift > SURROGATE_FITNESS_TOLERANCE:
        gates.append(
            f"prune mode best fitness drifted {fitness_drift:.2%} from "
            f"exact ({serial.best_fitness} -> {prune.best_fitness}, "
            f"tolerance {SURROGATE_FITNESS_TOLERANCE:.0%})"
        )
    if not prune_deterministic:
        gates.append("two prune-mode runs diverged at the same seeds")
    if not verify_identical:
        gates.append(
            "verify mode did not reproduce the surrogate-off per-search "
            "results exactly"
        )
    if verify.total_evaluations > off_evals:
        gates.append(
            f"verify mode solved more buckets than surrogate-off "
            f"({verify.total_evaluations} > {off_evals})"
        )

    section = {
        "off_evaluations": off_evals,
        "prune": _surrogate_run_fields(prune, prune_wall),
        "verify": _surrogate_run_fields(verify, verify_wall),
        "solve_reduction": round(reduction, 4),
        "solve_reduction_gate": SURROGATE_SOLVE_REDUCTION_GATE,
        "fitness_drift": round(fitness_drift, 6),
        "fitness_tolerance": SURROGATE_FITNESS_TOLERANCE,
        "prune_deterministic": prune_deterministic,
        "verify_identical_to_off": verify_identical,
        "gates": gates,
    }
    return section, gates


#: Minimum speedup of the batched Algorithm-2 kernel over the scalar
#: solver on the committed microbenchmark config, and the stream size the
#: gate is measured at. The speedup comes from vectorization, not
#: parallelism, so the gate holds on single-core runners too.
KERNEL_SPEEDUP_GATE = 2.0
KERNEL_BUCKETS = 512


def run_kernel_section(args: argparse.Namespace) -> tuple[dict, list[str]]:
    """The batched-kernel microbenchmark: identity and speedup gates.

    Replays a generation-shaped stream of budget buckets through the
    scalar solver and the batched kernel (``benchmarks/bench_inbranch``).
    Two hard gates: the solutions must be byte-for-byte identical, and
    the batched pass must beat the scalar loop by ``KERNEL_SPEEDUP_GATE``.
    """
    sys.path.insert(0, str(REPO / "benchmarks"))
    from bench_inbranch import run_microbench

    section = run_microbench(
        buckets_per_branch=KERNEL_BUCKETS,
        seed=0,
        device_name=args.device,
        quant_name=args.quant,
    )
    section["speedup_gate"] = KERNEL_SPEEDUP_GATE
    gates = []
    if not section["identical"]:
        gates.append(
            "batched kernel solutions are not byte-identical to the "
            "scalar solver's"
        )
    if not section["speedup"] or section["speedup"] < KERNEL_SPEEDUP_GATE:
        gates.append(
            f"batched kernel speedup {section['speedup']}x is below the "
            f"{KERNEL_SPEEDUP_GATE}x gate "
            f"(scalar {section['scalar_seconds']}s vs batched "
            f"{section['batched_seconds']}s)"
        )
    section["gates"] = gates
    return section, gates


def run_dse_suite(args: argparse.Namespace) -> int:
    run_kwargs = dict(
        device_name=args.device,
        quant_name=args.quant,
        searches=args.searches,
        iterations=args.iterations,
        population=args.population,
        objective=args.objective,
    )
    config = dict(run_kwargs, rerank="none")
    # Read the committed baseline before this run overwrites it.
    baseline, objective_note = load_baseline(Path(args.out), config)

    # Each measured run starts from cold process-local tables, so the
    # serial and parallel numbers are comparable.
    from repro.dse.worker import clear_process_caches

    clear_process_caches()
    started = time.perf_counter()
    serial = run_convergence(**run_kwargs, workers=1)
    serial_wall = time.perf_counter() - started

    clear_process_caches()
    started = time.perf_counter()
    parallel = run_convergence(**run_kwargs, workers=args.workers)
    parallel_wall = time.perf_counter() - started

    deterministic = [s.best_fitness for s in serial.searches] == [
        s.best_fitness for s in parallel.searches
    ]

    # Gates that cannot run on this machine/config land here as
    # machine-readable records instead of stringly-typed gate values.
    gate_skips: list[dict] = []
    multi_core = (os.cpu_count() or 1) > 1
    if objective_note is not None:
        gate = "skipped"
        gate_skips.append({"gate": "speedup", "reason": objective_note})
        print(f"speedup gate: SKIPPED — {objective_note}")
    elif not multi_core:
        gate = "skipped"
        reason = (
            "single-core runner, parallel wall time is expected to "
            "trail serial here"
        )
        gate_skips.append({"gate": "speedup", "reason": reason})
        print(f"speedup gate: SKIPPED — {reason}")
    elif parallel_wall <= serial_wall * SPEEDUP_GATE_TOLERANCE:
        gate = "passed"
    else:
        gate = "failed"

    kernel_section, kernel_gates = run_kernel_section(args)

    surrogate_section, surrogate_gates = run_surrogate_section(
        run_kwargs, serial
    )
    # The off run itself must stay on the committed trajectory: the
    # surrogate machinery sits on the eval path, and "off" promises that
    # path is untouched.
    off_identical = None
    if baseline is not None:
        base_fitness = baseline.get("serial", {}).get(
            "best_fitness_per_search"
        )
        if base_fitness is not None:
            off_identical = base_fitness == [
                s.best_fitness for s in serial.searches
            ]
            if not off_identical:
                surrogate_gates.append(
                    f"surrogate-off serial run diverged from the committed "
                    f"baseline ({base_fitness} -> "
                    f"{[s.best_fitness for s in serial.searches]})"
                )
    if off_identical is None:
        gate_skips.append(
            {
                "gate": "surrogate-off-baseline-identity",
                "reason": "no comparable committed baseline",
            }
        )
    surrogate_section["off_identical_to_baseline"] = off_identical

    payload = {
        "benchmark": "dse_convergence",
        "config": config,
        "environment": environment(),
        "serial": summarize(serial, serial_wall),
        "parallel": summarize(parallel, parallel_wall),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0
        else None,
        "deterministic": deterministic,
        "speedup_gate": gate,
        "gate_skips": gate_skips,
        "kernel": kernel_section,
        "surrogate": surrogate_section,
    }
    payload["baseline_comparison"] = compare_to_baseline(
        baseline, payload, objective_note
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    # Archive the rendered table next to the pytest-benchmark artifacts.
    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dse-convergence-smoke.txt").write_text(
        f"### DSE convergence smoke (reduced size)\n{parallel.render()}\n"
        f"serial {serial_wall:.2f}s -> parallel x{args.workers} "
        f"{parallel_wall:.2f}s (speedup {payload['speedup']}, "
        f"gate {gate})\n"
    )

    print(f"wrote {args.out}")
    print(
        f"serial {serial_wall:.2f}s, parallel x{args.workers} "
        f"{parallel_wall:.2f}s, speedup {payload['speedup']}, "
        f"cache hit rate {payload['parallel']['cache_hit_rate']:.1%}, "
        f"deterministic={deterministic}"
    )
    serial_phases = payload["serial"]["phases"]
    parallel_phases = payload["parallel"]["phases"]
    print(
        f"phases (serial): eval {serial_phases['eval_seconds']}s, cache "
        f"{serial_phases['cache_seconds']}s | (parallel): eval "
        f"{parallel_phases['eval_seconds']}s, cache "
        f"{parallel_phases['cache_seconds']}s, pool overhead "
        f"{parallel_phases['pool_overhead_seconds']}s"
    )
    kernel_phases = kernel_section["batched_phases"]
    print(
        f"kernel: scalar {kernel_section['scalar_seconds']}s -> batched "
        f"{kernel_section['batched_seconds']}s (x{kernel_section['speedup']},"
        f" gate x{KERNEL_SPEEDUP_GATE}) over "
        f"{kernel_section['buckets_per_branch']} buckets/branch; ladder "
        f"{kernel_phases['ladder_seconds']}s, growth "
        f"{kernel_phases['growth_seconds']}s, measure "
        f"{kernel_phases['measure_seconds']}s, "
        f"identical={kernel_section['identical']}"
    )
    print(
        f"surrogate: prune skipped "
        f"{surrogate_section['solve_reduction']:.1%} of "
        f"{surrogate_section['off_evaluations']} solves "
        f"({surrogate_section['prune']['pruned_candidates']} candidates, "
        f"{surrogate_section['prune']['false_prunes']} false prunes), "
        f"fitness drift {surrogate_section['fitness_drift']:.2%}; verify "
        f"identical={surrogate_section['verify_identical_to_off']}, "
        f"prune deterministic={surrogate_section['prune_deterministic']}"
    )
    if not deterministic:
        print("ERROR: parallel search diverged from serial results")
        return 1
    if gate == "failed":
        print(
            f"ERROR: speedup gate failed on a multi-core runner "
            f"({os.cpu_count()} cores): parallel {parallel_wall:.2f}s > "
            f"serial {serial_wall:.2f}s x {SPEEDUP_GATE_TOLERANCE}"
        )
        return 1
    if kernel_gates:
        for failed in kernel_gates:
            print(f"ERROR: kernel gate failed: {failed}")
        return 1
    if surrogate_gates:
        for failed in surrogate_gates:
            print(f"ERROR: surrogate gate failed: {failed}")
        return 1
    return 0


# ---------------------------------------------------------------------------
# suite: dist
# ---------------------------------------------------------------------------
#: Wall-time ceiling for the sharded fleet sweep (seconds). The sweep is
#: tiny; the budget mostly bounds coordinator/worker plumbing overhead —
#: interpreter startup for the spawned workers dominates it.
DIST_WALL_BUDGET_S = 120.0

#: Devices the reduced fleet sweep shards across.
DIST_SWEEP_DEVICES = ("Z7045", "ZU9CG")


def _dist_result_fields(result) -> dict:
    return {
        "best_fitness": result.best_fitness,
        "history": list(result.history),
    }


def run_dist_suite(args: argparse.Namespace) -> int:
    """The distributed fleet runtime: identity, loss-lessness, reconnects.

    Four gates, all hard failures:

    - a sweep sharded across 2 spawned worker processes over loopback is
      bit-identical to solving the same cases serially in-process;
    - killing a worker mid-sweep (deterministic ``die-after-leases:1``
      fault) re-leases its shard and still merges bit-identically;
    - the whole fleet sweep stays inside its wall-time budget;
    - serving through ``RemoteTransport`` with a forced mid-session
      disconnect reconnects (``reconnects == 1``) and reports the same
      SLOs as in-process serving, bit for bit.
    """
    import dataclasses
    import threading

    from repro.dist.coordinator import FleetSpec, run_fleet_sweep
    from repro.dist.faults import FaultInjector, FaultPlan
    from repro.dist.remote_transport import RemoteTransport, serve_replicas
    from repro.dse.engine import DseEngine
    from repro.fcad.flow import sweep_grid
    from repro.models.zoo import get_model
    from repro.serving import ReplicaPool, canned_workload, serve_workload

    network = get_model(args.model)
    flows = sweep_grid(
        networks=[network], devices=list(DIST_SWEEP_DEVICES), quants=["int8"]
    )
    engines = [flow.prepare()[2] for flow in flows]
    size = dict(iterations=args.iterations, population=args.population, seed=0)

    serial = DseEngine.search_many(engines, **size)

    def fleet_run(worker_faults=()):
        stats: dict[str, int] = {}
        started = time.perf_counter()
        results = run_fleet_sweep(
            engines,
            FleetSpec(
                workers=2,
                token="bench",
                timeout_s=DIST_WALL_BUDGET_S,
                worker_faults=worker_faults,
            ),
            **size,
            stats=stats,
        )
        return results, stats, time.perf_counter() - started

    clean, clean_stats, clean_wall = fleet_run()
    killed, killed_stats, killed_wall = fleet_run(
        worker_faults=("die-after-leases:1",)
    )

    def identical(results) -> bool:
        return all(
            fleet.best_fitness == base.best_fitness
            and fleet.best_config == base.best_config
            and fleet.history == base.history
            for fleet, base in zip(results, serial)
        )

    sharded_identical = identical(clean)
    killed_identical = identical(killed)

    # Remote serving with a forced mid-session disconnect.
    from repro.sim.runner import FrameLatencyProfile

    profile = FrameLatencyProfile(
        finish_ms=(8.0, 12.0, 16.0),
        first_frame_ms=8.0,
        steady_interval_ms=4.0,
        frequency_mhz=200.0,
    )
    workload = canned_workload(avatars=4, frames_per_avatar=6)
    inprocess = serve_workload(
        ReplicaPool(profile, replicas=2, max_batch=8), workload, policy="edf"
    )

    stop = threading.Event()
    ready = threading.Event()
    port_box: dict[str, int] = {}

    def on_ready(bound_port: int) -> None:
        port_box["port"] = bound_port
        ready.set()

    server = threading.Thread(
        target=serve_replicas,
        kwargs=dict(
            port=0,
            token="bench",
            fault=FaultInjector(FaultPlan(drop_conn_after_decodes=3)),
            ready=on_ready,
            stop=stop,
            announce=False,
        ),
        daemon=True,
    )
    server.start()
    ready.wait(10)
    transport = RemoteTransport(
        "127.0.0.1",
        port_box["port"],
        token="bench",
        backoff_s=0.01,
        backoff_max_s=0.05,
    )
    remote = serve_workload(
        ReplicaPool(profile, replicas=2, max_batch=8),
        workload,
        policy="edf",
        transport=transport,
    )
    stop.set()
    server.join(timeout=10)
    remote_identical = (
        dataclasses.replace(remote, reconnects=0) == inprocess
    )

    gates = []
    if not sharded_identical:
        gates.append("sharded sweep diverged from the serial results")
    if not killed_identical:
        gates.append("sweep with a killed worker diverged from serial")
    if killed_stats.get("releases", 0) < 1:
        gates.append(
            "the killed worker's shard was never re-leased "
            f"(stats: {killed_stats})"
        )
    if clean_wall >= DIST_WALL_BUDGET_S:
        gates.append(
            f"fleet sweep took {clean_wall:.1f}s "
            f"(budget {DIST_WALL_BUDGET_S:.0f}s)"
        )
    if transport.reconnects != 1:
        gates.append(
            f"forced disconnect produced {transport.reconnects} reconnects "
            f"(expected exactly 1)"
        )
    if not remote_identical:
        gates.append(
            "remote serving report diverged from in-process after the "
            "forced reconnect"
        )

    payload = {
        "benchmark": "distributed_fleet",
        "config": {
            "model": args.model,
            "devices": list(DIST_SWEEP_DEVICES),
            "quant": "int8",
            "iterations": args.iterations,
            "population": args.population,
            "workers": 2,
        },
        "environment": environment(),
        "serial": [_dist_result_fields(result) for result in serial],
        "fleet": {
            "wall_seconds": round(clean_wall, 3),
            "stats": clean_stats,
            "identical_to_serial": sharded_identical,
        },
        "fleet_with_killed_worker": {
            "wall_seconds": round(killed_wall, 3),
            "stats": killed_stats,
            "identical_to_serial": killed_identical,
        },
        "remote_serving": {
            "reconnects": transport.reconnects,
            "report_identical_modulo_reconnects": remote_identical,
            "completed": remote.completed,
            "deadline_misses": remote.deadline_misses,
        },
        "wall_budget_seconds": DIST_WALL_BUDGET_S,
        "gates": gates,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dist-smoke.txt").write_text(
        f"### Distributed fleet smoke (reduced size)\n"
        f"clean fleet: {clean_stats}\n"
        f"killed-worker fleet: {killed_stats}\n"
        f"remote serving reconnects: {transport.reconnects}\n"
    )

    print(f"wrote {args.out}")
    print(
        f"fleet sweep over {len(engines)} shards x 2 workers: "
        f"clean {clean_wall:.2f}s "
        f"({clean_stats['leases']} leases), killed-worker "
        f"{killed_wall:.2f}s ({killed_stats['releases']} re-leased), "
        f"identical={sharded_identical and killed_identical}"
    )
    print(
        f"remote serving: {transport.reconnects} reconnect(s), "
        f"identical={remote_identical}"
    )
    for gate in gates:
        print(f"ERROR: dist gate failed: {gate}")
    return 1 if gates else 0


# ---------------------------------------------------------------------------
# suite: serving
# ---------------------------------------------------------------------------
def summarize_serving(report) -> dict:
    payload = {
        "completed": report.completed,
        "latency_p50_ms": round(report.latency_p50_ms, 3),
        "latency_p95_ms": round(report.latency_p95_ms, 3),
        "latency_p99_ms": round(report.latency_p99_ms, 3),
        "latency_mean_ms": round(report.latency_mean_ms, 3),
        "deadline_misses": report.deadline_misses,
        "deadline_miss_rate": round(report.miss_rate, 4),
        "throughput_fps": round(report.throughput_fps, 2),
        "mean_batch_size": round(report.mean_batch_size, 3),
        "mean_utilization": round(report.mean_utilization, 4),
    }
    if report.router:
        payload["router"] = report.router
        payload["shed"] = report.shed
        payload["shed_rate"] = round(report.shed_rate, 4)
        payload["groups"] = {
            group.name: {
                "replicas": group.replicas,
                "policy": group.policy,
                "completed": group.completed,
                "shed": group.shed,
                "deadline_misses": group.deadline_misses,
                "miss_rate": round(group.miss_rate, 4),
                "latency_p99_ms": round(group.latency_p99_ms, 3),
            }
            for group in report.groups
        }
    return payload


#: Fixed total replica budget of the mixed-vs-homogeneous comparison.
CLUSTER_BUDGET = 6

#: Saturation of the cluster benchmark workload (offered / pool capacity).
#: Slightly past capacity on purpose: this is the regime the cluster
#: architecture exists for — EDF on a shared pool starts serving stale
#: deadlines, while tiering isolates the tight tier and shedding keeps
#: the accepted share inside its budgets.
CLUSTER_SATURATION = 1.05

#: Overload factor of the load-shedding session.
SHED_OVERLOAD = 1.5


def _cluster_workload(
    profile, saturation: float, seed: int = 0, budget: int = CLUSTER_BUDGET
):
    """The mixed-deadline cluster benchmark workload, sized off capacity.

    The tight tier budget sits between the latency group's and the
    throughput group's unloaded latencies (only the low-latency tier can
    honour it); tier count pins the tight fleet at 3 avatars so the
    one-replica latency tier stays inside its capacity while the
    throughput tier carries the overload.
    """
    import math

    from repro.serving import AvatarWorkload

    capacity_fps = budget * profile.steady_fps
    avatars = max(4, round(saturation * capacity_fps / 30.0))
    tight_ms = round(profile.first_frame_ms + 15.0, 1)
    tiers = (tight_ms,) + (2.0 * tight_ms,) * (math.ceil(avatars / 3) - 1)
    return AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=60,
        frame_interval_ms=1000.0 / 30.0,
        deadline_ms=50.0,
        deadline_tiers=tiers,
        jitter_ms=8.0,
        seed=seed,
    )


def _cluster_groups(latency_profile, throughput_profile):
    from repro.serving import GroupSpec

    return [
        GroupSpec(
            "latency",
            latency_profile,
            replicas=1,
            policy="edf",
            batch_window_ms=0.0,
            max_batch=4,
        ),
        GroupSpec(
            "throughput",
            throughput_profile,
            replicas=CLUSTER_BUDGET - 1,
            policy="fifo",
            batch_window_ms=4.0,
            max_batch=8,
        ),
    ]


def run_cluster_section(latency_profile, throughput_profile) -> tuple[dict, list[str]]:
    """Mixed cluster vs best homogeneous pool at a fixed replica budget.

    Returns the JSON section plus a list of failed gates (empty = pass).
    """
    from repro.serving import (
        ReplicaPool,
        report_to_json,
        serve_cluster,
        serve_workload,
    )

    workload = _cluster_workload(latency_profile, CLUSTER_SATURATION)

    homogeneous = {}
    for design, profile in (
        ("latency", latency_profile),
        ("throughput", throughput_profile),
    ):
        for policy in ("fifo", "edf"):
            pool = ReplicaPool(
                profile, replicas=CLUSTER_BUDGET, max_batch=8
            )
            homogeneous[f"{design}/{policy}"] = serve_workload(
                pool, workload, policy=policy
            )
    best_name = min(homogeneous, key=lambda k: homogeneous[k].miss_rate)
    best = homogeneous[best_name]

    def mixed_session(wl, shed):
        return serve_cluster(
            _cluster_groups(latency_profile, throughput_profile),
            wl,
            router="deadline",
            admission=shed,
        )

    mixed = mixed_session(workload, shed=True)
    mixed_again = mixed_session(workload, shed=True)
    mixed_noshed = mixed_session(workload, shed=None)
    deterministic = report_to_json(mixed) == report_to_json(mixed_again)

    overload = _cluster_workload(latency_profile, SHED_OVERLOAD)
    over_shed = mixed_session(overload, shed=True)
    over_noshed = mixed_session(overload, shed=None)

    latency_group = next(
        group for group in mixed.groups if group.name == "latency"
    )
    p99_bound_ms = 2.0 * max(overload.deadline_tiers)

    gates = []
    if mixed.miss_rate >= best.miss_rate:
        gates.append(
            f"mixed cluster miss rate {mixed.miss_rate:.4f} is not below "
            f"the best homogeneous pool {best_name} ({best.miss_rate:.4f})"
        )
    if latency_group.miss_rate > 0.05:
        gates.append(
            f"deadline-tiered latency group missed "
            f"{latency_group.miss_rate:.1%} of its tight-budget frames"
        )
    if over_shed.latency_p99_ms > p99_bound_ms:
        gates.append(
            f"{SHED_OVERLOAD}x overload with shedding: accepted p99 "
            f"{over_shed.latency_p99_ms:.1f} ms exceeds the "
            f"{p99_bound_ms:.0f} ms bound"
        )
    if over_shed.shed_rate <= 0.0:
        gates.append("overload session shed nothing")
    if over_noshed.latency_p99_ms <= over_shed.latency_p99_ms:
        gates.append(
            "shedding did not improve accepted p99 at overload"
        )
    if not deterministic:
        gates.append("mixed-cluster sessions diverged at the same seed")

    section = {
        "replica_budget": CLUSTER_BUDGET,
        "saturation": CLUSTER_SATURATION,
        "workload": {
            "avatars": workload.avatars,
            "frames_per_avatar": workload.frames_per_avatar,
            "deadline_tiers_ms": [
                workload.deadline_tiers[0],
                workload.deadline_tiers[-1],
            ],
            "tight_avatars": sum(
                1
                for avatar in range(workload.avatars)
                if workload.deadline_for(avatar) == workload.deadline_tiers[0]
            ),
        },
        "homogeneous": {
            name: summarize_serving(report)
            for name, report in homogeneous.items()
        },
        "best_homogeneous": best_name,
        "mixed": summarize_serving(mixed),
        "mixed_no_shed": summarize_serving(mixed_noshed),
        "overload": {
            "factor": SHED_OVERLOAD,
            "avatars": overload.avatars,
            "p99_bound_ms": p99_bound_ms,
            "with_shedding": summarize_serving(over_shed),
            "without_shedding": summarize_serving(over_noshed),
        },
        "mixed_vs_best_homogeneous": {
            "miss_rate_delta": round(mixed.miss_rate - best.miss_rate, 4),
            "p99_delta_ms": round(
                mixed.latency_p99_ms - best.latency_p99_ms, 3
            ),
        },
        "deterministic": deterministic,
        "gates": gates,
    }
    return section, gates


#: The chaos benchmark: a five-replica cluster whose entire latency tier
#: (1 of 5 replicas — 20% of the fleet) dies mid-session, with no
#: admission control so the damage cannot hide behind shedding. The
#: shielded run (retries + failover + replacement) must hold its
#: combined deadline-miss + failure rate within 2x of the fault-free
#: run; the unshielded run (no retries, no replacement) eats the dead
#: replica's in-flight frames as failures and then runs the rest of the
#: session past capacity, so its misses grow without bound.
CHAOS_BUDGET = 5
CHAOS_SATURATION = 0.85
CHAOS_KILL = "die-at:latency/0:250"
CHAOS_REPLACE_AFTER_MS = 80.0
#: Absolute floor on the shielded bound so a fault-free run that misses
#: nothing does not demand a literally perfect faulty run.
CHAOS_DEGRADED_FLOOR = 0.02


def summarize_chaos(report) -> dict:
    payload = summarize_serving(report)
    payload.update(
        {
            "failed": report.failed,
            "failed_rate": round(report.failed_rate, 4),
            "retries": report.retries,
            "hedges": report.hedges,
            "failovers": report.failovers,
            "replicas_lost": report.replicas_lost,
            "replicas_replaced": report.replicas_replaced,
            "degraded_time_ms": round(report.degraded_time_ms, 3),
        }
    )
    return payload


def _chaos_groups(latency_profile, throughput_profile):
    from repro.serving import GroupSpec

    return [
        GroupSpec(
            "latency",
            latency_profile,
            replicas=1,
            policy="edf",
            batch_window_ms=0.0,
            max_batch=4,
        ),
        GroupSpec(
            "throughput",
            throughput_profile,
            replicas=CHAOS_BUDGET - 1,
            policy="fifo",
            batch_window_ms=4.0,
            max_batch=8,
        ),
    ]


def run_chaos_section(latency_profile, throughput_profile) -> tuple[dict, list[str]]:
    """Chaos resilience: 20% replica loss, shielded vs unshielded.

    Returns the JSON section plus a list of failed gates (empty = pass).
    """
    from repro.serving import (
        ChaosPlan,
        RecoveryPolicy,
        report_to_json,
        serve_cluster,
        serve_trace,
        trace_from_workload,
    )

    workload = _cluster_workload(
        latency_profile, CHAOS_SATURATION, budget=CHAOS_BUDGET
    )
    groups = _chaos_groups(latency_profile, throughput_profile)
    chaos = ChaosPlan.parse(CHAOS_KILL)
    shielded_policy = RecoveryPolicy(
        max_retries=2,
        breaker_threshold=1,
        replace_after_ms=CHAOS_REPLACE_AFTER_MS,
    )
    unshielded_policy = RecoveryPolicy(max_retries=0, breaker_threshold=0)

    def session(plan, recovery):
        return serve_cluster(
            groups,
            workload,
            router="deadline",
            chaos=plan,
            recovery=recovery,
        )

    fault_free = session(None, None)
    shielded = session(chaos, shielded_policy)
    shielded_again = session(chaos, shielded_policy)
    unshielded = session(chaos, unshielded_policy)
    heap = serve_trace(
        groups,
        trace_from_workload(workload),
        router="deadline",
        chaos=chaos,
        recovery=shielded_policy,
    )

    def degraded(report):
        return report.miss_rate + report.failed_rate

    bound = max(2.0 * degraded(fault_free), CHAOS_DEGRADED_FLOOR)
    deterministic = report_to_json(shielded) == report_to_json(shielded_again)
    counter_fields = (
        "submitted", "completed", "failed", "shed", "deadline_misses",
        "retries", "hedges", "failovers", "replicas_lost",
        "replicas_replaced",
    )
    engine_equivalent = all(
        getattr(heap, field) == getattr(shielded, field)
        for field in counter_fields
    )

    gates = []
    if degraded(shielded) > bound:
        gates.append(
            f"shielded run degraded to miss+fail {degraded(shielded):.4f} "
            f"at {1 / CHAOS_BUDGET:.0%} replica loss (bound {bound:.4f})"
        )
    if degraded(unshielded) <= degraded(shielded):
        gates.append(
            f"unshielded run (miss+fail {degraded(unshielded):.4f}) did "
            f"not collapse past the shielded run "
            f"({degraded(shielded):.4f}) — the recovery stack bought "
            f"nothing"
        )
    if unshielded.failed <= 0:
        gates.append("unshielded run failed no frames at 20% replica loss")
    if shielded.retries <= 0:
        gates.append("shielded run never retried a failed frame")
    if shielded.failovers <= 0:
        gates.append(
            "shielded run never failed traffic over to the surviving group"
        )
    if shielded.replicas_replaced <= 0:
        gates.append("shielded run never replaced its dead replica")
    if shielded.replicas_lost != 1:
        gates.append(
            f"shielded run lost {shielded.replicas_lost} replicas "
            f"(chaos plan kills exactly 1)"
        )
    for name, report in (
        ("fault-free", fault_free),
        ("shielded", shielded),
        ("unshielded", unshielded),
    ):
        if report.completed + report.shed + report.failed != report.submitted:
            gates.append(
                f"{name} chaos run lost frames "
                f"(completed + shed + failed != submitted)"
            )
    if not deterministic:
        gates.append("shielded chaos sessions diverged at the same seed")
    if not engine_equivalent:
        gates.append(
            "event-heap engine diverged from the coroutine scheduler "
            "under faults"
        )

    section = {
        "replica_budget": CHAOS_BUDGET,
        "saturation": CHAOS_SATURATION,
        "chaos": CHAOS_KILL,
        "replica_loss_fraction": round(1.0 / CHAOS_BUDGET, 2),
        "recovery": {
            "max_retries": shielded_policy.max_retries,
            "breaker_threshold": shielded_policy.breaker_threshold,
            "replace_after_ms": shielded_policy.replace_after_ms,
        },
        "fault_free": summarize_chaos(fault_free),
        "shielded": summarize_chaos(shielded),
        "unshielded": summarize_chaos(unshielded),
        "degraded_bound": round(bound, 4),
        "deterministic": deterministic,
        "engine_equivalent": engine_equivalent,
        "gates": gates,
    }
    return section, gates


#: Size of the event-heap engine's scale session: one million avatars on
#: a slow periodic refresh over a two-minute diurnal session — ~1.1M
#: requests, the population the engine exists to serve in one process.
ENGINE_AVATARS = 1_000_000
ENGINE_DURATION_S = 120.0
ENGINE_AVATAR_FPS = 1.0 / 60.0

#: The engine's wall-time budget for the full scale session (seconds) and
#: the floor on simulated requests per wall-clock second.
ENGINE_WALL_BUDGET_S = 60.0
ENGINE_THROUGHPUT_FLOOR = 30_000.0


def run_engine_section(result, profile) -> tuple[dict, list[str]]:
    """The event-heap engine at population scale, with autoscaling.

    Returns the JSON section plus a list of failed gates (empty = pass).
    """
    from repro.serving import AutoscalePolicy, make_trace, serve_trace
    from repro.serving.slo import report_to_json

    def session():
        started = time.perf_counter()
        trace = make_trace(
            ENGINE_AVATARS,
            ENGINE_DURATION_S,
            shape="diurnal",
            avatar_fps=ENGINE_AVATAR_FPS,
            deadline_ms=200.0,
            jitter_ms=400.0,
            seed=42,
        )
        report = serve_trace(
            result.serving_group(
                name="fleet", replicas=2, policy="edf", profile=profile
            ),
            trace,
            admission=True,
            autoscale=AutoscalePolicy(
                check_interval_ms=1000.0,
                warmup_ms=5000.0,
                min_replicas=2,
                max_replicas=64,
            ),
        )
        return report, time.perf_counter() - started

    report, wall = session()
    replay, _ = session()
    deterministic = report_to_json(report) == report_to_json(replay)
    rate = report.submitted / wall if wall > 0 else 0.0

    gates = []
    if report.submitted < 1_000_000:
        gates.append(
            f"scale session submitted only {report.submitted:,} requests "
            f"(needs >= 1,000,000)"
        )
    if wall >= ENGINE_WALL_BUDGET_S:
        gates.append(
            f"scale session took {wall:.1f}s "
            f"(budget {ENGINE_WALL_BUDGET_S:.0f}s)"
        )
    if rate < ENGINE_THROUGHPUT_FLOOR:
        gates.append(
            f"engine served {rate:,.0f} simulated req/s "
            f"(floor {ENGINE_THROUGHPUT_FLOOR:,.0f})"
        )
    if report.completed + report.shed != report.submitted:
        gates.append("scale session lost requests (completed + shed != submitted)")
    if report.scale_ups <= 0:
        gates.append("autoscaler never scaled up under the diurnal peak")
    if not deterministic:
        gates.append("engine sessions diverged at the same seed")

    section = {
        "avatars": ENGINE_AVATARS,
        "duration_s": ENGINE_DURATION_S,
        "shape": report.shape,
        "submitted": report.submitted,
        "completed": report.completed,
        "shed": report.shed,
        "deadline_misses": report.deadline_misses,
        "scale_ups": report.scale_ups,
        "scale_downs": report.scale_downs,
        "peak_replicas": report.peak_replicas,
        "wall_seconds": round(wall, 3),
        "simulated_requests_per_second": round(rate),
        "deterministic": deterministic,
        "gates": gates,
    }
    return section, gates


def run_serving_suite(args: argparse.Namespace) -> int:
    from repro.devices.fpga import get_device
    from repro.dse.space import Customization
    from repro.fcad.flow import FCad
    from repro.models.zoo import get_model
    from repro.serving import (
        GroupSpec,
        ReplicaPool,
        report_to_json,
        saturation_workload,
        serve_cluster,
        serve_workload,
    )

    network = get_model(args.model)
    result = FCad(
        network=network,
        device=get_device(args.device),
        quant=args.quant,
    ).run(
        iterations=args.iterations,
        population=args.population,
        seed=0,
        workers=1,
    )
    profile = result.frame_latency_profile(frames=8)

    # The throughput tier of the mixed cluster: the same flow under a
    # big-batch customization (the paper's knob that actually changes the
    # architecture — here per-branch batch 2, which doubles the cold fill
    # while holding the steady rate).
    branches = len(network.output_names())
    throughput_result = FCad(
        network=network,
        device=get_device(args.device),
        quant=args.quant,
        customization=Customization(
            batch_sizes=(2,) * branches, priorities=(1.0,) * branches
        ),
    ).run(
        iterations=args.iterations,
        population=args.population,
        seed=0,
        workers=1,
    )
    throughput_profile = throughput_result.frame_latency_profile(frames=8)

    workload = saturation_workload(
        profile,
        replicas=args.replicas,
        avatar_fps=args.avatar_fps,
        frames_per_avatar=args.frames,
    )
    avatars = workload.avatars

    def session(policy: str):
        pool = ReplicaPool(
            profile, replicas=args.replicas, max_batch=args.max_batch
        )
        started = time.perf_counter()
        report = serve_workload(pool, workload, policy=policy)
        return report, time.perf_counter() - started

    fifo, fifo_wall = session("fifo")
    edf, edf_wall = session("edf")
    edf_again, _ = session("edf")
    deterministic = report_to_json(edf) == report_to_json(edf_again)

    # A cluster of one in-process group must reproduce the plain
    # BatchScheduler path SLO for SLO (the refactor's identity guarantee).
    single_group = serve_cluster(
        [
            GroupSpec(
                "only",
                profile,
                replicas=args.replicas,
                policy="edf",
                batch_window_ms=2.0,
                max_batch=args.max_batch,
            )
        ],
        workload,
    )
    identity_fields = (
        "policy", "submitted", "completed", "duration_ms",
        "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
        "latency_mean_ms", "latency_max_ms", "queue_mean_ms",
        "deadline_misses", "batches", "mean_batch_size",
        "replica_utilization", "per_avatar_p99_ms",
    )
    single_group_identical = all(
        getattr(single_group, field) == getattr(edf, field)
        for field in identity_fields
    )

    cluster_section, cluster_gates = run_cluster_section(
        profile, throughput_profile
    )
    chaos_section, chaos_gates = run_chaos_section(
        profile, throughput_profile
    )

    # The event-heap engine must reproduce the coroutine scheduler's
    # counters on the suite's own workload before its scale numbers mean
    # anything.
    from repro.serving import serve_trace

    heap_edf = serve_trace(
        ReplicaPool(profile, replicas=args.replicas, max_batch=args.max_batch),
        workload,
        policy="edf",
    )
    equivalence_fields = (
        "submitted", "completed", "deadline_misses", "batches",
    )
    engine_equivalent = all(
        getattr(heap_edf, field) == getattr(edf, field)
        for field in equivalence_fields
    )

    engine_section, engine_gates = run_engine_section(result, profile)

    payload = {
        "benchmark": "avatar_serving",
        "config": {
            "model": args.model,
            "device": args.device,
            "quant": args.quant,
            "iterations": args.iterations,
            "population": args.population,
            "replicas": args.replicas,
            "max_batch": args.max_batch,
            "avatars": avatars,
            "frames_per_avatar": args.frames,
            "avatar_fps": args.avatar_fps,
            "deadline_tiers_ms": list(workload.deadline_tiers),
        },
        "environment": environment(),
        "design": {
            "steady_fps": round(result.fps, 2),
            "first_frame_ms": round(profile.first_frame_ms, 3),
            "steady_interval_ms": round(profile.steady_interval_ms, 3),
        },
        "throughput_design": {
            "steady_fps": round(throughput_result.fps, 2),
            "first_frame_ms": round(throughput_profile.first_frame_ms, 3),
            "steady_interval_ms": round(
                throughput_profile.steady_interval_ms, 3
            ),
        },
        "policies": {
            "fifo": summarize_serving(fifo),
            "edf": summarize_serving(edf),
        },
        "edf_vs_fifo": {
            "miss_rate_delta": round(edf.miss_rate - fifo.miss_rate, 4),
            "p99_delta_ms": round(
                edf.latency_p99_ms - fifo.latency_p99_ms, 3
            ),
        },
        "wall_seconds": {
            "fifo": round(fifo_wall, 3),
            "edf": round(edf_wall, 3),
        },
        "deterministic": deterministic,
        "single_group_cluster_identical": single_group_identical,
        "engine_equivalent": engine_equivalent,
        "cluster": cluster_section,
        "chaos": chaos_section,
        "engine": engine_section,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "serving-smoke.txt").write_text(
        f"### Avatar serving smoke (reduced size)\n"
        f"{fifo.render()}\n\n{edf.render()}\n"
    )

    print(f"wrote {args.out}")
    print(
        f"{avatars} avatars on {args.replicas} replicas: "
        f"fifo miss {100 * fifo.miss_rate:.1f}% p99 "
        f"{fifo.latency_p99_ms:.1f} ms | edf miss "
        f"{100 * edf.miss_rate:.1f}% p99 {edf.latency_p99_ms:.1f} ms, "
        f"deterministic={deterministic}"
    )
    mixed = cluster_section["mixed"]
    best = cluster_section["homogeneous"][
        cluster_section["best_homogeneous"]
    ]
    over = cluster_section["overload"]
    print(
        f"cluster (budget {CLUSTER_BUDGET}, {CLUSTER_SATURATION}x): mixed "
        f"miss {100 * mixed['deadline_miss_rate']:.1f}% (shed "
        f"{100 * mixed['shed_rate']:.1f}%) vs best homogeneous "
        f"{cluster_section['best_homogeneous']} miss "
        f"{100 * best['deadline_miss_rate']:.1f}%"
    )
    print(
        f"overload ({SHED_OVERLOAD}x): shed p99 "
        f"{over['with_shedding']['latency_p99_ms']:.1f} ms (shed "
        f"{100 * over['with_shedding']['shed_rate']:.1f}%) vs no-shed p99 "
        f"{over['without_shedding']['latency_p99_ms']:.1f} ms, bound "
        f"{over['p99_bound_ms']:.0f} ms"
    )
    shielded = chaos_section["shielded"]
    unshielded = chaos_section["unshielded"]
    print(
        f"chaos ({CHAOS_KILL}, {1 / CHAOS_BUDGET:.0%} loss): shielded "
        f"miss+fail "
        f"{100 * (shielded['deadline_miss_rate'] + shielded['failed_rate']):.1f}% "
        f"(bound {100 * chaos_section['degraded_bound']:.1f}%) vs "
        f"unshielded "
        f"{100 * (unshielded['deadline_miss_rate'] + unshielded['failed_rate']):.1f}%, "
        f"retries {shielded['retries']}, failovers "
        f"{shielded['failovers']}, replaced {shielded['replicas_replaced']}"
    )
    print(
        f"engine: {engine_section['submitted']:,} requests over "
        f"{ENGINE_AVATARS:,} avatars in {engine_section['wall_seconds']}s "
        f"({engine_section['simulated_requests_per_second']:,} sim req/s), "
        f"peak {engine_section['peak_replicas']} replicas "
        f"(+{engine_section['scale_ups']}/-{engine_section['scale_downs']}), "
        f"deterministic={engine_section['deterministic']}"
    )
    if not deterministic:
        print("ERROR: serving sessions diverged at the same seed")
        return 1
    if not single_group_identical:
        print(
            "ERROR: single-group cluster diverged from the plain "
            "BatchScheduler path"
        )
        return 1
    if not engine_equivalent:
        print(
            "ERROR: event-heap engine diverged from the coroutine "
            "scheduler on the shared workload"
        )
        return 1
    if cluster_gates:
        for gate in cluster_gates:
            print(f"ERROR: cluster gate failed: {gate}")
        return 1
    if chaos_gates:
        for gate in chaos_gates:
            print(f"ERROR: chaos gate failed: {gate}")
        return 1
    if engine_gates:
        for gate in engine_gates:
            print(f"ERROR: engine gate failed: {gate}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        default="dse",
        choices=["dse", "serving", "dist"],
        help="which benchmark smoke to run (default: dse)",
    )
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8")
    parser.add_argument(
        "--objective",
        default="paper",
        choices=["paper", "slo", "composite"],
        help="fitness objective for the DSE suite; recorded in the "
        "payload so trajectories under different objectives are never "
        "compared (default: paper)",
    )
    parser.add_argument("--searches", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument(
        "--workers",
        type=int,
        default=int(
            os.environ.get("FCAD_BENCH_WORKERS")
            or max(1, min(4, os.cpu_count() or 1))
        ),
        help="workers for the parallel run (default: $FCAD_BENCH_WORKERS "
        "if set, else up to 4)",
    )
    # serving-suite knobs
    parser.add_argument("--model", default="codec_avatar_decoder")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--avatar-fps", type=float, default=30.0)
    parser.add_argument(
        "--out",
        help="output path (default: BENCH_dse.json / BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = f"BENCH_{args.suite}.json"

    if args.suite == "serving":
        return run_serving_suite(args)
    if args.suite == "dist":
        return run_dist_suite(args)
    return run_dse_suite(args)


if __name__ == "__main__":
    sys.exit(main())
