#!/usr/bin/env python
"""Run a reduced benchmark suite and emit a machine-readable BENCH_*.json.

Two suites, one per CI smoke job, so the repo's performance trajectory is
comparable PR over PR:

- ``--suite dse`` (default) — the DSE convergence study at reduced size,
  serial vs parallel, written to ``BENCH_dse.json``. Exits nonzero if the
  parallel run is not bit-identical to the serial one.
- ``--suite serving`` — the avatar serving layer: explore a design once,
  deploy simulated replicas, and serve the *same* mixed-deadline workload
  under FIFO and EDF batching. Written to ``BENCH_serving.json`` with p99
  latency, deadline-miss rate, and throughput per policy. Exits nonzero
  if two EDF sessions at the same seed are not bit-identical (the virtual
  clock's determinism guarantee, checked on every PR).

Run:  PYTHONPATH=src python tools/bench_to_json.py [--suite serving] [--out F]
(or from anywhere: the script puts ``src/`` on ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.convergence import ConvergenceResult, run_convergence  # noqa: E402


def environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


# ---------------------------------------------------------------------------
# suite: dse
# ---------------------------------------------------------------------------
#: How much slower than serial the parallel run may be before the gate
#: fails (only enforced on multi-core runners).
SPEEDUP_GATE_TOLERANCE = 1.10


def summarize(result: ConvergenceResult, wall_seconds: float) -> dict:
    return {
        "workers": result.workers,
        "wall_seconds": round(wall_seconds, 3),
        "best_fitness": result.best_fitness,
        "best_fitness_per_search": [s.best_fitness for s in result.searches],
        "avg_convergence_iteration": result.avg_iteration,
        "evaluations": result.total_evaluations,
        "cache_hits": result.total_cache_hits,
        # Headline rate: hits over lookups across the whole evaluation
        # data path (bucket-level result cache + Algorithm 2's stage
        # memo tables). The per-level rates sit next to it.
        "cache_hit_rate": round(result.combined_hit_rate, 4),
        "bucket_hit_rate": round(result.bucket_hit_rate, 4),
        "stage_hits": result.total_stage_hits,
        "stage_lookups": result.total_stage_lookups,
        "phases": {
            "eval_seconds": round(result.eval_seconds, 3),
            "cache_seconds": round(result.cache_seconds, 3),
            "pool_overhead_seconds": round(result.overhead_seconds, 3),
        },
    }


#: Config keys that name the objective layer rather than the search size.
#: A baseline produced under a different objective/oracle measured a
#: different amount of work per generation, so its timings are not a
#: comparable trajectory — the gate is skipped instead of misfiring.
_OBJECTIVE_KEYS = ("objective", "rerank")


def load_baseline(
    path: Path, config: dict
) -> tuple[dict | None, str | None]:
    """The committed BENCH_dse.json, if it matches this run's config.

    Returns ``(baseline, objective_mismatch_reason)``: the baseline is
    ``None`` when there is nothing comparable; the reason is set (and the
    baseline still ``None``) when the only difference is the objective /
    re-rank oracle the baseline was produced under.
    """
    if not path.exists():
        return None, None
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None, None
    if baseline.get("benchmark") != "dse_convergence":
        return None, None
    base_config = dict(baseline.get("config") or {})
    # Baselines from before the objective layer were all paper-objective.
    base_config.setdefault("objective", "paper")
    base_config.setdefault("rerank", "none")
    strip = lambda cfg: {  # noqa: E731
        k: v for k, v in cfg.items() if k not in _OBJECTIVE_KEYS
    }
    if strip(base_config) != strip(config):
        return None, None
    mismatch = [
        f"{key}={base_config[key]!r} (baseline) vs {config[key]!r} (this run)"
        for key in _OBJECTIVE_KEYS
        if base_config[key] != config[key]
    ]
    if mismatch:
        return None, (
            "baseline was produced under a different objective layer: "
            + ", ".join(mismatch)
        )
    return baseline, None


def _trend(label: str, old: float | None, new: float) -> str:
    if not old:
        return f"  {label}: {new} (no baseline)"
    change = 100.0 * (new - old) / old
    return f"  {label}: {old} -> {new} ({change:+.1f}%)"


def compare_to_baseline(
    baseline: dict | None, payload: dict, objective_note: str | None = None
) -> dict | None:
    """Print the perf trajectory vs the committed file; return the deltas."""
    if baseline is None:
        if objective_note is not None:
            print(f"perf trajectory: SKIPPED — {objective_note}")
        else:
            print(
                "no comparable committed BENCH_dse.json baseline "
                "(first run, or the reduced-size config changed)"
            )
        return None
    print("perf trajectory vs committed BENCH_dse.json:")
    rows = [
        (
            "serial wall s",
            baseline.get("serial", {}).get("wall_seconds"),
            payload["serial"]["wall_seconds"],
        ),
        (
            "parallel wall s",
            baseline.get("parallel", {}).get("wall_seconds"),
            payload["parallel"]["wall_seconds"],
        ),
        ("speedup", baseline.get("speedup"), payload["speedup"]),
        (
            "cache hit rate",
            baseline.get("parallel", {}).get("cache_hit_rate"),
            payload["parallel"]["cache_hit_rate"],
        ),
    ]
    deltas = {}
    for label, old, new in rows:
        print(_trend(label, old, new))
        key = label.replace(" ", "_")
        deltas[key] = {"baseline": old, "now": new}
    return deltas


def run_dse_suite(args: argparse.Namespace) -> int:
    run_kwargs = dict(
        device_name=args.device,
        quant_name=args.quant,
        searches=args.searches,
        iterations=args.iterations,
        population=args.population,
        objective=args.objective,
    )
    config = dict(run_kwargs, rerank="none")
    # Read the committed baseline before this run overwrites it.
    baseline, objective_note = load_baseline(Path(args.out), config)

    # Each measured run starts from cold process-local tables, so the
    # serial and parallel numbers are comparable.
    from repro.dse.worker import clear_process_caches

    clear_process_caches()
    started = time.perf_counter()
    serial = run_convergence(**run_kwargs, workers=1)
    serial_wall = time.perf_counter() - started

    clear_process_caches()
    started = time.perf_counter()
    parallel = run_convergence(**run_kwargs, workers=args.workers)
    parallel_wall = time.perf_counter() - started

    deterministic = [s.best_fitness for s in serial.searches] == [
        s.best_fitness for s in parallel.searches
    ]

    multi_core = (os.cpu_count() or 1) > 1
    if objective_note is not None:
        gate = "skipped-objective-mismatch"
        print(f"speedup gate: SKIPPED — {objective_note}")
    elif not multi_core:
        gate = "skipped-single-core"
        print(
            "speedup gate: SKIPPED — single-core runner, parallel wall "
            "time is expected to trail serial here"
        )
    elif parallel_wall <= serial_wall * SPEEDUP_GATE_TOLERANCE:
        gate = "passed"
    else:
        gate = "failed"

    payload = {
        "benchmark": "dse_convergence",
        "config": config,
        "environment": environment(),
        "serial": summarize(serial, serial_wall),
        "parallel": summarize(parallel, parallel_wall),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0
        else None,
        "deterministic": deterministic,
        "speedup_gate": gate,
    }
    payload["baseline_comparison"] = compare_to_baseline(
        baseline, payload, objective_note
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    # Archive the rendered table next to the pytest-benchmark artifacts.
    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dse-convergence-smoke.txt").write_text(
        f"### DSE convergence smoke (reduced size)\n{parallel.render()}\n"
        f"serial {serial_wall:.2f}s -> parallel x{args.workers} "
        f"{parallel_wall:.2f}s (speedup {payload['speedup']}, "
        f"gate {gate})\n"
    )

    print(f"wrote {args.out}")
    print(
        f"serial {serial_wall:.2f}s, parallel x{args.workers} "
        f"{parallel_wall:.2f}s, speedup {payload['speedup']}, "
        f"cache hit rate {payload['parallel']['cache_hit_rate']:.1%}, "
        f"deterministic={deterministic}"
    )
    serial_phases = payload["serial"]["phases"]
    parallel_phases = payload["parallel"]["phases"]
    print(
        f"phases (serial): eval {serial_phases['eval_seconds']}s, cache "
        f"{serial_phases['cache_seconds']}s | (parallel): eval "
        f"{parallel_phases['eval_seconds']}s, cache "
        f"{parallel_phases['cache_seconds']}s, pool overhead "
        f"{parallel_phases['pool_overhead_seconds']}s"
    )
    if not deterministic:
        print("ERROR: parallel search diverged from serial results")
        return 1
    if gate == "failed":
        print(
            f"ERROR: speedup gate failed on a multi-core runner "
            f"({os.cpu_count()} cores): parallel {parallel_wall:.2f}s > "
            f"serial {serial_wall:.2f}s x {SPEEDUP_GATE_TOLERANCE}"
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# suite: serving
# ---------------------------------------------------------------------------
def summarize_serving(report) -> dict:
    return {
        "completed": report.completed,
        "latency_p50_ms": round(report.latency_p50_ms, 3),
        "latency_p95_ms": round(report.latency_p95_ms, 3),
        "latency_p99_ms": round(report.latency_p99_ms, 3),
        "latency_mean_ms": round(report.latency_mean_ms, 3),
        "deadline_misses": report.deadline_misses,
        "deadline_miss_rate": round(report.miss_rate, 4),
        "throughput_fps": round(report.throughput_fps, 2),
        "mean_batch_size": round(report.mean_batch_size, 3),
        "mean_utilization": round(report.mean_utilization, 4),
    }


def run_serving_suite(args: argparse.Namespace) -> int:
    from repro.devices.fpga import get_device
    from repro.fcad.flow import FCad
    from repro.models.zoo import get_model
    from repro.serving import (
        ReplicaPool,
        report_to_json,
        saturation_workload,
        serve_workload,
    )

    result = FCad(
        network=get_model(args.model),
        device=get_device(args.device),
        quant=args.quant,
    ).run(
        iterations=args.iterations,
        population=args.population,
        seed=0,
        workers=1,
    )
    profile = result.frame_latency_profile(frames=8)

    workload = saturation_workload(
        profile,
        replicas=args.replicas,
        avatar_fps=args.avatar_fps,
        frames_per_avatar=args.frames,
    )
    avatars = workload.avatars

    def session(policy: str):
        pool = ReplicaPool(
            profile, replicas=args.replicas, max_batch=args.max_batch
        )
        started = time.perf_counter()
        report = serve_workload(pool, workload, policy=policy)
        return report, time.perf_counter() - started

    fifo, fifo_wall = session("fifo")
    edf, edf_wall = session("edf")
    edf_again, _ = session("edf")
    deterministic = report_to_json(edf) == report_to_json(edf_again)

    payload = {
        "benchmark": "avatar_serving",
        "config": {
            "model": args.model,
            "device": args.device,
            "quant": args.quant,
            "iterations": args.iterations,
            "population": args.population,
            "replicas": args.replicas,
            "max_batch": args.max_batch,
            "avatars": avatars,
            "frames_per_avatar": args.frames,
            "avatar_fps": args.avatar_fps,
            "deadline_tiers_ms": list(workload.deadline_tiers),
        },
        "environment": environment(),
        "design": {
            "steady_fps": round(result.fps, 2),
            "first_frame_ms": round(profile.first_frame_ms, 3),
            "steady_interval_ms": round(profile.steady_interval_ms, 3),
        },
        "policies": {
            "fifo": summarize_serving(fifo),
            "edf": summarize_serving(edf),
        },
        "edf_vs_fifo": {
            "miss_rate_delta": round(edf.miss_rate - fifo.miss_rate, 4),
            "p99_delta_ms": round(
                edf.latency_p99_ms - fifo.latency_p99_ms, 3
            ),
        },
        "wall_seconds": {
            "fifo": round(fifo_wall, 3),
            "edf": round(edf_wall, 3),
        },
        "deterministic": deterministic,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "serving-smoke.txt").write_text(
        f"### Avatar serving smoke (reduced size)\n"
        f"{fifo.render()}\n\n{edf.render()}\n"
    )

    print(f"wrote {args.out}")
    print(
        f"{avatars} avatars on {args.replicas} replicas: "
        f"fifo miss {100 * fifo.miss_rate:.1f}% p99 "
        f"{fifo.latency_p99_ms:.1f} ms | edf miss "
        f"{100 * edf.miss_rate:.1f}% p99 {edf.latency_p99_ms:.1f} ms, "
        f"deterministic={deterministic}"
    )
    if not deterministic:
        print("ERROR: serving sessions diverged at the same seed")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        default="dse",
        choices=["dse", "serving"],
        help="which benchmark smoke to run (default: dse)",
    )
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8")
    parser.add_argument(
        "--objective",
        default="paper",
        choices=["paper", "slo", "composite"],
        help="fitness objective for the DSE suite; recorded in the "
        "payload so trajectories under different objectives are never "
        "compared (default: paper)",
    )
    parser.add_argument("--searches", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, min(4, os.cpu_count() or 1)),
        help="workers for the parallel run (default: up to 4)",
    )
    # serving-suite knobs
    parser.add_argument("--model", default="codec_avatar_decoder")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--avatar-fps", type=float, default=30.0)
    parser.add_argument(
        "--out",
        help="output path (default: BENCH_dse.json / BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = f"BENCH_{args.suite}.json"

    if args.suite == "serving":
        return run_serving_suite(args)
    return run_dse_suite(args)


if __name__ == "__main__":
    sys.exit(main())
