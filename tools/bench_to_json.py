#!/usr/bin/env python
"""Run the DSE convergence benchmark at reduced size, emit BENCH_dse.json.

CI's bench-smoke job calls this on every PR so the performance trajectory
of the search engine is machine-readable: best fitness, Algorithm-2
evaluations, cache hits, and wall time for a serial and a parallel run of
the same reduced Sec.-VII study, plus the serial/parallel speedup. The
script exits nonzero if the parallel run is not bit-identical to the
serial one — a free determinism check on every PR.

Run:  PYTHONPATH=src python tools/bench_to_json.py [--out BENCH_dse.json]
(or from anywhere: the script puts ``src/`` on ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.convergence import ConvergenceResult, run_convergence  # noqa: E402


def summarize(result: ConvergenceResult, wall_seconds: float) -> dict:
    return {
        "workers": result.workers,
        "wall_seconds": round(wall_seconds, 3),
        "best_fitness": result.best_fitness,
        "best_fitness_per_search": [s.best_fitness for s in result.searches],
        "avg_convergence_iteration": result.avg_iteration,
        "evaluations": result.total_evaluations,
        "cache_hits": result.total_cache_hits,
        "cache_hit_rate": round(
            result.total_cache_hits
            / max(1, result.total_cache_hits + result.total_evaluations),
            4,
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8")
    parser.add_argument("--searches", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, min(4, os.cpu_count() or 1)),
        help="workers for the parallel run (default: up to 4)",
    )
    parser.add_argument("--out", default="BENCH_dse.json")
    args = parser.parse_args(argv)

    config = dict(
        device_name=args.device,
        quant_name=args.quant,
        searches=args.searches,
        iterations=args.iterations,
        population=args.population,
    )

    started = time.perf_counter()
    serial = run_convergence(**config, workers=1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_convergence(**config, workers=args.workers)
    parallel_wall = time.perf_counter() - started

    deterministic = [s.best_fitness for s in serial.searches] == [
        s.best_fitness for s in parallel.searches
    ]
    payload = {
        "benchmark": "dse_convergence",
        "config": config,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "serial": summarize(serial, serial_wall),
        "parallel": summarize(parallel, parallel_wall),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0
        else None,
        "deterministic": deterministic,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    # Archive the rendered table next to the pytest-benchmark artifacts.
    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dse-convergence-smoke.txt").write_text(
        f"### DSE convergence smoke (reduced size)\n{parallel.render()}\n"
        f"serial {serial_wall:.2f}s -> parallel x{args.workers} "
        f"{parallel_wall:.2f}s (speedup {payload['speedup']})\n"
    )

    print(f"wrote {args.out}")
    print(
        f"serial {serial_wall:.2f}s, parallel x{args.workers} "
        f"{parallel_wall:.2f}s, speedup {payload['speedup']}, "
        f"deterministic={deterministic}"
    )
    if not deterministic:
        print("ERROR: parallel search diverged from serial results")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
