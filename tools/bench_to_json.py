#!/usr/bin/env python
"""Run a reduced benchmark suite and emit a machine-readable BENCH_*.json.

Two suites, one per CI smoke job, so the repo's performance trajectory is
comparable PR over PR:

- ``--suite dse`` (default) — the DSE convergence study at reduced size,
  serial vs parallel, written to ``BENCH_dse.json``. Exits nonzero if the
  parallel run is not bit-identical to the serial one.
- ``--suite serving`` — the avatar serving layer: explore a design once,
  deploy simulated replicas, and serve the *same* mixed-deadline workload
  under FIFO and EDF batching. Written to ``BENCH_serving.json`` with p99
  latency, deadline-miss rate, and throughput per policy. Exits nonzero
  if two EDF sessions at the same seed are not bit-identical (the virtual
  clock's determinism guarantee, checked on every PR).

Run:  PYTHONPATH=src python tools/bench_to_json.py [--suite serving] [--out F]
(or from anywhere: the script puts ``src/`` on ``sys.path`` itself)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.convergence import ConvergenceResult, run_convergence  # noqa: E402


def environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


# ---------------------------------------------------------------------------
# suite: dse
# ---------------------------------------------------------------------------
def summarize(result: ConvergenceResult, wall_seconds: float) -> dict:
    return {
        "workers": result.workers,
        "wall_seconds": round(wall_seconds, 3),
        "best_fitness": result.best_fitness,
        "best_fitness_per_search": [s.best_fitness for s in result.searches],
        "avg_convergence_iteration": result.avg_iteration,
        "evaluations": result.total_evaluations,
        "cache_hits": result.total_cache_hits,
        "cache_hit_rate": round(
            result.total_cache_hits
            / max(1, result.total_cache_hits + result.total_evaluations),
            4,
        ),
    }


def run_dse_suite(args: argparse.Namespace) -> int:
    config = dict(
        device_name=args.device,
        quant_name=args.quant,
        searches=args.searches,
        iterations=args.iterations,
        population=args.population,
    )

    started = time.perf_counter()
    serial = run_convergence(**config, workers=1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_convergence(**config, workers=args.workers)
    parallel_wall = time.perf_counter() - started

    deterministic = [s.best_fitness for s in serial.searches] == [
        s.best_fitness for s in parallel.searches
    ]
    payload = {
        "benchmark": "dse_convergence",
        "config": config,
        "environment": environment(),
        "serial": summarize(serial, serial_wall),
        "parallel": summarize(parallel, parallel_wall),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0
        else None,
        "deterministic": deterministic,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    # Archive the rendered table next to the pytest-benchmark artifacts.
    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "dse-convergence-smoke.txt").write_text(
        f"### DSE convergence smoke (reduced size)\n{parallel.render()}\n"
        f"serial {serial_wall:.2f}s -> parallel x{args.workers} "
        f"{parallel_wall:.2f}s (speedup {payload['speedup']})\n"
    )

    print(f"wrote {args.out}")
    print(
        f"serial {serial_wall:.2f}s, parallel x{args.workers} "
        f"{parallel_wall:.2f}s, speedup {payload['speedup']}, "
        f"deterministic={deterministic}"
    )
    if not deterministic:
        print("ERROR: parallel search diverged from serial results")
        return 1
    return 0


# ---------------------------------------------------------------------------
# suite: serving
# ---------------------------------------------------------------------------
def summarize_serving(report) -> dict:
    return {
        "completed": report.completed,
        "latency_p50_ms": round(report.latency_p50_ms, 3),
        "latency_p95_ms": round(report.latency_p95_ms, 3),
        "latency_p99_ms": round(report.latency_p99_ms, 3),
        "latency_mean_ms": round(report.latency_mean_ms, 3),
        "deadline_misses": report.deadline_misses,
        "deadline_miss_rate": round(report.miss_rate, 4),
        "throughput_fps": round(report.throughput_fps, 2),
        "mean_batch_size": round(report.mean_batch_size, 3),
        "mean_utilization": round(report.mean_utilization, 4),
    }


def run_serving_suite(args: argparse.Namespace) -> int:
    from repro.devices.fpga import get_device
    from repro.fcad.flow import FCad
    from repro.models.zoo import get_model
    from repro.serving import (
        ReplicaPool,
        report_to_json,
        saturation_workload,
        serve_workload,
    )

    result = FCad(
        network=get_model(args.model),
        device=get_device(args.device),
        quant=args.quant,
    ).run(
        iterations=args.iterations,
        population=args.population,
        seed=0,
        workers=1,
    )
    profile = result.frame_latency_profile(frames=8)

    workload = saturation_workload(
        profile,
        replicas=args.replicas,
        avatar_fps=args.avatar_fps,
        frames_per_avatar=args.frames,
    )
    avatars = workload.avatars

    def session(policy: str):
        pool = ReplicaPool(
            profile, replicas=args.replicas, max_batch=args.max_batch
        )
        started = time.perf_counter()
        report = serve_workload(pool, workload, policy=policy)
        return report, time.perf_counter() - started

    fifo, fifo_wall = session("fifo")
    edf, edf_wall = session("edf")
    edf_again, _ = session("edf")
    deterministic = report_to_json(edf) == report_to_json(edf_again)

    payload = {
        "benchmark": "avatar_serving",
        "config": {
            "model": args.model,
            "device": args.device,
            "quant": args.quant,
            "iterations": args.iterations,
            "population": args.population,
            "replicas": args.replicas,
            "max_batch": args.max_batch,
            "avatars": avatars,
            "frames_per_avatar": args.frames,
            "avatar_fps": args.avatar_fps,
            "deadline_tiers_ms": list(workload.deadline_tiers),
        },
        "environment": environment(),
        "design": {
            "steady_fps": round(result.fps, 2),
            "first_frame_ms": round(profile.first_frame_ms, 3),
            "steady_interval_ms": round(profile.steady_interval_ms, 3),
        },
        "policies": {
            "fifo": summarize_serving(fifo),
            "edf": summarize_serving(edf),
        },
        "edf_vs_fifo": {
            "miss_rate_delta": round(edf.miss_rate - fifo.miss_rate, 4),
            "p99_delta_ms": round(
                edf.latency_p99_ms - fifo.latency_p99_ms, 3
            ),
        },
        "wall_seconds": {
            "fifo": round(fifo_wall, 3),
            "edf": round(edf_wall, 3),
        },
        "deterministic": deterministic,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    out_dir = REPO / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "serving-smoke.txt").write_text(
        f"### Avatar serving smoke (reduced size)\n"
        f"{fifo.render()}\n\n{edf.render()}\n"
    )

    print(f"wrote {args.out}")
    print(
        f"{avatars} avatars on {args.replicas} replicas: "
        f"fifo miss {100 * fifo.miss_rate:.1f}% p99 "
        f"{fifo.latency_p99_ms:.1f} ms | edf miss "
        f"{100 * edf.miss_rate:.1f}% p99 {edf.latency_p99_ms:.1f} ms, "
        f"deterministic={deterministic}"
    )
    if not deterministic:
        print("ERROR: serving sessions diverged at the same seed")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        default="dse",
        choices=["dse", "serving"],
        help="which benchmark smoke to run (default: dse)",
    )
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8")
    parser.add_argument("--searches", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, min(4, os.cpu_count() or 1)),
        help="workers for the parallel run (default: up to 4)",
    )
    # serving-suite knobs
    parser.add_argument("--model", default="codec_avatar_decoder")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--frames", type=int, default=30)
    parser.add_argument("--avatar-fps", type=float, default=30.0)
    parser.add_argument(
        "--out",
        help="output path (default: BENCH_dse.json / BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = f"BENCH_{args.suite}.json"

    if args.suite == "serving":
        return run_serving_suite(args)
    return run_dse_suite(args)


if __name__ == "__main__":
    sys.exit(main())
