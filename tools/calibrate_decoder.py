#!/usr/bin/env python
"""Calibrate the decoder channel plan against the paper's Table I.

The paper publishes the decoder topology, per-branch GOP (1.9 / 11.3 / 4.9,
13.6 unique) and parameter shares, but not channel widths. This script
performs a randomized local search over integer channel widths to minimize
the relative error against those targets. The best plan found is frozen as
``repro.models.codec_avatar.REFERENCE_PLAN``.

Run:  python tools/calibrate_decoder.py [--iterations N] [--seed S]
"""

from __future__ import annotations

import argparse
import random

from repro.models.codec_avatar import DecoderPlan, build_codec_avatar_decoder
from repro.profiler import profile_network

# Table I targets: (ops GOP per branch row, unique GOP, param share per row).
TARGET_BRANCH_GOP = (1.9, 11.3, 4.9)
TARGET_UNIQUE_GOP = 13.6
TARGET_PARAM_SHARE = (0.121, 0.670, 0.209)


def plan_error(plan: DecoderPlan) -> float:
    """Weighted relative error of a plan against the Table I targets."""
    try:
        profile = profile_network(build_codec_avatar_decoder(plan))
    except ValueError:
        return float("inf")
    err = 0.0
    for branch, target in zip(profile.branches, TARGET_BRANCH_GOP):
        err += abs(branch.ops / 1e9 - target) / target
    err += abs(profile.total_ops / 1e9 - TARGET_UNIQUE_GOP) / TARGET_UNIQUE_GOP
    row_params = sum(b.params for b in profile.branches)
    for branch, share in zip(profile.branches, TARGET_PARAM_SHARE):
        err += 0.5 * abs(branch.params / row_params - share) / share
    return err


def perturb(plan: DecoderPlan, rng: random.Random) -> DecoderPlan:
    """Randomly nudge one channel width by one even step."""

    def nudge(values: tuple[int, ...]) -> tuple[int, ...]:
        idx = rng.randrange(len(values))
        step = rng.choice((-8, -4, -2, 2, 4, 8))
        new = list(values)
        new[idx] = max(2, new[idx] + step)
        return tuple(new)

    field = rng.choice(("br1_channels", "shared_channels", "br2_channels"))
    kwargs = {field: nudge(getattr(plan, field))}
    return DecoderPlan(
        br1_channels=kwargs.get("br1_channels", plan.br1_channels),
        shared_channels=kwargs.get("shared_channels", plan.shared_channels),
        br2_channels=kwargs.get("br2_channels", plan.br2_channels),
        br3_kernel=plan.br3_kernel,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rng = random.Random(args.seed)

    best = DecoderPlan()
    best_err = plan_error(best)
    print(f"start: err={best_err:.4f}  plan={best}")
    for step in range(args.iterations):
        candidate = perturb(best, rng)
        err = plan_error(candidate)
        if err < best_err:
            best, best_err = candidate, err
            print(f"step {step}: err={err:.4f}  plan={candidate}")

    profile = profile_network(build_codec_avatar_decoder(best))
    print("\nbest plan:", best)
    print(f"error: {best_err:.4f}")
    for branch, target in zip(profile.branches, TARGET_BRANCH_GOP):
        print(
            f"  Br.{branch.index + 1}: {branch.ops / 1e9:.2f} GOP "
            f"(target {target}), params {branch.params / 1e6:.2f} M"
        )
    print(f"  unique: {profile.total_ops / 1e9:.2f} GOP (target 13.6)")


if __name__ == "__main__":
    main()
