"""Benchmark: regenerate Table I (decoder profile)."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1

from conftest import emit


def test_table1_profile(benchmark):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    emit("Table I", result.render())
    # Shape assertions: per-branch GOP within 5% of the paper.
    for row in result.rows:
        assert row.gop == pytest.approx(row.paper_gop, rel=0.05)
    assert result.unique_gop == pytest.approx(13.6, rel=0.05)
