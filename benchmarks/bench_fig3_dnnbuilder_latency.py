"""Benchmark: regenerate Fig. 3 (DNNBuilder per-layer latency saturation)."""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3

from conftest import emit


def test_fig3_dnnbuilder_latency(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=3, iterations=1)
    emit("Fig. 3", result.render())

    # The circled behaviour: thin HD layers stop scaling...
    assert "texture" in result.saturated
    # ...while the others keep improving with bigger FPGAs.
    schemes = sorted(result.latencies)
    for layer in result.layer_names:
        series = [result.latencies[s][layer] for s in schemes]
        if layer in result.saturated:
            assert series[0] == series[-1]
        else:
            assert series[-1] < series[0]
