"""Benchmark: regenerate Table V (F-CAD vs DNNBuilder vs HybridDNN, ZU9CG)."""

from __future__ import annotations

from functools import partial

from repro.experiments.table5 import run_table5

from conftest import emit

RUN = partial(run_table5, iterations=20, population=200, seed=0)


def test_table5_comparison(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Table V", result.render())

    # The paper's headline shape: F-CAD wins by integer factors (4.0x and
    # 2.8x there) with far higher efficiency.
    assert result.speedup_vs_dnnbuilder > 2.0
    assert result.speedup_vs_hybriddnn > 1.5
    assert result.fcad_int8.efficiency > result.dnnbuilder.efficiency + 0.30
    assert result.fcad_int16.efficiency > result.hybriddnn.efficiency
    # Every design targets the same FPGA budget.
    for dsp in (
        result.dnnbuilder.dsp,
        result.hybriddnn.dsp,
        result.fcad_int8.dse.best_perf.total_dsp,
        result.fcad_int16.dse.best_perf.total_dsp,
    ):
        assert dsp <= 2520
