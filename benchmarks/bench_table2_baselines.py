"""Benchmark: regenerate Table II (mimic decoder on existing accelerators)."""

from __future__ import annotations

import pytest

from repro.experiments.table2 import run_table2

from conftest import emit


def test_table2_baselines(benchmark):
    result = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    emit("Table II", result.render())

    # The SoC lands in the paper's band.
    assert result.soc.fps == pytest.approx(35.8, rel=0.15)
    assert result.soc.efficiency == pytest.approx(0.169, abs=0.03)
    # DNNBuilder: flat FPS, collapsing efficiency.
    fps = [result.dnnbuilder[s].fps for s in (1, 2, 3)]
    assert max(fps) - min(fps) < 0.02 * fps[0]
    eff = [result.dnnbuilder[s].efficiency for s in (1, 2, 3)]
    assert eff[0] > eff[1] > eff[2]
    # HybridDNN: scales once, then the BRAM wall.
    assert result.hybriddnn[2].dsp == result.hybriddnn[3].dsp == 1024
    assert result.hybriddnn[1].fps == pytest.approx(12.1, rel=0.15)
    assert result.hybriddnn[2].fps == pytest.approx(22.0, rel=0.15)
