"""Microbenchmark: scalar Algorithm 2 vs the batched generation kernel.

Replays a generation-shaped stream of deduplicated budget buckets (random
splits of the device budget, snapped to the evaluation cache's
quantization grid — the exact traffic :class:`GenerationEvaluator` sees)
through both solvers:

- **scalar** — ``optimize_branch`` per bucket against a cold
  :class:`BranchEvalTable`, the pre-kernel hot path;
- **batched** — one ``solve_buckets`` pass per branch against an equally
  cold table, recording the ladder/growth/measure phase split.

The two must produce byte-for-byte identical pickles (the kernel's core
guarantee); the speedup is the number the ``kernel`` section of
``BENCH_dse.json`` gates on. Importable by ``tools/bench_to_json.py``
and runnable standalone::

    PYTHONPATH=src python benchmarks/bench_inbranch.py [--buckets N]
"""

from __future__ import annotations

import argparse
import pickle
import random
import sys
import time

from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.inbranch import BranchEvalTable, optimize_branch
from repro.dse.kernel import KernelTimings, solve_buckets
from repro.dse.worker import canonical_rd, quantize_rd
from repro.experiments import paper_constants as paper
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.quant.schemes import get_scheme


def bucket_stream(
    budget, branches: int, per_branch: int, seed: int
) -> list[list]:
    """Deduplicated canonical budgets per branch, DSE-traffic shaped.

    Each sample splits the device budget with independent uniform
    fractions (what a PSO position does), quantizes to the cache grid,
    and dedups — the stream the generation evaluator actually solves.
    """
    rng = random.Random(seed)
    streams: list[list] = []
    for _ in range(branches):
        seen = set()
        rds = []
        while len(rds) < per_branch:
            bucket = quantize_rd(
                type(budget)(
                    compute=int(budget.compute * rng.random()),
                    memory=int(budget.memory * rng.random()),
                    bandwidth_gbps=budget.bandwidth_gbps * rng.random(),
                )
            )
            if bucket not in seen:
                seen.add(bucket)
                rds.append(canonical_rd(bucket))
        streams.append(rds)
    return streams


def run_microbench(
    buckets_per_branch: int = 512,
    seed: int = 0,
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
) -> dict:
    """Time scalar vs batched Algorithm 2 on one bucket stream.

    Returns the ``kernel`` payload section: bucket counts, both wall
    times, the batched phase split, the speedup, and whether the two
    solvers' solutions pickled byte-for-byte identical.
    """
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    batch_sizes = paper.TABLE4_BATCH_SIZES
    frequency_mhz = device.default_frequency_mhz
    streams = bucket_stream(
        device.budget(), len(plan.branches), buckets_per_branch, seed
    )

    def fresh_tables() -> list[BranchEvalTable]:
        # Cold tables for each measured side: the comparison is
        # first-solve cost, the regime a new search generation is in.
        return [
            BranchEvalTable(branch, quant, frequency_mhz)
            for branch in plan.branches
        ]

    tables = fresh_tables()
    started = time.perf_counter()
    scalar = [
        [
            optimize_branch(
                branch, rd, batch_sizes[b], quant, frequency_mhz, table=table
            )
            for rd in streams[b]
        ]
        for b, (branch, table) in enumerate(zip(plan.branches, tables))
    ]
    scalar_seconds = time.perf_counter() - started

    tables = fresh_tables()
    timings = KernelTimings()
    started = time.perf_counter()
    batched = [
        solve_buckets(table, streams[b], batch_sizes[b], timings)
        for b, table in enumerate(tables)
    ]
    batched_seconds = time.perf_counter() - started

    # Per-solution pickles: the batched solver returns *shared* memoized
    # objects for repeated (batch, state) pairs, so an aggregate pickle
    # would differ by memo back-references alone even when every solution
    # matches byte for byte.
    identical = all(
        pickle.dumps(s) == pickle.dumps(b)
        for s_row, b_row in zip(scalar, batched)
        for s, b in zip(s_row, b_row)
    )
    return {
        "device": device_name,
        "quant": quant_name,
        "seed": seed,
        "branches": len(plan.branches),
        "buckets_per_branch": buckets_per_branch,
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "batched_phases": {
            "ladder_seconds": round(timings.ladder_seconds, 4),
            "growth_seconds": round(timings.growth_seconds, 4),
            "measure_seconds": round(timings.measure_seconds, 4),
        },
        "speedup": round(scalar_seconds / batched_seconds, 3)
        if batched_seconds > 0
        else None,
        "identical": identical,
    }


def test_kernel_microbench(benchmark):
    from conftest import emit

    result = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    emit(
        "Batched Algorithm-2 kernel vs scalar",
        "\n".join(f"{key}: {value}" for key, value in result.items()),
    )
    assert result["identical"], "batched kernel diverged from the scalar solver"
    assert result["speedup"] and result["speedup"] > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--buckets", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8")
    args = parser.parse_args(argv)
    result = run_microbench(
        buckets_per_branch=args.buckets,
        seed=args.seed,
        device_name=args.device,
        quant_name=args.quant,
    )
    for key, value in result.items():
        print(f"{key}: {value}")
    if not result["identical"]:
        print("ERROR: batched kernel diverged from the scalar solver")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
