"""Benchmarks: ablations of F-CAD's three design choices (see DESIGN.md).

Not in the paper's evaluation — these isolate the mechanisms the paper
credits for its wins: 3-D parallelism, the stochastic cross-branch search,
and the branch-variance fitness penalty.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.ablations import (
    run_ablation_alpha,
    run_ablation_batch,
    run_ablation_parallelism,
    run_ablation_search,
)

from conftest import emit


def test_ablation_3d_parallelism(benchmark):
    run = partial(run_ablation_parallelism, iterations=10, population=80)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: 3-D vs 2-D parallelism", result.render())

    # Without the H-partition the thin HD texture convs cap the decoder —
    # the mechanism behind the paper's 4x win over DNNBuilder.
    assert result.texture_speedup >= 2.0
    assert result.full_3d.fps > result.two_level.fps
    assert (
        result.full_3d.overall_efficiency
        > result.two_level.overall_efficiency
    )


def test_ablation_search_strategy(benchmark):
    run = partial(run_ablation_search, iterations=8, population=60)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: search strategy", result.render())

    pso = result.fitness["PSO (Algorithm 1)"]
    rand = result.fitness["random sampling"]
    heuristic = result.fitness["heuristic split only"]
    # Evolution refines what sampling finds; one heuristic guess trails both.
    assert pso >= rand
    assert pso > heuristic


def test_ablation_variance_penalty(benchmark):
    run = partial(run_ablation_alpha, iterations=8, population=60)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: variance penalty", result.render())

    # Variance falls monotonically as alpha grows...
    variances = [result.variance(i) for i in range(len(result.alphas))]
    assert all(b <= a for a, b in zip(variances, variances[1:]))
    # ...and alpha = 0 degenerates into starving the critical branch.
    assert min(result.branch_fps(0)) < min(result.branch_fps(1))


def test_ablation_batch_scheme(benchmark):
    run = partial(run_ablation_batch, iterations=8, population=60)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: batch scheme", result.render())

    # Replication and parallelism are fungible on this architecture: the
    # differentiated scheme matches (never loses to) both uniform schemes
    # at a comparable budget.
    rates = {name: result.effective_eye_rate(name) for name in result.schemes}
    assert rates["differentiated {1,2,2}"] >= 0.95 * max(rates.values())
    dsps = [perf.total_dsp for perf in result.schemes.values()]
    assert max(dsps) <= 1.1 * min(dsps)
