"""Benchmark: decoder-family generality study (extension experiment)."""

from __future__ import annotations

from functools import partial

from repro.experiments.family import run_decoder_family

from conftest import emit

RUN = partial(run_decoder_family, iterations=10, population=80, seed=0)


def test_decoder_family(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Decoder family study", result.render())

    for name, flow_result in result.results.items():
        perf = flow_result.dse.best_perf
        # Every family explores to a working design within budget.
        assert perf.fps > 0, name
        assert perf.total_dsp <= 2520, name
        # Every branch receives real resources (no starved module).
        for branch in perf.branches:
            assert branch.dsp > 0, (name, branch.index)
            assert branch.fps > 1.0, (name, branch.index)
