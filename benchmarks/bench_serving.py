"""Benchmark: the avatar serving layer under FIFO vs EDF vs fair batching,
plus the event-heap engine at population scale.

Explores a design for the codec avatar decoder once, deploys simulated
replicas, and serves the same mixed-deadline multi-avatar workload under
every policy on the virtual clock. Asserts the properties the serving
layer exists to provide: full completion, meaningful utilization, EDF
beating FIFO on deadline misses at moderate saturation, bit-identical
reports across runs at one seed, and the heap engine reproducing the
coroutine scheduler's report on the shared workload.

The scale study then serves a diurnal session of ~1.1M avatar requests
(one million avatars at full size) through the event-heap engine with
autoscaling and admission control, and gates on wall time.

``FCAD_BENCH_SERVING_REDUCED=1`` shrinks the design search and the scale
study (~110k requests) for CI smoke.
"""

from __future__ import annotations

import os
import time

from repro.devices.fpga import get_device
from repro.fcad.flow import FCad
from repro.models.zoo import get_model
from repro.serving import (
    AutoscalePolicy,
    ReplicaPool,
    make_trace,
    report_to_json,
    saturation_workload,
    serve_trace,
    serve_workload,
)

from conftest import emit

REDUCED = bool(os.environ.get("FCAD_BENCH_SERVING_REDUCED"))
REPLICAS = 2
POLICIES = ("fifo", "edf", "fair")

# Scale-study session: a metropolis of avatars at a slow per-avatar frame
# rate (a periodic pose refresh, not a live video stream), so the request
# volume — not the per-avatar rate — is what stresses the engine.
SCALE_AVATARS = 100_000 if REDUCED else 1_000_000
SCALE_DURATION_S = 60.0 if REDUCED else 120.0
SCALE_AVATAR_FPS = 1.0 / 30.0 if REDUCED else 1.0 / 60.0
SCALE_WALL_BUDGET_S = 60.0


def run_serving_study() -> dict:
    result = FCad(
        network=get_model("codec_avatar_decoder"),
        device=get_device("ZU9CG"),
        quant="int8",
    ).run(
        iterations=4 if REDUCED else 10,
        population=24 if REDUCED else 80,
        seed=0,
    )
    profile = result.frame_latency_profile(frames=8)
    # The canonical ~85%-of-capacity mixed-tier workload — the same
    # builder BENCH_serving.json uses, so both surfaces measure one
    # regime.
    workload = saturation_workload(
        profile,
        replicas=REPLICAS,
        frames_per_avatar=20 if REDUCED else 60,
    )

    reports = {}
    for policy in POLICIES:
        pool = ReplicaPool(profile, replicas=REPLICAS, max_batch=8)
        reports[policy] = serve_workload(pool, workload, policy=policy)
    # Determinism check: replay one policy and compare serialized reports.
    pool = ReplicaPool(profile, replicas=REPLICAS, max_batch=8)
    replay = serve_workload(pool, workload, policy="edf")
    # Engine-equivalence check: the event-heap engine must reproduce the
    # coroutine scheduler's counters on the very same workload.
    heap = serve_trace(
        ReplicaPool(profile, replicas=REPLICAS, max_batch=8),
        workload,
        policy="edf",
    )
    return {
        "reports": reports,
        "deterministic": report_to_json(replay)
        == report_to_json(reports["edf"]),
        "heap_edf": heap,
    }


def run_engine_scale_study() -> dict:
    """Serve a city's worth of avatars through the event-heap engine."""
    result = FCad(
        network=get_model("codec_avatar_decoder"),
        device=get_device("ZU9CG"),
        quant="int8",
    ).run(
        iterations=4 if REDUCED else 10,
        population=24 if REDUCED else 80,
        seed=0,
    )
    profile = result.frame_latency_profile(frames=8)

    def session() -> tuple[str, float, float]:
        t0 = time.perf_counter()
        trace = make_trace(
            SCALE_AVATARS,
            SCALE_DURATION_S,
            shape="diurnal",
            avatar_fps=SCALE_AVATAR_FPS,
            deadline_ms=200.0,
            jitter_ms=400.0,
            seed=42,
        )
        trace_s = time.perf_counter() - t0
        spec = result.serving_group(
            name="fleet", replicas=2, policy="edf", profile=profile
        )
        report = serve_trace(
            spec,
            trace,
            admission=True,
            autoscale=AutoscalePolicy(
                check_interval_ms=1000.0,
                warmup_ms=5000.0,
                min_replicas=2,
                max_replicas=64,
            ),
        )
        return report_to_json(report), trace_s, time.perf_counter() - t0

    first, trace_s, wall_s = session()
    replay, _, _ = session()
    return {
        "report_json": first,
        "trace_s": trace_s,
        "wall_s": wall_s,
        "deterministic": first == replay,
    }


def test_serving_policies(benchmark):
    study = benchmark.pedantic(run_serving_study, rounds=1, iterations=1)
    reports = study["reports"]
    emit(
        "Avatar serving policies",
        "\n\n".join(reports[policy].render() for policy in POLICIES),
    )

    fifo, edf = reports["fifo"], reports["edf"]
    # Every submitted frame is eventually decoded, under every policy.
    for report in reports.values():
        assert report.completed == report.submitted
        assert report.throughput_fps > 0
        assert max(report.replica_utilization) > 0.5
    # Same workload, same replicas: throughput matches across policies.
    assert fifo.completed == edf.completed
    # The point of deadline-aware scheduling: fewer misses than FIFO at
    # moderate saturation with mixed SLO tiers.
    assert edf.deadline_misses <= fifo.deadline_misses
    # Percentiles are ordered and positive.
    for report in reports.values():
        assert (
            0
            < report.latency_p50_ms
            <= report.latency_p95_ms
            <= report.latency_p99_ms
        )
    # Virtual-clock sessions are reproducible bit for bit.
    assert study["deterministic"]
    # The event-heap engine reproduces the coroutine scheduler's counters
    # (latency floats agree to clock round-off; counters must be exact).
    heap = study["heap_edf"]
    assert heap.engine == "heap"
    for field in ("submitted", "completed", "deadline_misses", "batches"):
        assert getattr(heap, field) == getattr(edf, field), field


def test_engine_scale(benchmark):
    import json

    study = benchmark.pedantic(run_engine_scale_study, rounds=1, iterations=1)
    report = json.loads(study["report_json"])
    emit(
        "Event-heap engine at scale",
        "\n".join(
            [
                f"avatars            {report['avatars']:>12,}",
                f"requests submitted {report['submitted']:>12,}",
                f"completed          {report['completed']:>12,}",
                f"shed               {report['shed']:>12,}",
                f"deadline misses    {report['deadline_misses']:>12,}",
                f"peak replicas      {report['peak_replicas']:>12,}",
                f"scale ups/downs    {report['scale_ups']:>6,} / {report['scale_downs']:,}",
                f"trace build        {study['trace_s']:>11.2f}s",
                f"serve wall         {study['wall_s']:>11.2f}s",
                f"sim req/s          {report['submitted'] / study['wall_s']:>12,.0f}",
            ]
        ),
    )
    assert report["engine"] == "heap" and report["shape"] == "diurnal"
    assert report["avatars"] == SCALE_AVATARS
    assert report["submitted"] >= (100_000 if REDUCED else 1_000_000)
    # Nothing vanishes: every request is either served or shed.
    assert report["completed"] + report["shed"] == report["submitted"]
    assert report["scale_ups"] > 0 and report["peak_replicas"] > 2
    # The engine's reason to exist: population scale inside the budget.
    assert study["wall_s"] < SCALE_WALL_BUDGET_S
    # And the virtual clock keeps its promise at a million avatars.
    assert study["deterministic"]
