"""Benchmark: the avatar serving layer under FIFO vs EDF vs fair batching.

Explores a design for the codec avatar decoder once, deploys simulated
replicas, and serves the same mixed-deadline multi-avatar workload under
every policy on the virtual clock. Asserts the properties the serving
layer exists to provide: full completion, meaningful utilization, EDF
beating FIFO on deadline misses at moderate saturation, and bit-identical
reports across runs at one seed.

``FCAD_BENCH_SERVING_REDUCED=1`` shrinks the design search for CI smoke.
"""

from __future__ import annotations

import os

from repro.devices.fpga import get_device
from repro.fcad.flow import FCad
from repro.models.zoo import get_model
from repro.serving import (
    ReplicaPool,
    report_to_json,
    saturation_workload,
    serve_workload,
)

from conftest import emit

REDUCED = bool(os.environ.get("FCAD_BENCH_SERVING_REDUCED"))
REPLICAS = 2
POLICIES = ("fifo", "edf", "fair")


def run_serving_study() -> dict:
    result = FCad(
        network=get_model("codec_avatar_decoder"),
        device=get_device("ZU9CG"),
        quant="int8",
    ).run(
        iterations=4 if REDUCED else 10,
        population=24 if REDUCED else 80,
        seed=0,
    )
    profile = result.frame_latency_profile(frames=8)
    # The canonical ~85%-of-capacity mixed-tier workload — the same
    # builder BENCH_serving.json uses, so both surfaces measure one
    # regime.
    workload = saturation_workload(
        profile,
        replicas=REPLICAS,
        frames_per_avatar=20 if REDUCED else 60,
    )

    reports = {}
    for policy in POLICIES:
        pool = ReplicaPool(profile, replicas=REPLICAS, max_batch=8)
        reports[policy] = serve_workload(pool, workload, policy=policy)
    # Determinism check: replay one policy and compare serialized reports.
    pool = ReplicaPool(profile, replicas=REPLICAS, max_batch=8)
    replay = serve_workload(pool, workload, policy="edf")
    return {
        "reports": reports,
        "deterministic": report_to_json(replay)
        == report_to_json(reports["edf"]),
    }


def test_serving_policies(benchmark):
    study = benchmark.pedantic(run_serving_study, rounds=1, iterations=1)
    reports = study["reports"]
    emit(
        "Avatar serving policies",
        "\n\n".join(reports[policy].render() for policy in POLICIES),
    )

    fifo, edf = reports["fifo"], reports["edf"]
    # Every submitted frame is eventually decoded, under every policy.
    for report in reports.values():
        assert report.completed == report.submitted
        assert report.throughput_fps > 0
        assert max(report.replica_utilization) > 0.5
    # Same workload, same replicas: throughput matches across policies.
    assert fifo.completed == edf.completed
    # The point of deadline-aware scheduling: fewer misses than FIFO at
    # moderate saturation with mixed SLO tiers.
    assert edf.deadline_misses <= fifo.deadline_misses
    # Percentiles are ordered and positive.
    for report in reports.values():
        assert (
            0
            < report.latency_p50_ms
            <= report.latency_p95_ms
            <= report.latency_p99_ms
        )
    # Virtual-clock sessions are reproducible bit for bit.
    assert study["deterministic"]
