"""Benchmark: the energy study (extension experiment)."""

from __future__ import annotations

from functools import partial

from repro.experiments.energy import run_energy_study

from conftest import emit

RUN = partial(run_energy_study, iterations=8, population=60, seed=0)


def test_energy_study(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Energy study", result.render())

    for name, report in result.cases.items():
        # Headset-class accelerators: single-digit watts.
        assert 0.05 < report.total_w < 15.0, name
        assert report.fps_per_watt > 1.0, name
    # Per-frame energy is precision-bound: 16-bit costs more than 8-bit
    # on the same device.
    for device in ("Z7045", "ZU17EG", "ZU9CG"):
        mj8 = result.cases[f"{device}/int8"].dynamic_mj_per_frame
        mj16 = result.cases[f"{device}/int16"].dynamic_mj_per_frame
        assert mj16 > mj8
