"""Benchmark: the Sec. VII search-speed study (10 searches, N=20, P=200)."""

from __future__ import annotations

from functools import partial

from repro.experiments.convergence import run_convergence

from conftest import emit

RUN = partial(
    run_convergence,
    device_name="ZU9CG",
    quant_name="int8",
    searches=10,
    iterations=20,
    population=200,
)


def test_dse_convergence(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Sec. VII DSE convergence", result.render())

    iters = result.convergence_iterations
    # Every search converges well before the iteration cap ("all of them
    # converge in minutes"; paper average 9.2 of 20).
    assert max(iters) <= 20
    assert result.avg_iteration <= 15
    # Independent seeds agree on solution quality.
    assert result.fitness_spread_pct < 20.0
    # Minutes, not hours (the paper reports 57-102 s on an i7).
    assert result.avg_runtime_seconds < 120.0
