"""Benchmark: the Sec. VII search-speed study (10 searches, N=20, P=200).

The 10 seeds run as one batch: a shared evaluation cache across searches
plus parallel generation evaluation (``FCAD_BENCH_WORKERS`` processes) —
the reported statistics are identical to 10 isolated serial runs.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.convergence import run_convergence

from conftest import default_workers, emit

RUN = partial(
    run_convergence,
    device_name="ZU9CG",
    quant_name="int8",
    searches=10,
    iterations=20,
    population=200,
    workers=default_workers(),
)


def test_dse_convergence(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Sec. VII DSE convergence", result.render())
    print(
        f"workers={result.workers}  evaluations={result.total_evaluations}  "
        f"bucket hits={result.total_cache_hits}  "
        f"stage-memo hits={result.total_stage_hits}/"
        f"{result.total_stage_lookups}  "
        f"combined hit rate={100 * result.combined_hit_rate:.1f}%"
    )
    print(
        f"phases: eval {result.eval_seconds:.2f}s  cache "
        f"{result.cache_seconds:.2f}s  pool overhead "
        f"{result.overhead_seconds:.2f}s"
    )

    iters = result.convergence_iterations
    # Every search converges well before the iteration cap ("all of them
    # converge in minutes"; paper average 9.2 of 20).
    assert max(iters) <= 20
    assert result.avg_iteration <= 15
    # Independent seeds agree on solution quality.
    assert result.fitness_spread_pct < 20.0
    # Minutes, not hours (the paper reports 57-102 s on an i7).
    assert result.avg_runtime_seconds < 120.0
    # The batched study shares its evaluation cache across seeds.
    assert result.total_cache_hits > 0
