"""Benchmark: regenerate Table IV (all five F-CAD cases, paper-size DSE).

The five cases run as one batch sweep (shared evaluation cache, parallel
generations via ``FCAD_BENCH_WORKERS``); per-case results are identical
to isolated serial runs.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.devices.fpga import get_device
from repro.experiments.table4 import run_table4

from conftest import default_workers, emit

RUN = partial(
    run_table4,
    iterations=20,
    population=200,
    seed=0,
    workers=default_workers(),
)


def test_table4_fcad_cases(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Table IV", result.render())

    by_case = {case.case: case.result.dse.best_perf for case in result.cases}
    # Budgets are respected everywhere.
    for case in result.cases:
        device = get_device(case.device)
        perf = case.result.dse.best_perf
        assert perf.total_dsp <= device.dsp
        assert perf.total_bram <= device.bram_18k
    # Throughput scales with the device (the paper's 1x -> 2x -> 4x climb
    # on Br.2 across Z7045 -> ZU17EG -> ZU9CG at 8-bit).
    br2 = [by_case[c].branches[1].fps for c in (1, 2, 4)]
    assert br2[0] < br2[1] < br2[2]
    assert br2[2] >= 3.0 * br2[0]
    # 8-bit doubles 16-bit on the same device.
    assert by_case[4].branches[1].fps == pytest.approx(
        2 * by_case[5].branches[1].fps, rel=0.25
    )
    # The flagship case satisfies the VR refresh requirement.
    assert by_case[4].fps >= 90.0
    # Device utilization is high, as in the paper (81-88 % of DSPs).
    assert by_case[4].total_dsp >= 0.75 * get_device("ZU9CG").dsp
