"""Benchmark: regenerate Fig. 6 (FPS estimation error on eight benchmarks).

The paper's board-level KU115 measurements are replaced by the
cycle-accurate simulator; the error compares Eq. 4/5 estimates against the
simulated end-to-end frame rate (paper: max 2.89 %, avg 2.02 %).
"""

from __future__ import annotations

from functools import partial

from repro.experiments.fig67 import run_fig67

from conftest import emit

RUN = partial(run_fig67, iterations=6, population=40, frames=64, seed=0)


def test_fig6_fps_estimation_error(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Fig. 6 (FPS estimation error)", result.render())

    assert len(result.cases) == 8
    # Same single-digit band as the paper.
    assert result.max_fps_error_pct < 8.0
    assert result.avg_fps_error_pct < 6.0
    # The model is optimistic: it ignores fill, so estimates sit above the
    # end-to-end measurement.
    for case in result.cases:
        assert case.estimated_fps >= case.measured_fps * 0.99
