"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper at the paper's
own search sizes (N = 20 iterations, P = 200 candidates for DSE runs) and
prints the reproduced rows next to the published numbers. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print a reproduced table (visible with -s, kept in captured logs)."""
    print()
    print(f"### {title}")
    print(text)
