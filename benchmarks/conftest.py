"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper at the paper's
own search sizes (N = 20 iterations, P = 200 candidates for DSE runs) and
prints the reproduced rows next to the published numbers. Run with::

    pytest benchmarks/ --benchmark-only -s

Each emitted table is also written to ``benchmarks/out/`` so CI can upload
the reproduced numbers as a build artifact. DSE-heavy benchmarks fan each
search generation out over ``FCAD_BENCH_WORKERS`` processes (default: up
to 4, capped by the machine's core count).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def default_workers() -> int:
    """Worker processes for DSE benchmarks (``FCAD_BENCH_WORKERS`` wins)."""
    env = os.environ.get("FCAD_BENCH_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


def _slug(title: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")


def emit(title: str, text: str) -> None:
    """Print a reproduced table (visible with -s) and archive it.

    The table also lands in ``benchmarks/out/<slug>.txt`` — the artifact
    dir CI uploads so every PR keeps its reproduced numbers.
    """
    print()
    print(f"### {title}")
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{_slug(title)}.txt").write_text(f"### {title}\n{text}\n")
