"""Benchmark: regenerate Fig. 7 (efficiency estimation error).

Measured efficiency derives from the simulator's steady-state sustained
GOPS (the counters a board exposes), so its error is decoupled from the
end-to-end FPS accounting of Fig. 6 (paper: max 3.96 %, avg 1.91 %).
"""

from __future__ import annotations

from functools import partial

from repro.experiments.fig67 import run_fig67

from conftest import emit

RUN = partial(run_fig67, iterations=6, population=40, frames=64, seed=1)


def test_fig7_efficiency_estimation_error(benchmark):
    result = benchmark.pedantic(RUN, rounds=1, iterations=1)
    emit("Fig. 7 (efficiency estimation error)", result.render())

    assert len(result.cases) == 8
    assert result.max_efficiency_error_pct < 8.0
    assert result.avg_efficiency_error_pct < 6.0
    for case in result.cases:
        assert 0.0 < case.measured_efficiency <= 1.0
