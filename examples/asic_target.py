#!/usr/bin/env python
"""Target an ASIC budget and validate the design with the simulator.

The paper notes F-CAD "can also target ASIC designs with the resource
budgets {Cmax, Mmax, BWmax} associating to ... the available MAC units, the
on-chip buffer size, and the external memory bandwidth". This example
explores a decoder accelerator for a headset-class NPU budget, then runs
the chosen design through the cycle-accurate simulator and compares the
measured frame rate against the analytical estimate.

Usage:  python examples/asic_target.py [--macs 2048] [--sram-kb 4096]
"""

from __future__ import annotations

import argparse

from repro import AsicSpec, Customization, FCad, build_codec_avatar_decoder, simulate
from repro.sim.timeline import render_timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--macs", type=int, default=2048)
    parser.add_argument("--sram-kb", type=int, default=4096)
    parser.add_argument("--bandwidth-gbps", type=float, default=25.6)
    parser.add_argument("--frequency-mhz", type=float, default=800.0)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--population", type=int, default=60)
    parser.add_argument("--frames", type=int, default=8)
    args = parser.parse_args()

    npu = AsicSpec(
        name="hmd-npu",
        mac_units=args.macs,
        onchip_buffer_kb=args.sram_kb,
        bandwidth_gbps=args.bandwidth_gbps,
        default_frequency_mhz=args.frequency_mhz,
    )
    result = FCad(
        network=build_codec_avatar_decoder(),
        device=npu,
        quant="int8",
        customization=Customization(
            batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
        ),
    ).run(iterations=args.iterations, population=args.population, seed=0)
    print(result.render())

    report = simulate(
        plan=result.plan,
        config=result.dse.best_config,
        quant=result.quant,
        bandwidth_gbps=args.bandwidth_gbps,
        frequency_mhz=args.frequency_mhz,
        frames=args.frames,
        warmup=2,
    )
    estimated = result.dse.best_perf
    print("\ncycle-accurate validation (per-branch FPS):")
    for branch, measured in zip(estimated.branches, report.branch_fps):
        gap = 100.0 * (branch.fps - measured) / measured if measured else 0.0
        print(
            f"  Br.{branch.index + 1}: estimated {branch.fps:8.1f}  "
            f"simulated {measured:8.1f}  gap {gap:+.1f}%"
        )
    print(
        f"  end-to-end (incl. pipeline fill over {args.frames} frames): "
        f"{report.end_to_end_fps:.1f} FPS"
    )
    print("\nper-stage utilization timeline:")
    print(render_timeline(report.stats, width=64))


if __name__ == "__main__":
    main()
