#!/usr/bin/env python
"""Compare F-CAD against the SoC, DNNBuilder and HybridDNN baselines.

Reproduces the paper's core argument (Tables II and V) in one script: the
mimic decoder on a Snapdragon-865-style SoC and on DNNBuilder/HybridDNN
across three FPGAs, then F-CAD on the real decoder on the largest FPGA —
showing why multi-branch-aware 3-D parallelism wins.

Usage:  python examples/baseline_comparison.py
"""

from __future__ import annotations

import argparse

from repro import (
    Customization,
    DnnBuilderModel,
    FCad,
    HybridDnnModel,
    SocModel,
    build_codec_avatar_decoder,
    build_mimic_decoder,
    build_pipeline_plan,
    get_device,
)
from repro.quant.schemes import INT8, INT16
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--population", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    mimic = build_mimic_decoder()
    mimic_plan = build_pipeline_plan(mimic)
    rows = []

    soc = SocModel().design(mimic, INT8)
    rows.append(
        ["865 SoC", "int8", "-", "-", f"{soc.fps:.1f}", f"{100 * soc.efficiency:.1f}"]
    )

    for device_name in ("Z7045", "ZU17EG", "ZU9CG"):
        budget = get_device(device_name).budget()
        d = DnnBuilderModel().design(mimic_plan, budget, INT8, target=device_name)
        rows.append(
            ["DNNBuilder", "int8", device_name, f"{d.dsp}", f"{d.fps:.1f}",
             f"{100 * d.efficiency:.1f}"]
        )
        h = HybridDnnModel().design(mimic_plan, budget, INT16, target=device_name)
        rows.append(
            ["HybridDNN", "int16", device_name, f"{h.dsp}", f"{h.fps:.1f}",
             f"{100 * h.efficiency:.1f}"]
        )

    decoder = build_codec_avatar_decoder()
    for quant in (INT8, INT16):
        result = FCad(
            network=decoder,
            device=get_device("ZU9CG"),
            quant=quant,
            customization=Customization.uniform(3, batch_size=1),
        ).run(
            iterations=args.iterations,
            population=args.population,
            seed=args.seed,
        )
        perf = result.dse.best_perf
        rows.append(
            [
                "F-CAD",
                quant.name,
                "ZU9CG",
                f"{perf.total_dsp}",
                f"{perf.fps:.1f}",
                f"{100 * perf.overall_efficiency:.1f}",
            ]
        )

    print(
        render_table(
            ["design", "quant", "device", "DSP", "FPS", "eff %"],
            rows,
            title="Codec-avatar decoding: F-CAD vs existing accelerators",
        )
    )
    fcad_fps = float(rows[-2][4])
    dnnb_fps = float(rows[5][4])
    print(f"\nF-CAD (8-bit) vs DNNBuilder on ZU9CG: {fcad_fps / dnnb_fps:.1f}x")


if __name__ == "__main__":
    main()
