#!/usr/bin/env python
"""Quickstart: explore an accelerator for the codec-avatar decoder.

Runs the full F-CAD flow (Analysis -> Construction -> Optimization) for the
paper's targeted decoder on a ZU9CG FPGA with the VR customization (one
geometry per frame, two HD textures — one per eye), then prints the profile,
the optimized design, and the elastic-architecture unit grid.

Usage:  python examples/quickstart.py [--device ZU9CG] [--quant int8]
"""

from __future__ import annotations

import argparse

from repro import Customization, FCad, build_codec_avatar_decoder, get_device


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="ZU9CG")
    parser.add_argument("--quant", default="int8", choices=["int8", "int16"])
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--population", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    decoder = build_codec_avatar_decoder()
    result = FCad(
        network=decoder,
        device=get_device(args.device),
        quant=args.quant,
        customization=Customization(
            batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
        ),
    ).run(iterations=args.iterations, population=args.population, seed=args.seed)

    print(result.render())
    print()
    print(result.accelerator().describe())
    print()
    perf = result.dse.best_perf
    verdict = "meets" if perf.fps >= 90.0 else "misses"
    print(
        f"Decoder frame rate {perf.fps:.1f} FPS -> {verdict} the 90 FPS VR "
        f"requirement on {args.device} ({args.quant})."
    )


if __name__ == "__main__":
    main()
