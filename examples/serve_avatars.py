#!/usr/bin/env python
"""Serve a multi-avatar telepresence call on simulated accelerator replicas.

The full production story in one script:

1. **design time** — F-CAD explores an accelerator for the codec avatar
   decoder on a headset-class budget;
2. **deploy** — N simulated replicas of the found design are stood up,
   each driven by the cycle-accurate simulator's fill/steady-state
   per-frame latency model;
3. **serve** — a group call's worth of avatars stream frames concurrently:
   the active speakers need tight decode deadlines (their faces are on
   everyone's screen), the listeners tolerate more. The async scheduler
   batches requests onto free replicas under three policies, and the SLO
   tracker reports what each policy did to tail latency and deadline
   misses;
4. **scale** — the same call replayed through the event-heap engine
   (identical counters, by construction), then a flash crowd thousands of
   avatars strong served with autoscaling: the fleet grows through the
   spike, pays the cold-fill warm-up, and drains back down.

Everything runs on a virtual clock, so the whole session is deterministic
and finishes in seconds of wall time.

Usage:  python examples/serve_avatars.py [--avatars 12] [--replicas 2]
"""

from __future__ import annotations

import argparse

from repro import FCad, get_device
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.serving import (
    AutoscalePolicy,
    AvatarWorkload,
    ReplicaPool,
    make_trace,
    serve_trace,
    serve_workload,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--avatars",
        type=int,
        default=5,
        help="concurrent avatars (default 5 — ~80%% of two-replica "
        "capacity; raise it to watch the SLOs collapse)",
    )
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--frames", type=int, default=24, help="per avatar")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--population", type=int, default=24)
    parser.add_argument(
        "--scale-avatars",
        type=int,
        default=3000,
        help="flash-crowd size for the autoscaled event-heap session",
    )
    args = parser.parse_args()

    # --- design time --------------------------------------------------
    design = FCad(
        network=build_codec_avatar_decoder(),
        device=get_device("ZU9CG"),
        quant="int8",
    ).run(iterations=args.iterations, population=args.population, seed=0)
    profile = design.frame_latency_profile(frames=8)
    print(
        f"designed accelerator: {design.fps:.1f} FPS steady decode rate\n"
        f"per replica: first frame {profile.first_frame_ms:.2f} ms (cold "
        f"fill), then one per {profile.steady_interval_ms:.2f} ms\n"
        f"pool capacity: ~{args.replicas * profile.steady_fps:.0f} FPS "
        f"across {args.replicas} replicas"
    )

    # --- the call -----------------------------------------------------
    # Speakers (every 3rd avatar) get a 20 ms decode budget; listeners 60.
    workload = AvatarWorkload(
        avatars=args.avatars,
        frames_per_avatar=args.frames,
        frame_interval_ms=1000.0 / 30.0,
        deadline_ms=50.0,
        deadline_tiers=(20.0, 60.0, 60.0),
        jitter_ms=8.0,
        seed=0,
    )
    offered = args.avatars * 30.0
    print(
        f"\ncall: {args.avatars} avatars x 30 FPS = {offered:.0f} FPS "
        f"offered, deadlines 20 ms (speakers) / 60 ms (listeners)\n"
    )

    for policy in ("fifo", "edf", "fair"):
        pool = ReplicaPool(profile, replicas=args.replicas, max_batch=8)
        report = serve_workload(pool, workload, policy=policy)
        print(report.render())
        print()

    # --- the same call on the event-heap engine -----------------------
    pool = ReplicaPool(profile, replicas=args.replicas, max_batch=8)
    heap = serve_trace(pool, workload, policy="edf")
    print(
        f"event-heap engine replays the EDF call with identical counters: "
        f"{heap.completed}/{heap.submitted} frames, "
        f"{heap.deadline_misses} misses, {heap.batches} batches\n"
    )

    # --- a flash crowd, autoscaled ------------------------------------
    # Thousands of avatars pile into the session over a few hundred
    # milliseconds; the autoscaler grows the fleet through the spike
    # (each new replica pays its cold fill) and drains it afterwards.
    crowd = args.scale_avatars
    trace = make_trace(
        crowd,
        20.0,
        shape="flash",
        avatar_fps=2.0,
        deadline_ms=100.0,
        jitter_ms=50.0,
        seed=0,
    )
    report = serve_trace(
        design.serving_group(
            name="fleet", replicas=args.replicas, policy="edf",
            profile=profile,
        ),
        trace,
        admission=True,
        autoscale=AutoscalePolicy(
            check_interval_ms=500.0, warmup_ms=1000.0, max_replicas=32
        ),
    )
    print(
        f"flash crowd: {crowd} avatars, {report.submitted} requests — "
        f"fleet {args.replicas} -> peak {report.peak_replicas} replicas "
        f"(+{report.scale_ups}/-{report.scale_downs})"
    )
    print(report.render())


if __name__ == "__main__":
    main()
