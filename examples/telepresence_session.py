#!/usr/bin/env python
"""Simulate a short VR telepresence session end to end.

Puts every piece of the framework on one stage, mirroring the paper's
Fig. 1 pipeline:

1. **design time** — F-CAD explores an accelerator for the decoder on the
   receiver's headset budget (an ASIC-class NPU) and reports whether it
   sustains the 90 FPS VR refresh;
2. **transmit** — a sequence of latent codes ``z_t`` stands in for the
   encoder's output (the TX side of Fig. 1), with the view code animating
   the receiver's head motion;
3. **receive** — each frame is functionally decoded (8-bit, as deployed)
   into geometry / texture / warp tensors by the numpy runtime, while the
   cycle-accurate simulator supplies the per-frame timing the chosen
   accelerator would achieve;
4. the session log interleaves both: what was decoded, and when it would
   appear on the display;
5. **serve the party line** — the same design deployed as a replica
   fleet decodes a whole roomful of remote avatars with session churn
   (people dropping in and out of the call), served by the event-heap
   engine with per-frame deadlines derived from the display refresh.

Usage:  python examples/telepresence_session.py [--frames 5]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AsicSpec, Customization, FCad, INT8, simulate
from repro.models.codec_avatar import DecoderPlan, build_codec_avatar_decoder
from repro.runtime.executor import Executor
from repro.serving import make_trace, serve_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--population", type=int, default=40)
    parser.add_argument(
        "--room",
        type=int,
        default=24,
        help="remote avatars on the served party line",
    )
    args = parser.parse_args()

    # --- design time --------------------------------------------------
    headset_npu = AsicSpec(
        name="hmd-npu",
        mac_units=2048,
        onchip_buffer_kb=4096,
        bandwidth_gbps=25.6,
        default_frequency_mhz=800.0,
    )
    # Full-size decoder for the hardware exploration ...
    full_decoder = build_codec_avatar_decoder()
    design = FCad(
        network=full_decoder,
        device=headset_npu,
        quant=INT8,
        customization=Customization(
            batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
        ),
    ).run(iterations=args.iterations, population=args.population, seed=0)
    perf = design.dse.best_perf
    print(
        f"designed accelerator on {headset_npu.name}: "
        f"{perf.fps:.1f} FPS decoder rate, "
        f"{100 * perf.overall_efficiency:.1f}% efficiency "
        f"({'VR-ready' if perf.fps >= 90 else 'below 90 FPS'})"
    )

    timing = simulate(
        plan=design.plan,
        config=design.dse.best_config,
        quant=INT8,
        bandwidth_gbps=headset_npu.bandwidth_gbps,
        frequency_mhz=headset_npu.default_frequency_mhz,
        frames=max(4, args.frames),
        warmup=1,
    )
    frame_period_ms = 1000.0 / timing.fps if timing.fps else float("inf")

    # --- run time -------------------------------------------------------
    # ... and a reduced-width twin for the functional decode so the
    # example runs in seconds (same topology, fewer channels).
    runtime_plan = DecoderPlan(
        br1_channels=(24, 24, 16, 8, 8),
        shared_channels=(32, 24, 16, 12, 8),
        br2_channels=(6, 4),
    )
    decoder = build_codec_avatar_decoder(runtime_plan)
    executor = Executor(decoder, quant=INT8, seed=0)
    rng = np.random.default_rng(42)

    print(f"\nsession: {args.frames} frames, one per {frame_period_ms:.1f} ms")
    z = rng.normal(size=(runtime_plan.latent_dim, 1, 1))
    for frame in range(args.frames):
        # The TX code evolves smoothly (expression change)...
        z = 0.9 * z + 0.45 * rng.normal(size=z.shape)
        # ...while the RX view direction pans.
        angle = 0.3 * frame
        view_vec = np.array([np.cos(angle), np.sin(angle), 1.0])
        view = np.tile(
            view_vec[:, None, None],
            (1, runtime_plan.base_resolution, runtime_plan.base_resolution),
        )
        outputs = executor.run_outputs({"z": z, "view": view})
        geometry = outputs["geometry"]
        texture = outputs["texture"]
        display_at = frame * frame_period_ms
        print(
            f"  t={display_at:7.1f} ms  frame {frame}: "
            f"mesh {geometry.reshape(3, -1).shape[1]} verts "
            f"(|v|max {np.abs(geometry).max():.2f}), "
            f"texture {texture.shape[1]}x{texture.shape[2]} "
            f"(mean {texture.mean():+.3f})"
        )

    print(
        f"\n{args.frames} frames decoded; at {timing.fps:.1f} FPS the session "
        f"spans {args.frames * frame_period_ms:.1f} ms of display time."
    )

    # --- serve the party line -------------------------------------------
    # The same design as a small replica fleet, decoding every remote
    # participant's avatar. A third of the room churns (joins late,
    # leaves early); each frame must decode within two display periods.
    profile = design.frame_latency_profile(frames=4)
    trace = make_trace(
        avatars=args.room,
        duration_s=5.0,
        shape="steady",
        churn=0.3,
        avatar_fps=30.0,
        deadline_ms=max(10.0, 2.0 * frame_period_ms),
        jitter_ms=3.0,
        seed=0,
    )
    report = serve_trace(
        design.serving_group(name="room", replicas=2, profile=profile),
        trace,
        admission=True,
    )
    print(
        f"\nparty line: {args.room} remote avatars (30% churning) on 2 "
        f"replicas —\n  {report.completed}/{report.submitted} frames decoded, "
        f"{report.shed} shed, {report.deadline_misses} missed the "
        f"{trace.deadline_ms:.1f} ms budget, p99 {report.latency_p99_ms:.2f} ms"
    )


if __name__ == "__main__":
    main()
