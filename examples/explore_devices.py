#!/usr/bin/env python
"""Sweep devices and precisions — the paper's Table IV scenario.

Explores accelerators for the decoder across three embedded FPGAs at 8- and
16-bit precision, with the VR customization {1, 2, 2}, and prints one
summary row per case: who meets 90 FPS, at what hardware efficiency, with
what device utilization.

The six cases run as ONE batch (`run_sweep`): they share a single
evaluation cache — overlapping in-branch subproblems are solved once for
the whole grid — and `--workers N` evaluates every DSE generation on N
processes. Per-case results are bit-identical to running each case alone
serially, so parallelism and batching are purely wall-clock knobs.

Usage:  python examples/explore_devices.py [--workers N]
                                           [--iterations N] [--population P]
"""

from __future__ import annotations

import argparse

from repro import Customization, FCad, build_codec_avatar_decoder, get_device
from repro.fcad.flow import run_sweep
from repro.utils.tables import render_table

DEVICES = ("Z7045", "ZU17EG", "ZU9CG")
QUANTS = ("int8", "int16")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--population", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes per DSE generation (results identical to serial)",
    )
    args = parser.parse_args()

    decoder = build_codec_avatar_decoder()
    customization = Customization(
        batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
    )
    # One grid list drives both the flows and the table labels, so rows can
    # never get attributed to the wrong case.
    grid = [(get_device(d), q) for d in DEVICES for q in QUANTS]
    flows = [
        FCad(network=decoder, device=device, quant=quant,
             customization=customization)
        for device, quant in grid
    ]
    results = run_sweep(
        flows,
        iterations=args.iterations,
        population=args.population,
        seed=args.seed,
        workers=args.workers,
    )

    rows = []
    for (device, _), result in zip(grid, results):
        perf = result.dse.best_perf
        rows.append(
            [
                device.name,
                result.quant.name,
                f"{perf.fps:.1f}",
                "yes" if perf.fps >= 90.0 else "no",
                f"{100 * perf.overall_efficiency:.1f}",
                f"{perf.total_dsp}/{device.dsp}",
                f"{perf.total_bram}/{device.bram_18k}",
                f"{result.dse.runtime_seconds:.1f}",
                f"{100 * result.dse.cache_hit_rate:.0f}",
            ]
        )

    print(
        render_table(
            [
                "device",
                "quant",
                "FPS",
                "VR-ready",
                "eff %",
                "DSP",
                "BRAM",
                "DSE s",
                "cache %",
            ],
            rows,
            title="Decoder accelerators across devices and precisions",
        )
    )
    total_evals = sum(r.dse.evaluations for r in results)
    total_hits = sum(r.dse.cache_hits for r in results)
    print(
        f"\n{len(results)} cases, {args.workers} worker(s): "
        f"{total_evals} in-branch solves, {total_hits} shared-cache hits"
    )


if __name__ == "__main__":
    main()
