#!/usr/bin/env python
"""Sweep devices and precisions — the paper's Table IV scenario.

Explores accelerators for the decoder across three embedded FPGAs at 8- and
16-bit precision, with the VR customization {1, 2, 2}, and prints one
summary row per case: who meets 90 FPS, at what hardware efficiency, with
what device utilization.

Usage:  python examples/explore_devices.py [--iterations N] [--population P]
"""

from __future__ import annotations

import argparse

from repro import Customization, FCad, build_codec_avatar_decoder, get_device
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--population", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    decoder = build_codec_avatar_decoder()
    customization = Customization(
        batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
    )

    rows = []
    for device_name in ("Z7045", "ZU17EG", "ZU9CG"):
        for quant in ("int8", "int16"):
            device = get_device(device_name)
            result = FCad(
                network=decoder,
                device=device,
                quant=quant,
                customization=customization,
            ).run(
                iterations=args.iterations,
                population=args.population,
                seed=args.seed,
            )
            perf = result.dse.best_perf
            rows.append(
                [
                    device_name,
                    quant,
                    f"{perf.fps:.1f}",
                    "yes" if perf.fps >= 90.0 else "no",
                    f"{100 * perf.overall_efficiency:.1f}",
                    f"{perf.total_dsp}/{device.dsp}",
                    f"{perf.total_bram}/{device.bram_18k}",
                    f"{result.dse.runtime_seconds:.1f}",
                ]
            )

    print(
        render_table(
            [
                "device",
                "quant",
                "FPS",
                "VR-ready",
                "eff %",
                "DSP",
                "BRAM",
                "DSE s",
            ],
            rows,
            title="Decoder accelerators across devices and precisions",
        )
    )


if __name__ == "__main__":
    main()
