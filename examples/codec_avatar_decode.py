#!/usr/bin/env python
"""Functionally decode an avatar frame with the (synthetic) decoder.

The paper's trained decoder weights are proprietary, so this example
initializes synthetic weights over the published topology and actually runs
the three-branch decode: a 256-d latent code plus a view direction in, a
geometry position map, a view-dependent RGB texture, and a warp field out.
It then repeats the decode with 8-bit quantized weights/activations — the
precision of Table IV's fastest designs — and reports the quantization
error on each branch output.

Usage:  python examples/codec_avatar_decode.py [--full-size]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import INT8, Executor, build_codec_avatar_decoder
from repro.models.codec_avatar import DecoderPlan
from repro.runtime.executor import init_parameters


def small_plan() -> DecoderPlan:
    """A reduced-width decoder so the example runs in seconds."""
    return DecoderPlan(
        br1_channels=(32, 32, 24, 12, 8),
        shared_channels=(48, 32, 24, 16, 8),
        br2_channels=(8, 4),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full-size",
        action="store_true",
        help="decode with the full Table-I channel widths (slower)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    plan = DecoderPlan() if args.full_size else small_plan()
    decoder = build_codec_avatar_decoder(plan)
    rng = np.random.default_rng(args.seed)

    # The transmitter's expression code and the receiver's view direction.
    latent = rng.normal(size=(plan.latent_dim, 1, 1))
    view = np.tile(
        rng.normal(size=(plan.view_channels, 1, 1)),
        (1, plan.base_resolution, plan.base_resolution),
    )
    inputs = {"z": latent, "view": view}

    params = init_parameters(decoder, seed=args.seed)
    reference = Executor(decoder, params=params).run_outputs(inputs)
    quantized = Executor(decoder, params=params, quant=INT8).run_outputs(inputs)

    print(f"decoded avatar frame ({'full' if args.full_size else 'reduced'} size):")
    for name, tensor in reference.items():
        q = quantized[name]
        scale = np.max(np.abs(tensor)) + 1e-12
        err = np.max(np.abs(q - tensor)) / scale
        print(
            f"  {name:12s} shape {tensor.shape!s:16s} "
            f"range [{tensor.min():+.3f}, {tensor.max():+.3f}]  "
            f"int8 max rel err {100 * err:.2f}%"
        )

    vertices = reference["geometry"].reshape(3, -1).T
    print(
        f"\ngeometry branch yields {vertices.shape[0]} mesh vertices "
        f"(paper: M in R^(n x 3))"
    )
    texture = reference["texture"]
    print(
        f"texture branch yields a {texture.shape[1]}x{texture.shape[2]} "
        f"view-dependent RGB map (paper: T in R^(w x h))"
    )


if __name__ == "__main__":
    main()
