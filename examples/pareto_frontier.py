#!/usr/bin/env python
"""How much FPGA does 90 FPS avatar decoding need?

Sweeps scaled-down ZU9CG budgets through the DSE engine and prints the
budget/throughput Pareto frontier, then answers the sizing question a
headset architect actually asks: the cheapest explored design that meets
the VR refresh target. Finishes by exporting the chosen configuration to
JSON (the handle a downstream RTL/HLS generator would consume).

Usage:  python examples/pareto_frontier.py [--fps-target 90]
"""

from __future__ import annotations

import argparse

from repro import Customization, build_codec_avatar_decoder, build_pipeline_plan, get_device
from repro.arch.serialize import config_to_json
from repro.dse.engine import DseEngine
from repro.dse.pareto import explore_budget_frontier
from repro.quant.schemes import INT8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fps-target", type=float, default=90.0)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--population", type=int, default=60)
    args = parser.parse_args()

    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device("ZU9CG")
    customization = Customization(
        batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0)
    )

    frontier = explore_budget_frontier(
        plan,
        device.budget(),
        INT8,
        customization=customization,
        fractions=(0.25, 0.4, 0.55, 0.7, 0.85, 1.0),
        iterations=args.iterations,
        population=args.population,
    )
    print(frontier.render(fps_target=args.fps_target))

    chosen = frontier.smallest_meeting(args.fps_target)
    if chosen is None:
        return
    # Re-run the DSE at the chosen budget to obtain the exportable config.
    engine = DseEngine(
        plan=plan,
        budget=chosen.budget,
        customization=customization,
        quant=INT8,
    )
    result = engine.search(
        iterations=args.iterations, population=args.population, seed=0
    )
    payload = config_to_json(result.best_config)
    print(f"\nexported configuration ({len(payload)} bytes of JSON):")
    print(payload[:400] + (" ..." if len(payload) > 400 else ""))


if __name__ == "__main__":
    main()
