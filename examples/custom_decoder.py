#!/usr/bin/env python
"""Author a new decoder variant in the torch-like frontend and explore it.

Demonstrates the framework on a model that is *not* the paper's: a
four-branch "full-body avatar" decoder (geometry, texture, warp field, and
an audio-driven mouth-region branch, cf. the paper's related-work
discussion of audio-driven codec avatars). The model is written with the
``repro.frontend`` torch-style modules, traced into the IR, serialized to
JSON and back, profiled, and explored with branch priorities that favour
the mouth branch for lip-sync fidelity.

Usage:  python examples/custom_decoder.py
"""

from __future__ import annotations

import argparse

from repro import Customization, FCad, get_device
from repro.analysis.analyzer import analyze_network
from repro.frontend.torchlike import (
    Conv2d,
    LeakyReLU,
    Module,
    Sequential,
    UpsamplingNearest2d,
    cat,
    trace,
)
from repro.ir.layer import BiasMode, TensorShape
from repro.ir.serialize import graph_from_json, graph_to_json


def block(in_ch: int, out_ch: int) -> Sequential:
    """One [C, A, U] block with the customized untied-bias conv."""
    return Sequential(
        Conv2d(in_ch, out_ch, kernel_size=4, bias=BiasMode.UNTIED),
        LeakyReLU(0.2),
        UpsamplingNearest2d(scale_factor=2),
    )


class FullBodyDecoder(Module):
    """Geometry + texture + warp + audio-driven mouth branches."""

    def __init__(self) -> None:
        self.geometry = Sequential(
            block(4, 64), block(64, 32), block(32, 16),
            Conv2d(16, 3, kernel_size=4, bias=BiasMode.UNTIED),
        )
        self.shared = Sequential(block(7, 96), block(96, 48), block(48, 24))
        self.texture = Sequential(
            block(24, 12),
            Conv2d(12, 3, kernel_size=4, bias=BiasMode.UNTIED),
        )
        self.warp = Conv2d(24, 2, kernel_size=5, bias=BiasMode.UNTIED)
        self.mouth = Sequential(
            Conv2d(26, 16, kernel_size=3, bias=BiasMode.UNTIED),
            LeakyReLU(0.2),
            Conv2d(16, 3, kernel_size=3, bias=BiasMode.UNTIED),
        )

    def forward(self, z, view, audio):
        self.geometry(z.reshape(4, 8, 8))
        trunk = self.shared(cat([z.reshape(4, 8, 8), view]))
        self.texture(trunk)
        self.warp(trunk)
        return self.mouth(cat([trunk, audio]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--population", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = trace(
        FullBodyDecoder(),
        {
            "z": TensorShape(256, 1, 1),
            "view": TensorShape(3, 8, 8),
            "audio": TensorShape(2, 64, 64),
        },
        name="full_body_decoder",
    )

    # The IR round-trips through the on-disk JSON exchange format.
    graph = graph_from_json(graph_to_json(graph))

    print(analyze_network(graph).render())
    print()

    result = FCad(
        network=graph,
        device=get_device("ZU17EG"),
        quant="int8",
        # Four branches; the audio-driven mouth branch gets top priority.
        customization=Customization(
            batch_sizes=(1, 2, 2, 2), priorities=(1.0, 1.0, 1.0, 3.0)
        ),
    ).run(
        iterations=args.iterations,
        population=args.population,
        seed=args.seed,
    )
    print(result.dse.render())


if __name__ == "__main__":
    main()
