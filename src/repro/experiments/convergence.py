"""Sec. VII search-speed study: DSE convergence statistics.

The paper performs 10 independent searches per case with N = 20 iterations
and P = 200 candidates; all converge in minutes on a 2.6 GHz i7, with an
average convergence iteration of 9.2 (min 6.8, max 13.6).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.engine import DseEngine
from repro.dse.result import DseResult
from repro.dse.space import Customization
from repro.experiments import paper_constants as paper
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.quant.schemes import get_scheme
from repro.utils.tables import render_table


@dataclass(frozen=True)
class ConvergenceResult:
    device: str
    quant_name: str
    searches: tuple[DseResult, ...]
    workers: int = 1

    @property
    def convergence_iterations(self) -> list[int]:
        return [s.convergence_iteration for s in self.searches]

    @property
    def avg_iteration(self) -> float:
        return statistics.mean(self.convergence_iterations)

    @property
    def avg_runtime_seconds(self) -> float:
        return statistics.mean(s.runtime_seconds for s in self.searches)

    @property
    def best_fitness(self) -> float:
        return max(s.best_fitness for s in self.searches)

    @property
    def total_evaluations(self) -> int:
        return sum(s.evaluations for s in self.searches)

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.searches)

    @property
    def total_stage_hits(self) -> int:
        return sum(s.stage_hits for s in self.searches)

    @property
    def total_stage_lookups(self) -> int:
        return sum(s.stage_lookups for s in self.searches)

    @property
    def bucket_hit_rate(self) -> float:
        """Result-cache hits over candidate-branch lookups, whole study."""
        lookups = self.total_evaluations + self.total_cache_hits
        return self.total_cache_hits / lookups if lookups else 0.0

    @property
    def combined_hit_rate(self) -> float:
        """Hits over lookups across both cache levels, whole study."""
        lookups = (
            self.total_evaluations
            + self.total_cache_hits
            + self.total_stage_lookups
        )
        hits = self.total_cache_hits + self.total_stage_hits
        return hits / lookups if lookups else 0.0

    @property
    def eval_seconds(self) -> float:
        return sum(s.eval_seconds for s in self.searches)

    @property
    def cache_seconds(self) -> float:
        return sum(s.cache_seconds for s in self.searches)

    @property
    def overhead_seconds(self) -> float:
        return sum(s.overhead_seconds for s in self.searches)

    @property
    def ladder_seconds(self) -> float:
        return sum(s.ladder_seconds for s in self.searches)

    @property
    def growth_seconds(self) -> float:
        return sum(s.growth_seconds for s in self.searches)

    @property
    def measure_seconds(self) -> float:
        return sum(s.measure_seconds for s in self.searches)

    @property
    def total_runtime_seconds(self) -> float:
        return sum(s.runtime_seconds for s in self.searches)

    @property
    def total_pruned_candidates(self) -> int:
        """Candidates the surrogate settled without an Algorithm-2 solve."""
        return sum(
            s.surrogate_stats.pruned_candidates
            for s in self.searches
            if s.surrogate_stats is not None
        )

    @property
    def total_pruned_buckets(self) -> int:
        """Quantized bucket solves skipped by the surrogate, whole study."""
        return sum(
            s.surrogate_stats.pruned_buckets
            for s in self.searches
            if s.surrogate_stats is not None
        )

    @property
    def total_false_prunes(self) -> int:
        """Audited margin violations across every search (0 = clean run)."""
        return sum(
            s.surrogate_stats.false_prunes
            for s in self.searches
            if s.surrogate_stats is not None
        )

    @property
    def fitness_spread_pct(self) -> float:
        """Relative spread of the best fitness across seeds."""
        best = [s.best_fitness for s in self.searches]
        mean = statistics.mean(best)
        if mean == 0:
            return 0.0
        return 100.0 * (max(best) - min(best)) / abs(mean)

    def render(self) -> str:
        iters = self.convergence_iterations
        rows = [
            [
                "measured",
                f"{self.avg_iteration:.1f}",
                f"{min(iters)}",
                f"{max(iters)}",
                f"{self.avg_runtime_seconds:.1f}",
                f"{self.fitness_spread_pct:.1f}%",
            ],
            [
                "paper",
                f"{paper.CONVERGENCE_AVG_ITER:.1f}",
                f"{paper.CONVERGENCE_MIN_ITER:.1f}",
                f"{paper.CONVERGENCE_MAX_ITER:.1f}",
                "57-102 (i7 2.6GHz)",
                "-",
            ],
        ]
        return render_table(
            ["source", "avg iter", "min", "max", "runtime s", "fitness spread"],
            rows,
            title=(
                f"DSE convergence on {self.device} ({self.quant_name}), "
                f"{len(self.searches)} independent searches"
            ),
        )


def run_convergence(
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
    searches: int = paper.CONVERGENCE_SEARCHES,
    iterations: int = paper.CONVERGENCE_ITERATIONS,
    population: int = paper.CONVERGENCE_POPULATION,
    heuristic_seed: bool = False,
    workers: int = 1,
    objective: str = "paper",
    surrogate: str = "off",
    surrogate_min_samples: int | None = None,
) -> ConvergenceResult:
    """Run repeated independent searches and collect convergence stats.

    The heuristic seed particle is disabled by default here: the paper's
    study characterizes how fast the *stochastic* search converges from
    random initializations.

    The searches run as one batch (:meth:`DseEngine.search_many`): they
    share an evaluation cache — seeds agree on many in-branch subproblems
    even when their swarms differ — and ``workers > 1`` evaluates each
    generation on a process pool. Neither changes any search's result.
    ``objective`` picks the fitness (``"paper"`` reproduces the study;
    the benchmark harness records it next to its timings so trajectories
    under different objectives are never compared against each other).
    ``surrogate`` (``"off"`` / ``"prune"`` / ``"verify"``) turns on the
    learned eval-path filter for every search; because the batch shares
    one evaluation cache, later seeds start with a model already fitted
    on earlier seeds' solves.
    """
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    customization = Customization(
        batch_sizes=paper.TABLE4_BATCH_SIZES, priorities=(1.0, 1.0, 1.0)
    )
    engines = [
        DseEngine(
            plan=plan,
            budget=device.budget(),
            customization=customization,
            quant=quant,
            frequency_mhz=device.default_frequency_mhz,
        )
        for _ in range(searches)
    ]
    results = DseEngine.search_many(
        engines,
        iterations=iterations,
        population=population,
        seeds=list(range(searches)),
        heuristic_seed=heuristic_seed,
        workers=workers,
        objective=objective,
        surrogate=surrogate,
        surrogate_min_samples=surrogate_min_samples,
    )
    return ConvergenceResult(
        device=device_name,
        quant_name=quant_name,
        searches=tuple(results),
        workers=max(1, workers),
    )
