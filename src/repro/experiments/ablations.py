"""Ablation studies for F-CAD's three design choices.

The paper motivates (but does not isolate) three mechanisms; these drivers
isolate each one:

1. **3-D vs. 2-D parallelism** — rerun the decoder DSE with ``max_h = 1``
   (H-partitioning disabled). Without the third dimension the architecture
   degenerates to DNNBuilder-style channel-only parallelism and the thin
   HD texture convs cap the whole decoder.
2. **Search strategy** — at an equal candidate-evaluation budget, compare
   the PSO cross-branch search against pure random sampling and against
   the single demand-proportional heuristic split.
3. **Variance penalty** — sweep the fitness penalty weight ``alpha`` and
   observe the trade between total throughput and branch balance.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.crossbranch import CrossBranchOptimizer
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.perf.estimator import AcceleratorPerf, evaluate
from repro.quant.schemes import get_scheme
from repro.utils.rng import make_rng
from repro.utils.tables import render_table

_VR_CUSTOM = dict(batch_sizes=(1, 2, 2), priorities=(1.0, 1.0, 1.0))


# ---------------------------------------------------------------------------
# 1. 3-D vs 2-D parallelism
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelismAblation:
    device: str
    quant_name: str
    full_3d: AcceleratorPerf
    two_level: AcceleratorPerf

    @property
    def texture_speedup(self) -> float:
        """3-D over 2-D on the critical texture branch."""
        return self.full_3d.branches[1].fps / self.two_level.branches[1].fps

    def render(self) -> str:
        rows = []
        for label, perf in (("3-D (cpf,kpf,h)", self.full_3d), ("2-D (h=1)", self.two_level)):
            rows.append(
                [
                    label,
                    " / ".join(f"{b.fps:.1f}" for b in perf.branches),
                    f"{perf.fps:.1f}",
                    perf.total_dsp,
                    f"{100 * perf.overall_efficiency:.1f}",
                ]
            )
        rows.append(
            [
                "texture speedup",
                f"{self.texture_speedup:.1f}x from H-partitioning",
                "-",
                "-",
                "-",
            ]
        )
        return render_table(
            ["architecture", "branch FPS", "decoder FPS", "DSP", "eff %"],
            rows,
            title=f"Ablation: 3-D parallelism on {self.device} ({self.quant_name})",
        )


def run_ablation_parallelism(
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
    iterations: int = 10,
    population: int = 80,
    seed: int = 0,
) -> ParallelismAblation:
    """Disable the H-partition and measure what the decoder loses."""
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)

    def search(max_h: int | None) -> AcceleratorPerf:
        engine = DseEngine(
            plan=plan,
            budget=device.budget(),
            customization=Customization(max_h=max_h, **_VR_CUSTOM),
            quant=quant,
            frequency_mhz=device.default_frequency_mhz,
        )
        return engine.search(
            iterations=iterations, population=population, seed=seed
        ).best_perf

    return ParallelismAblation(
        device=device_name,
        quant_name=quant_name,
        full_3d=search(None),
        two_level=search(1),
    )


# ---------------------------------------------------------------------------
# 2. search strategy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SearchAblation:
    strategies: dict[str, AcceleratorPerf]
    fitness: dict[str, float]
    evaluations: int

    def render(self) -> str:
        rows = []
        for name in self.strategies:
            perf = self.strategies[name]
            rows.append(
                [
                    name,
                    f"{self.fitness[name]:.1f}",
                    " / ".join(f"{b.fps:.1f}" for b in perf.branches),
                    f"{perf.fps:.1f}",
                ]
            )
        return render_table(
            ["strategy", "fitness", "branch FPS", "decoder FPS"],
            rows,
            title=(
                "Ablation: cross-branch search strategy "
                f"(~{self.evaluations} candidate evaluations each)"
            ),
        )


def run_ablation_search(
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
    iterations: int = 10,
    population: int = 80,
    seed: int = 0,
) -> SearchAblation:
    """PSO vs pure random sampling vs the heuristic split alone."""
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    customization = Customization(**_VR_CUSTOM)

    def make_optimizer() -> CrossBranchOptimizer:
        return CrossBranchOptimizer(
            plan=plan,
            budget=device.budget(),
            customization=customization,
            quant=quant,
            frequency_mhz=device.default_frequency_mhz,
        )

    strategies: dict[str, AcceleratorPerf] = {}
    fitness: dict[str, float] = {}

    # PSO (without the heuristic seed, to isolate the evolution mechanism).
    optimizer = make_optimizer()
    score, config, _, _ = optimizer.search(
        iterations=iterations,
        population=population,
        seed=seed,
        heuristic_seed=False,
    )
    strategies["PSO (Algorithm 1)"] = evaluate(
        plan, config, quant, device.default_frequency_mhz
    )
    fitness["PSO (Algorithm 1)"] = score

    # Pure random sampling at the same evaluation budget.
    optimizer = make_optimizer()
    rng = make_rng(seed)
    best_score, best_solutions = float("-inf"), None
    for _ in range(iterations):
        for particle in optimizer.init_population(
            population, rng, heuristic_seed=False
        ):
            candidate_score, solutions = optimizer.evaluate(particle.position)
            if candidate_score > best_score:
                best_score, best_solutions = candidate_score, solutions
    assert best_solutions is not None
    from repro.arch.config import AcceleratorConfig

    random_config = AcceleratorConfig(
        branches=tuple(s.config for s in best_solutions)
    )
    strategies["random sampling"] = evaluate(
        plan, random_config, quant, device.default_frequency_mhz
    )
    fitness["random sampling"] = best_score

    # The heuristic demand-proportional split alone (one evaluation).
    optimizer = make_optimizer()
    score, solutions = optimizer.evaluate(optimizer._heuristic_position())
    heuristic_config = AcceleratorConfig(
        branches=tuple(s.config for s in solutions)
    )
    strategies["heuristic split only"] = evaluate(
        plan, heuristic_config, quant, device.default_frequency_mhz
    )
    fitness["heuristic split only"] = score

    return SearchAblation(
        strategies=strategies,
        fitness=fitness,
        evaluations=iterations * population,
    )


# ---------------------------------------------------------------------------
# 3. differentiated batch scheme
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchAblation:
    """Uniform vs per-branch (differentiated) batch customization.

    Finding (see EXPERIMENTS.md): on the elastic architecture, replicating
    a pipeline (batch) and widening it (parallelism) are *fungible* until a
    stage saturates its dimension caps, so the three schemes deliver the
    same stereo avatar rate from near-identical budgets. The {1, 2, 2}
    customization's value is semantic — it requests the number of
    in-flight frames each branch's display path actually needs — rather
    than extra throughput.
    """

    schemes: dict[str, AcceleratorPerf]

    def effective_eye_rate(self, name: str) -> float:
        """Stereo-aware avatar rate: Br.2/Br.3 must render both eyes."""
        perf = self.schemes[name]
        fps = [b.fps for b in perf.branches]
        return min(fps[0], fps[1] / 2.0, fps[2] / 2.0)

    def render(self) -> str:
        rows = []
        for name, perf in self.schemes.items():
            rows.append(
                [
                    name,
                    " / ".join(f"{b.fps:.1f}" for b in perf.branches),
                    f"{self.effective_eye_rate(name):.1f}",
                    perf.total_dsp,
                ]
            )
        return render_table(
            ["batch scheme", "branch FPS", "stereo avatar FPS", "DSP"],
            rows,
            title="Ablation: differentiated batch scheme (two eyes need two textures)",
        )


def run_ablation_batch(
    device_name: str = "Z7045",
    quant_name: str = "int8",
    iterations: int = 8,
    population: int = 60,
    seed: int = 0,
) -> BatchAblation:
    """Why the paper's {1, 2, 2} customization beats uniform batching.

    Stereo VR needs *two* texture/warp outputs per displayed frame (one per
    eye) but only one geometry ("the Br. 1 only outputs one facial geometry
    that can be shared by both eyes"). A uniform batch of 2 therefore
    wastes a whole geometry replica that the differentiated scheme instead
    invests in the critical texture branch — visible on the small Z7045,
    where resources are genuinely scarce.
    """
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    schemes = {}
    for name, batches in (
        ("uniform {1,1,1}", (1, 1, 1)),
        ("uniform {2,2,2}", (2, 2, 2)),
        ("differentiated {1,2,2}", (1, 2, 2)),
    ):
        engine = DseEngine(
            plan=plan,
            budget=device.budget(),
            customization=Customization(
                batch_sizes=batches, priorities=(1.0, 1.0, 1.0)
            ),
            quant=quant,
            frequency_mhz=device.default_frequency_mhz,
        )
        schemes[name] = engine.search(
            iterations=iterations, population=population, seed=seed
        ).best_perf
    return BatchAblation(schemes=schemes)


# ---------------------------------------------------------------------------
# 4. variance penalty
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AlphaAblation:
    alphas: tuple[float, ...]
    perfs: tuple[AcceleratorPerf, ...]

    def branch_fps(self, idx: int) -> list[float]:
        return [b.fps for b in self.perfs[idx].branches]

    def variance(self, idx: int) -> float:
        return statistics.pvariance(self.branch_fps(idx))

    def total_fps(self, idx: int) -> float:
        return sum(self.branch_fps(idx))

    def render(self) -> str:
        rows = []
        for idx, alpha in enumerate(self.alphas):
            rows.append(
                [
                    f"{alpha:g}",
                    " / ".join(f"{f:.1f}" for f in self.branch_fps(idx)),
                    f"{self.total_fps(idx):.1f}",
                    f"{self.variance(idx):.0f}",
                ]
            )
        return render_table(
            ["alpha", "branch FPS", "sum FPS", "variance"],
            rows,
            title="Ablation: branch-variance penalty (fitness = S - alpha*var)",
        )


def run_ablation_alpha(
    alphas: tuple[float, ...] = (0.0, 0.05, 0.5, 5.0),
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
    iterations: int = 8,
    population: int = 60,
    seed: int = 0,
) -> AlphaAblation:
    """Sweep the fitness variance penalty and record the balance trade."""
    plan = build_pipeline_plan(build_codec_avatar_decoder())
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    perfs = []
    for alpha in alphas:
        engine = DseEngine(
            plan=plan,
            budget=device.budget(),
            customization=Customization(**_VR_CUSTOM),
            quant=quant,
            frequency_mhz=device.default_frequency_mhz,
            alpha=alpha,
        )
        perfs.append(
            engine.search(
                iterations=iterations, population=population, seed=seed
            ).best_perf
        )
    return AlphaAblation(alphas=tuple(alphas), perfs=tuple(perfs))
