"""Table I: network architecture and profile of the targeted decoder."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper_constants as paper
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.profiler.network import NetworkProfile, profile_network
from repro.utils.tables import render_table
from repro.utils.units import GIGA


@dataclass(frozen=True)
class Table1Row:
    branch: int
    gop: float
    gop_share: float
    params_m: float
    param_share: float
    paper_gop: float
    paper_params_m: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    unique_gop: float
    unique_params_m: float
    profile: NetworkProfile

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    f"Br.{row.branch}",
                    f"{row.gop:.1f} ({100 * row.gop_share:.1f}%)",
                    f"{row.paper_gop:.1f}",
                    f"{row.params_m:.1f}M ({100 * row.param_share:.1f}%)",
                    f"{row.paper_params_m:.1f}M",
                ]
            )
        table_rows.append(
            [
                "unique",
                f"{self.unique_gop:.1f}",
                f"{paper.TABLE1_UNIQUE_GOP:.1f}",
                f"{self.unique_params_m:.1f}M",
                f"{paper.TABLE1_UNIQUE_PARAMS_M:.1f}M",
            ]
        )
        return render_table(
            ["branch", "GOP (measured)", "GOP (paper)", "params (measured)", "params (paper)"],
            table_rows,
            title="Table I: targeted codec-avatar decoder profile",
        )


def run_table1() -> Table1Result:
    """Profile the reference decoder and compare with Table I."""
    profile = profile_network(build_codec_avatar_decoder())
    ops_total = profile.sum_of_branch_ops or 1
    params_total = sum(b.params for b in profile.branches) or 1
    rows = tuple(
        Table1Row(
            branch=branch.index + 1,
            gop=branch.ops / GIGA,
            gop_share=branch.ops / ops_total,
            params_m=branch.params / 1e6,
            param_share=branch.params / params_total,
            paper_gop=paper.TABLE1_BRANCH_GOP[branch.index],
            paper_params_m=paper.TABLE1_BRANCH_PARAMS_M[branch.index],
        )
        for branch in profile.branches
    )
    return Table1Result(
        rows=rows,
        unique_gop=profile.total_ops / GIGA,
        unique_params_m=profile.total_params / 1e6,
        profile=profile,
    )
