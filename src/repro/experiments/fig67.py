"""Figs. 6-7: estimation accuracy of the analytical models.

For each of the paper's eight benchmark configurations (AlexNet, ZFNet,
VGG16, Tiny-YOLO x 16-/8-bit) on a KU115:

1. F-CAD's DSE picks an accelerator,
2. the analytical models estimate its FPS (Eqs. 4-5) and efficiency (Eq. 3),
3. the cycle-accurate simulator "measures" the same design (the stand-in
   for the paper's board-level implementation),
4. the relative estimation error is reported.

FPS is measured end-to-end (host-timer accounting over a finite frame
batch, including pipeline fill and startup weight load) — the second-order
effects Eq. 4 ignores and exactly where the error comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.experiments import paper_constants as paper
from repro.models.zoo import get_model
from repro.quant.schemes import INT8, INT16
from repro.sim.runner import simulate
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Fig67Case:
    benchmark: str
    quant_name: str
    estimated_fps: float
    measured_fps: float
    estimated_efficiency: float
    measured_efficiency: float

    @property
    def fps_error_pct(self) -> float:
        return 100.0 * abs(self.estimated_fps - self.measured_fps) / self.measured_fps

    @property
    def efficiency_error_pct(self) -> float:
        return (
            100.0
            * abs(self.estimated_efficiency - self.measured_efficiency)
            / self.measured_efficiency
        )


@dataclass(frozen=True)
class Fig67Result:
    cases: tuple[Fig67Case, ...]

    @property
    def max_fps_error_pct(self) -> float:
        return max(c.fps_error_pct for c in self.cases)

    @property
    def avg_fps_error_pct(self) -> float:
        return sum(c.fps_error_pct for c in self.cases) / len(self.cases)

    @property
    def max_efficiency_error_pct(self) -> float:
        return max(c.efficiency_error_pct for c in self.cases)

    @property
    def avg_efficiency_error_pct(self) -> float:
        return sum(c.efficiency_error_pct for c in self.cases) / len(self.cases)

    def render(self) -> str:
        rows = []
        for idx, case in enumerate(self.cases, start=1):
            rows.append(
                [
                    f"bm{idx}",
                    f"{case.benchmark} ({case.quant_name})",
                    f"{case.estimated_fps:.1f}",
                    f"{case.measured_fps:.1f}",
                    f"{case.fps_error_pct:.2f}",
                    f"{case.efficiency_error_pct:.2f}",
                ]
            )
        rows.append(
            [
                "stats",
                "max / avg",
                "-",
                "-",
                f"{self.max_fps_error_pct:.2f} / {self.avg_fps_error_pct:.2f}",
                f"{self.max_efficiency_error_pct:.2f} / {self.avg_efficiency_error_pct:.2f}",
            ]
        )
        rows.append(
            [
                "paper",
                "max / avg",
                "-",
                "-",
                f"{paper.FIG6_MAX_ERROR_PCT:.2f} / {paper.FIG6_AVG_ERROR_PCT:.2f}",
                f"{paper.FIG7_MAX_ERROR_PCT:.2f} / {paper.FIG7_AVG_ERROR_PCT:.2f}",
            ]
        )
        return render_table(
            ["id", "benchmark", "est FPS", "meas FPS", "FPS err %", "eff err %"],
            rows,
            title="Figs. 6-7: analytical-model estimation errors on KU115",
        )


def run_fig67(
    iterations: int = 6,
    population: int = 40,
    frames: int = 64,
    seed: int = 0,
) -> Fig67Result:
    """Run the eight-benchmark estimation-accuracy study."""
    device = get_device("KU115")
    cases = []
    # The paper numbers benchmarks 1-4 as 16-bit, 5-8 as 8-bit.
    for quant in (INT16, INT8):
        for name in paper.FIG67_BENCHMARKS:
            plan = build_pipeline_plan(get_model(name))
            engine = DseEngine(
                plan=plan,
                budget=device.budget(),
                customization=Customization.uniform(plan.num_branches),
                quant=quant,
                frequency_mhz=device.default_frequency_mhz,
            )
            result = engine.search(
                iterations=iterations, population=population, seed=seed
            )
            report = simulate(
                plan,
                result.best_config,
                quant,
                bandwidth_gbps=device.bandwidth_gbps,
                frequency_mhz=device.default_frequency_mhz,
                frames=frames,
                warmup=max(2, frames // 16),
            )
            cases.append(
                Fig67Case(
                    benchmark=name,
                    quant_name=quant.name,
                    estimated_fps=result.best_perf.fps,
                    measured_fps=report.end_to_end_fps,
                    estimated_efficiency=result.best_perf.overall_efficiency,
                    # A board derives efficiency from steady-state counters
                    # (Eq. 3 over sustained GOPS), not from the end-to-end
                    # timer that sets the FPS number.
                    measured_efficiency=report.steady_efficiency,
                )
            )
    return Fig67Result(cases=tuple(cases))
