"""Table V: F-CAD vs DNNBuilder vs HybridDNN on the same ZU9CG FPGA.

DNNBuilder and HybridDNN run the mimic decoder (they do not support the
customized Conv); F-CAD runs the real decoder. Batch size is uniformly one
"for fair comparison as DNNBuilder and HybridDNN do not support
differentiated batch scheme". The paper's headline: 4.0x / 2.8x higher
throughput and +62.5 / +21.2 points efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineDesign
from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.baselines.hybriddnn import HybridDnnModel
from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.dse.space import Customization
from repro.experiments import paper_constants as paper
from repro.fcad.flow import FCad, FcadResult
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.models.mimic import build_mimic_decoder
from repro.quant.schemes import INT8, INT16
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Table5Result:
    dnnbuilder: BaselineDesign
    hybriddnn: BaselineDesign
    fcad_int8: FcadResult
    fcad_int16: FcadResult

    @property
    def speedup_vs_dnnbuilder(self) -> float:
        return self.fcad_int8.fps / self.dnnbuilder.fps

    @property
    def speedup_vs_hybriddnn(self) -> float:
        return self.fcad_int16.fps / self.hybriddnn.fps

    def render(self) -> str:
        def fcad_row(label: str, result: FcadResult, ref_key: str) -> list[str]:
            perf = result.dse.best_perf
            ref = paper.TABLE5[ref_key]
            return [
                label,
                str(perf.total_dsp),
                str(perf.total_bram),
                f"{perf.fps:.1f}",
                f"{100 * perf.overall_efficiency:.1f}",
                f"{ref['fps']:.1f}",
                f"{100 * ref['eff']:.1f}",
            ]

        rows = []
        for label, design, key in (
            ("DNNBuilder (8-bit)", self.dnnbuilder, "DNNBuilder"),
            ("HybridDNN (16-bit)", self.hybriddnn, "HybridDNN"),
        ):
            ref = paper.TABLE5[key]
            rows.append(
                [
                    label,
                    str(design.dsp),
                    str(design.bram),
                    f"{design.fps:.1f}",
                    f"{100 * design.efficiency:.1f}",
                    f"{ref['fps']:.1f}",
                    f"{100 * ref['eff']:.1f}",
                ]
            )
        rows.append(fcad_row("F-CAD (8-bit)", self.fcad_int8, "F-CAD (8-bit)"))
        rows.append(fcad_row("F-CAD (16-bit)", self.fcad_int16, "F-CAD (16-bit)"))
        rows.append(
            [
                "speedup",
                "-",
                "-",
                f"{self.speedup_vs_dnnbuilder:.1f}x vs DNNBuilder, "
                f"{self.speedup_vs_hybriddnn:.1f}x vs HybridDNN",
                "-",
                f"{paper.TABLE5_SPEEDUP_VS_DNNBUILDER:.1f}x / "
                f"{paper.TABLE5_SPEEDUP_VS_HYBRIDDNN:.1f}x",
                "-",
            ]
        )
        return render_table(
            ["design", "DSP", "BRAM", "FPS", "eff %", "paper FPS", "paper eff %"],
            rows,
            title="Table V: comparison to existing accelerators on ZU9CG",
        )


def run_table5(
    iterations: int = 20, population: int = 200, seed: int = 0
) -> Table5Result:
    """Head-to-head on ZU9CG with uniform batch size one."""
    device = get_device("ZU9CG")
    mimic_plan = build_pipeline_plan(build_mimic_decoder())
    dnnbuilder = DnnBuilderModel().design(
        mimic_plan, device.budget(), INT8, target=device.name
    )
    hybriddnn = HybridDnnModel().design(
        mimic_plan, device.budget(), INT16, target=device.name
    )

    network = build_codec_avatar_decoder()
    customization = Customization.uniform(3, batch_size=1)
    fcad_int8 = FCad(
        network=network, device=device, quant=INT8, customization=customization
    ).run(iterations=iterations, population=population, seed=seed)
    fcad_int16 = FCad(
        network=network, device=device, quant=INT16, customization=customization
    ).run(iterations=iterations, population=population, seed=seed)
    return Table5Result(
        dnnbuilder=dnnbuilder,
        hybriddnn=hybriddnn,
        fcad_int8=fcad_int8,
        fcad_int16=fcad_int16,
    )
