"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver returns a structured result object with a ``render()`` method;
the benchmark harnesses under ``benchmarks/`` time these drivers and print
the reproduced tables next to the paper's published numbers
(:mod:`repro.experiments.paper_constants`).
"""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig67 import run_fig67
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.convergence import run_convergence
from repro.experiments.energy import run_energy_study
from repro.experiments.family import run_decoder_family
from repro.experiments.ablations import (
    run_ablation_alpha,
    run_ablation_batch,
    run_ablation_parallelism,
    run_ablation_search,
)

__all__ = [
    "run_ablation_alpha",
    "run_ablation_batch",
    "run_ablation_parallelism",
    "run_ablation_search",
    "run_convergence",
    "run_decoder_family",
    "run_energy_study",
    "run_fig3",
    "run_fig67",
    "run_table1",
    "run_table2",
    "run_table4",
    "run_table5",
]
