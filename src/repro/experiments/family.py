"""Decoder-family generality study (extension beyond the paper).

The paper frames F-CAD as "a new automation tool for accelerating
multi-branch DNNs with complicated layer dependencies", evaluated on one
decoder. This experiment runs the identical flow over the three decoder
families in the zoo — the Table-I decoder, a GAN-style two-brancher, and a
four-branch modular codec avatar — demonstrating that nothing in the tool
is specialized to one topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.fpga import get_device
from repro.dse.space import Customization
from repro.fcad.flow import FCad, FcadResult
from repro.models.zoo import get_model
from repro.quant.schemes import get_scheme
from repro.utils.tables import render_table
from repro.utils.units import GIGA

FAMILY = ("codec_avatar_decoder", "gan_decoder", "modular_decoder")


@dataclass(frozen=True)
class FamilyResult:
    device: str
    quant_name: str
    results: dict[str, FcadResult]

    def render(self) -> str:
        rows = []
        for name, result in self.results.items():
            perf = result.dse.best_perf
            profile = result.profile
            rows.append(
                [
                    name,
                    len(profile.branches),
                    f"{profile.total_ops / GIGA:.1f}",
                    " / ".join(f"{b.fps:.0f}" for b in perf.branches),
                    f"{perf.fps:.1f}",
                    f"{100 * perf.overall_efficiency:.1f}",
                    perf.total_dsp,
                ]
            )
        return render_table(
            ["decoder", "branches", "GOP", "branch FPS", "min FPS", "eff %", "DSP"],
            rows,
            title=f"Decoder family study on {self.device} ({self.quant_name})",
        )


def run_decoder_family(
    device_name: str = "ZU9CG",
    quant_name: str = "int8",
    iterations: int = 8,
    population: int = 60,
    seed: int = 0,
) -> FamilyResult:
    """Explore an accelerator for every decoder family in the zoo."""
    device = get_device(device_name)
    quant = get_scheme(quant_name)
    results = {}
    for name in FAMILY:
        network = get_model(name)
        flow = FCad(
            network=network,
            device=device,
            quant=quant,
            customization=Customization.uniform(len(network.output_names())),
        )
        results[name] = flow.run(
            iterations=iterations, population=population, seed=seed
        )
    return FamilyResult(
        device=device_name, quant_name=quant_name, results=results
    )
