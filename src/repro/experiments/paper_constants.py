"""Published numbers from the paper, for side-by-side comparison.

Source: Zhang et al., "F-CAD: A Framework to Explore Hardware Accelerators
for Codec Avatar Decoding", DAC 2021 (arXiv:2103.04958).
"""

from __future__ import annotations

# --- Table I: the targeted decoder -----------------------------------------
TABLE1_BRANCH_GOP = (1.9, 11.3, 4.9)
TABLE1_BRANCH_GOP_SHARE = (0.105, 0.624, 0.271)
TABLE1_BRANCH_PARAMS_M = (1.1, 6.1, 1.9)
TABLE1_BRANCH_PARAM_SHARE = (0.121, 0.670, 0.209)
TABLE1_UNIQUE_GOP = 13.6
TABLE1_UNIQUE_PARAMS_M = 7.2

# --- Table II: existing accelerators on the mimic decoder ------------------
TABLE2_SOC = {"fps": 35.8, "efficiency": 0.169}
TABLE2_DNNBUILDER = {
    # scheme -> (DSP, BRAM, FPS, efficiency)
    1: (644, 723, 30.5, 0.816),
    2: (1044, 861, 30.5, 0.504),
    3: (1820, 1197, 30.5, 0.288),
}
TABLE2_HYBRIDDNN = {
    1: (512, 576, 12.1, 0.775),
    2: (1024, 1120, 22.0, 0.704),
    3: (1024, 1120, 22.0, 0.704),
}
SCHEME_DEVICES = {1: "Z7045", 2: "ZU17EG", 3: "ZU9CG"}

# --- Figs. 6-7: estimation accuracy on KU115 --------------------------------
FIG6_MAX_ERROR_PCT = 2.89
FIG6_AVG_ERROR_PCT = 2.02
FIG7_MAX_ERROR_PCT = 3.96
FIG7_AVG_ERROR_PCT = 1.91
FIG67_BENCHMARKS = ("alexnet", "zfnet", "vgg16", "tiny_yolo")

# --- Table IV: F-CAD generated accelerators ---------------------------------
# case -> device, quant, per-branch (DSP, BRAM, FPS, efficiency %), DSE s
TABLE4_CASES = {
    1: {
        "device": "Z7045",
        "quant": "int8",
        "branches": [
            (199, 221, 61.0, 76.6),
            (500, 551, 30.5, 86.6),
            (38, 112, 61.0, 84.2),
        ],
        "total_dsp": 737,
        "total_bram": 884,
        "dse_seconds": 101.8,
    },
    2: {
        "device": "ZU17EG",
        "quant": "int8",
        "branches": [
            (351, 280, 122.1, 86.8),
            (936, 642, 61.0, 92.6),
            (70, 102, 122.1, 91.4),
        ],
        "total_dsp": 1357,
        "total_bram": 1024,
        "dse_seconds": 77.3,
    },
    3: {
        "device": "ZU17EG",
        "quant": "int16",
        "branches": [
            (351, 382, 61.0, 86.8),
            (928, 983, 30.5, 93.4),
            (22, 208, 15.3, 72.7),
        ],
        "total_dsp": 1301,
        "total_bram": 1573,
        "dse_seconds": 82.8,
    },
    4: {
        "device": "ZU9CG",
        "quant": "int8",
        "branches": [
            (351, 280, 122.1, 86.8),
            (1808, 786, 122.1, 95.8),
            (70, 102, 122.1, 91.4),
        ],
        "total_dsp": 2229,
        "total_bram": 1168,
        "dse_seconds": 56.9,
    },
    5: {
        "device": "ZU9CG",
        "quant": "int16",
        "branches": [
            (351, 382, 61.0, 86.8),
            (1792, 1183, 61.0, 96.7),
            (70, 188, 61.0, 91.4),
        ],
        "total_dsp": 2213,
        "total_bram": 1735,
        "dse_seconds": 67.6,
    },
}
TABLE4_BATCH_SIZES = (1, 2, 2)

# --- Table V: comparison on ZU9CG -------------------------------------------
TABLE5 = {
    "DNNBuilder": {"quant": "int8", "dsp": 1820, "bram": 1197, "fps": 30.5, "eff": 0.288},
    "HybridDNN": {"quant": "int16", "dsp": 1024, "bram": 1120, "fps": 22.0, "eff": 0.704},
    "F-CAD (8-bit)": {"quant": "int8", "dsp": 2229, "bram": 1168, "fps": 122.1, "eff": 0.913},
    "F-CAD (16-bit)": {"quant": "int16", "dsp": 2213, "bram": 1735, "fps": 61.0, "eff": 0.916},
}
TABLE5_SPEEDUP_VS_DNNBUILDER = 4.0
TABLE5_SPEEDUP_VS_HYBRIDDNN = 2.8

# --- Sec. VII: DSE convergence ----------------------------------------------
CONVERGENCE_SEARCHES = 10
CONVERGENCE_ITERATIONS = 20  # N
CONVERGENCE_POPULATION = 200  # P
CONVERGENCE_AVG_ITER = 9.2
CONVERGENCE_MIN_ITER = 6.8
CONVERGENCE_MAX_ITER = 13.6
