"""Fig. 3: latency of the last five Br. 2 conv layers under DNNBuilder.

The paper circles the layers whose latency stops improving as the FPGA
grows — the ones that hit DNNBuilder's two-level parallelism cap
(``pf <= InCh x OutCh``). This experiment extracts exactly those series
from the DNNBuilder model across schemes 1-3 and marks the saturated
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.experiments import paper_constants as paper
from repro.models.mimic import build_mimic_decoder
from repro.quant.schemes import INT8
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Fig3Result:
    layer_names: tuple[str, ...]
    # scheme -> {layer -> latency ms}
    latencies: dict[int, dict[str, float]]
    saturated: tuple[str, ...]  # the paper's "circled" layers

    def render(self) -> str:
        rows = []
        for layer in self.layer_names:
            mark = " (capped)" if layer in self.saturated else ""
            rows.append(
                [layer + mark]
                + [f"{self.latencies[s][layer]:.2f}" for s in sorted(self.latencies)]
            )
        headers = ["layer"] + [
            f"scheme {s} ({paper.SCHEME_DEVICES[s]}) ms"
            for s in sorted(self.latencies)
        ]
        return render_table(
            headers,
            rows,
            title="Fig. 3: last five Br.2 conv latencies under DNNBuilder",
        )


def run_fig3() -> Fig3Result:
    """DNNBuilder per-layer latency of Br.2's last five convs, schemes 1-3."""
    plan = build_pipeline_plan(build_mimic_decoder())
    texture_branch = max(plan.branches, key=lambda b: b.ops)
    last_five = [s.name for s in texture_branch.stages[-5:]]

    model = DnnBuilderModel()
    latencies: dict[int, dict[str, float]] = {}
    for scheme, device_name in paper.SCHEME_DEVICES.items():
        design = model.design(
            plan, get_device(device_name).budget(), INT8, target=device_name
        )
        latencies[scheme] = {
            name: design.layer_latency_ms[name] for name in last_five
        }

    first, last = min(latencies), max(latencies)
    saturated = tuple(
        name
        for name in last_five
        if abs(latencies[first][name] - latencies[last][name])
        < 1e-9 + 0.01 * latencies[first][name]
    )
    return Fig3Result(
        layer_names=tuple(last_five),
        latencies=latencies,
        saturated=saturated,
    )
