"""Table IV: F-CAD generated accelerators for the five device/precision cases."""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.fpga import get_device
from repro.dse.space import Customization
from repro.experiments import paper_constants as paper
from repro.fcad.flow import FCad, FcadResult, run_sweep
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Table4Case:
    case: int
    device: str
    quant_name: str
    result: FcadResult

    def rows(self) -> list[list[str]]:
        ref = paper.TABLE4_CASES[self.case]
        rows = []
        perf = self.result.dse.best_perf
        for branch, paper_branch in zip(perf.branches, ref["branches"]):
            rows.append(
                [
                    f"case {self.case} ({self.device}, {self.quant_name})",
                    f"Br.{branch.index + 1}",
                    str(branch.dsp),
                    str(branch.bram),
                    f"{branch.fps:.1f}",
                    f"{100 * branch.efficiency:.1f}",
                    f"{paper_branch[2]:.1f}",
                    f"{paper_branch[3]:.1f}",
                ]
            )
        rows.append(
            [
                f"case {self.case} total",
                "-",
                str(perf.total_dsp),
                str(perf.total_bram),
                f"{perf.fps:.1f}",
                f"{100 * perf.overall_efficiency:.1f}",
                f"DSE {self.result.dse.runtime_seconds:.1f}s",
                f"paper DSP {ref['total_dsp']}, {ref['dse_seconds']}s",
            ]
        )
        return rows


@dataclass(frozen=True)
class Table4Result:
    cases: tuple[Table4Case, ...]

    def case(self, number: int) -> Table4Case:
        for case in self.cases:
            if case.case == number:
                return case
        raise KeyError(f"no case {number}")

    def render(self) -> str:
        rows = []
        for case in self.cases:
            rows.extend(case.rows())
        return render_table(
            [
                "case",
                "branch",
                "DSP",
                "BRAM",
                "FPS",
                "eff %",
                "paper FPS",
                "paper eff %",
            ],
            rows,
            title="Table IV: F-CAD generated accelerators for codec avatar decoding",
        )


def run_table4(
    iterations: int = 20,
    population: int = 200,
    seed: int = 0,
    cases: tuple[int, ...] = (1, 2, 3, 4, 5),
    workers: int = 1,
) -> Table4Result:
    """Run the F-CAD flow for the requested Table IV cases.

    The five cases run as one batch sweep: a shared evaluation cache plus
    (with ``workers > 1``) process-pool generations — results per case are
    identical to running each flow on its own.
    """
    network = build_codec_avatar_decoder()
    customization = Customization(
        batch_sizes=paper.TABLE4_BATCH_SIZES,
        priorities=(1.0, 1.0, 1.0),
    )
    refs = [paper.TABLE4_CASES[case] for case in cases]
    flows = [
        FCad(
            network=network,
            device=get_device(ref["device"]),
            quant=ref["quant"],
            customization=customization,
        )
        for ref in refs
    ]
    results = run_sweep(
        flows,
        iterations=iterations,
        population=population,
        seed=seed,
        workers=workers,
    )
    return Table4Result(
        cases=tuple(
            Table4Case(
                case=case,
                device=ref["device"],
                quant_name=ref["quant"],
                result=result,
            )
            for case, ref, result in zip(cases, refs, results)
        )
    )
