"""Energy study (extension): what does each Table-IV design cost in watts?

The paper motivates F-CAD with headsets' "limited computation, memory, and
power budgets" but reports no power numbers. This study attaches the
energy model to the Table-IV sweep: per-frame energy split
(compute / SRAM / DRAM) and sustained power for the decoder accelerator on
each device/precision, plus the FPS-per-watt figure of merit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.fpga import get_device
from repro.dse.space import Customization
from repro.experiments import paper_constants as paper
from repro.fcad.flow import FCad
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.perf.energy import EnergyReport, estimate_energy
from repro.utils.tables import render_table


@dataclass(frozen=True)
class EnergyStudyResult:
    cases: dict[str, EnergyReport]  # "device/quant" -> report

    def render(self) -> str:
        rows = []
        for name, report in self.cases.items():
            rows.append(
                [
                    name,
                    f"{report.fps:.1f}",
                    f"{report.dynamic_mj_per_frame:.1f}",
                    f"{report.dynamic_w:.2f}",
                    f"{report.static_w:.2f}",
                    f"{report.total_w:.2f}",
                    f"{report.fps_per_watt:.1f}",
                ]
            )
        return render_table(
            ["case", "FPS", "mJ/frame", "dyn W", "static W", "total W", "FPS/W"],
            rows,
            title="Energy study: decoder accelerators across devices",
        )


def run_energy_study(
    iterations: int = 8,
    population: int = 60,
    seed: int = 0,
    devices: tuple[str, ...] = ("Z7045", "ZU17EG", "ZU9CG"),
    quants: tuple[str, ...] = ("int8", "int16"),
) -> EnergyStudyResult:
    """Explore the decoder per device/precision and estimate power."""
    network = build_codec_avatar_decoder()
    customization = Customization(
        batch_sizes=paper.TABLE4_BATCH_SIZES, priorities=(1.0, 1.0, 1.0)
    )
    cases = {}
    for device_name in devices:
        for quant_name in quants:
            result = FCad(
                network=network,
                device=get_device(device_name),
                quant=quant_name,
                customization=customization,
            ).run(iterations=iterations, population=population, seed=seed)
            cases[f"{device_name}/{quant_name}"] = estimate_energy(
                result.plan,
                result.dse.best_config,
                result.quant,
                result.dse.best_perf,
            )
    return EnergyStudyResult(cases=cases)
