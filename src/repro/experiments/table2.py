"""Table II: the mimic decoder on existing accelerators.

Evaluates the Snapdragon-865-style SoC model plus DNNBuilder and HybridDNN
on three FPGAs of increasing size (the paper's schemes 1-3) and reproduces
the headline behaviours: the SoC is cache-bound in the teens of percent
efficiency; DNNBuilder's throughput is flat across schemes while its
efficiency collapses; HybridDNN scales once, then sticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineDesign
from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.baselines.hybriddnn import HybridDnnModel
from repro.baselines.soc import SocModel
from repro.construction.reorg import build_pipeline_plan
from repro.devices.fpga import get_device
from repro.experiments import paper_constants as paper
from repro.models.mimic import build_mimic_decoder
from repro.quant.schemes import INT8, INT16
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Table2Result:
    soc: BaselineDesign
    dnnbuilder: dict[int, BaselineDesign]
    hybriddnn: dict[int, BaselineDesign]

    def render(self) -> str:
        rows = [
            [
                "865 SoC (8-bit)",
                "-",
                "-",
                f"{self.soc.fps:.1f}",
                f"{100 * self.soc.efficiency:.1f}",
                f"{paper.TABLE2_SOC['fps']:.1f}",
                f"{100 * paper.TABLE2_SOC['efficiency']:.1f}",
            ]
        ]
        for scheme, design in sorted(self.dnnbuilder.items()):
            ref = paper.TABLE2_DNNBUILDER[scheme]
            rows.append(
                [
                    f"DNNBuilder (8-bit) s{scheme}",
                    design.dsp,
                    design.bram,
                    f"{design.fps:.1f}",
                    f"{100 * design.efficiency:.1f}",
                    f"{ref[2]:.1f}",
                    f"{100 * ref[3]:.1f}",
                ]
            )
        for scheme, design in sorted(self.hybriddnn.items()):
            ref = paper.TABLE2_HYBRIDDNN[scheme]
            rows.append(
                [
                    f"HybridDNN (16-bit) s{scheme}",
                    design.dsp,
                    design.bram,
                    f"{design.fps:.1f}",
                    f"{100 * design.efficiency:.1f}",
                    f"{ref[2]:.1f}",
                    f"{100 * ref[3]:.1f}",
                ]
            )
        return render_table(
            ["scheme", "DSP", "BRAM", "FPS", "eff %", "paper FPS", "paper eff %"],
            rows,
            title="Table II: mimic decoder on existing accelerators",
        )


def run_table2() -> Table2Result:
    """Evaluate all three baselines across the paper's schemes."""
    mimic = build_mimic_decoder()
    plan = build_pipeline_plan(mimic)
    soc = SocModel().design(mimic, INT8)
    dnnbuilder = {}
    hybriddnn = {}
    for scheme, device_name in paper.SCHEME_DEVICES.items():
        budget = get_device(device_name).budget()
        dnnbuilder[scheme] = DnnBuilderModel().design(
            plan, budget, INT8, target=device_name
        )
        hybriddnn[scheme] = HybridDnnModel().design(
            plan, budget, INT16, target=device_name
        )
    return Table2Result(soc=soc, dnnbuilder=dnnbuilder, hybriddnn=hybriddnn)
