"""Per-layer cost metrics.

``ops`` follows the paper's GOP convention: two operations per MAC plus the
elementwise work (bias adds, activations, pool comparisons). Parameter
counts split weights from biases because the untied bias of the customized
Conv dominates the decoder's memory footprint at high resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import Node
from repro.ir.layer import Layer, TensorShape


@dataclass(frozen=True)
class LayerProfile:
    """Static cost profile of one layer instance."""

    name: str
    kind: str
    in_shapes: tuple[TensorShape, ...]
    out_shape: TensorShape
    macs: int
    elementwise_ops: int
    weight_params: int
    bias_params: int

    @property
    def ops(self) -> int:
        """Total arithmetic operations (the paper's GOP numerator)."""
        return 2 * self.macs + self.elementwise_ops

    @property
    def params(self) -> int:
        return self.weight_params + self.bias_params

    @property
    def input_elements(self) -> int:
        return sum(shape.numel for shape in self.in_shapes)

    @property
    def output_elements(self) -> int:
        return self.out_shape.numel

    @property
    def reuse(self) -> float:
        """Arithmetic intensity: ops per element moved (in + out + params).

        This is the ``norm_param``/``GetReuse`` quantity of Algorithm 2 —
        layers with low reuse are bandwidth-hungry.
        """
        moved = self.input_elements + self.output_elements + self.params
        return self.ops / moved if moved else 0.0


def profile_layer(
    node: Node,
    in_shapes: tuple[TensorShape, ...],
    out_shape: TensorShape,
) -> LayerProfile:
    """Compute the cost profile of one graph node."""
    layer: Layer = node.layer
    return LayerProfile(
        name=node.name,
        kind=layer.kind,
        in_shapes=in_shapes,
        out_shape=out_shape,
        macs=layer.macs(in_shapes, out_shape),
        elementwise_ops=layer.elementwise_ops(in_shapes, out_shape),
        weight_params=layer.weight_params(),
        bias_params=layer.bias_params(out_shape),
    )
