"""Network profiling: per-layer and per-branch compute / memory demands."""

from repro.profiler.metrics import LayerProfile, profile_layer
from repro.profiler.network import (
    BranchProfile,
    NetworkProfile,
    profile_network,
)
from repro.profiler.report import render_branch_table, render_layer_table

__all__ = [
    "BranchProfile",
    "LayerProfile",
    "NetworkProfile",
    "profile_layer",
    "profile_network",
    "render_branch_table",
    "render_layer_table",
]
