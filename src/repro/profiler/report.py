"""Human-readable rendering of network profiles."""

from __future__ import annotations

from repro.profiler.network import NetworkProfile
from repro.utils.tables import render_table
from repro.utils.units import GIGA, format_count


def render_layer_table(profile: NetworkProfile, compute_only: bool = True) -> str:
    """Per-layer table (optionally only layers that perform MACs)."""
    rows = []
    for layer in profile.layers:
        if compute_only and layer.macs == 0:
            continue
        rows.append(
            [
                layer.name,
                layer.kind,
                "+".join(str(s) for s in layer.in_shapes) or "-",
                str(layer.out_shape),
                f"{layer.ops / GIGA:.3f}",
                format_count(layer.params),
                f"{layer.reuse:.1f}",
            ]
        )
    return render_table(
        ["layer", "kind", "in", "out", "GOP", "params", "reuse"],
        rows,
        title=f"Layer profile: {profile.graph_name}",
    )


def render_branch_table(profile: NetworkProfile) -> str:
    """Per-branch table in the style of the paper's Table I."""
    row_total_ops = profile.sum_of_branch_ops or 1
    row_total_params = sum(b.params for b in profile.branches) or 1
    rows = []
    for branch in profile.branches:
        rows.append(
            [
                f"Br.{branch.index + 1}",
                branch.output_name,
                f"{branch.ops / GIGA:.1f} ({100 * branch.ops / row_total_ops:.1f}%)",
                (
                    f"{format_count(branch.params)} "
                    f"({100 * branch.params / row_total_params:.1f}%)"
                ),
                f"{branch.shared_ops / GIGA:.1f}",
            ]
        )
    rows.append(
        [
            "unique",
            "-",
            f"{profile.total_ops / GIGA:.1f}",
            format_count(profile.total_params),
            "-",
        ]
    )
    return render_table(
        ["branch", "output", "GOP (share)", "params (share)", "shared GOP"],
        rows,
        title=f"Branch profile: {profile.graph_name}",
    )
