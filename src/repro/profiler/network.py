"""Whole-network profiling with branch-wise statistics.

Branch semantics follow the paper's Table I: the profile of branch *j*
includes every node that branch *j*'s output depends on — so branches with a
common front part both count the shared nodes, while the network-level
*unique* totals count every node exactly once ("without repeatedly counting
the shared part").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import NetworkGraph
from repro.profiler.metrics import LayerProfile, profile_layer


@dataclass(frozen=True)
class BranchProfile:
    """Aggregate cost of one branch (inclusive of shared ancestors)."""

    index: int
    output_name: str
    node_names: tuple[str, ...]
    macs: int
    ops: int
    weight_params: int
    bias_params: int
    shared_macs: int
    shared_ops: int
    shared_params: int

    @property
    def params(self) -> int:
        return self.weight_params + self.bias_params

    @property
    def own_ops(self) -> int:
        """Ops exclusive to this branch (shared front part excluded)."""
        return self.ops - self.shared_ops

    @property
    def own_macs(self) -> int:
        return self.macs - self.shared_macs


@dataclass(frozen=True)
class NetworkProfile:
    """Full profile: per-layer, per-branch, and unique network totals."""

    graph_name: str
    layers: tuple[LayerProfile, ...]
    branches: tuple[BranchProfile, ...]

    @property
    def by_name(self) -> dict[str, LayerProfile]:
        return {p.name: p for p in self.layers}

    @property
    def total_macs(self) -> int:
        """MACs with shared parts counted once."""
        return sum(p.macs for p in self.layers)

    @property
    def total_ops(self) -> int:
        """Ops with shared parts counted once (the paper's 13.6 GOP)."""
        return sum(p.ops for p in self.layers)

    @property
    def total_params(self) -> int:
        """Parameters with shared parts counted once (the paper's 7.2 M)."""
        return sum(p.params for p in self.layers)

    @property
    def sum_of_branch_ops(self) -> int:
        """Ops summed over branch rows (shared parts counted per branch)."""
        return sum(b.ops for b in self.branches)

    def branch(self, index: int) -> BranchProfile:
        return self.branches[index]


def profile_network(graph: NetworkGraph) -> NetworkProfile:
    """Profile every layer and every branch of ``graph``."""
    shapes = graph.infer_shapes()
    order = graph.topo_order()
    profiles: dict[str, LayerProfile] = {}
    for name in order:
        node = graph.node(name)
        in_shapes = tuple(shapes[parent] for parent in node.inputs)
        profiles[name] = profile_layer(node, in_shapes, shapes[name])

    membership = graph.branch_membership()
    branch_profiles: list[BranchProfile] = []
    for idx, output in enumerate(graph.output_names()):
        members = [
            name for name in order if idx in membership[name]
        ]
        shared = [name for name in members if len(membership[name]) > 1]
        branch_profiles.append(
            BranchProfile(
                index=idx,
                output_name=output,
                node_names=tuple(members),
                macs=sum(profiles[n].macs for n in members),
                ops=sum(profiles[n].ops for n in members),
                weight_params=sum(profiles[n].weight_params for n in members),
                bias_params=sum(profiles[n].bias_params for n in members),
                shared_macs=sum(profiles[n].macs for n in shared),
                shared_ops=sum(profiles[n].ops for n in shared),
                shared_params=sum(profiles[n].params for n in shared),
            )
        )

    return NetworkProfile(
        graph_name=graph.name,
        layers=tuple(profiles[name] for name in order),
        branches=tuple(branch_profiles),
    )
