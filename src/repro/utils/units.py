"""Unit conversions used across the performance and resource models.

Conventions (kept consistent in every module):

- compute demand is counted in MACs (multiply-accumulates); ``ops`` means
  arithmetic operations, i.e. ``2 x MACs`` plus elementwise additions;
- memory capacities are counted in bits internally and reported either in
  BRAM18K blocks (FPGA targets) or bytes (ASIC targets);
- bandwidth is reported in GB/s (1e9 bytes per second);
- frequency is reported in MHz.
"""

from __future__ import annotations

GIGA = 1e9
MEGA = 1e6
KIBI = 1024
MEBI = 1024 * 1024

#: Capacity of one Xilinx BRAM18K block, in bits.
BRAM18K_BITS = 18 * 1024

#: Widest read/write port of a BRAM18K block (simple dual port mode), in bits.
BRAM18K_PORT_BITS = 36


def gop(macs: float, extra_ops: float = 0.0) -> float:
    """Convert a MAC count (+ optional elementwise op count) to GOP.

    One MAC is two operations (a multiply and an add), which is the
    convention the paper uses (13.6 GOP for the 6.8 GMAC decoder).
    """
    return (2.0 * macs + extra_ops) / GIGA


def bits_to_bram18k(bits: int) -> int:
    """Number of BRAM18K blocks needed to store ``bits`` (capacity only)."""
    if bits <= 0:
        return 0
    return -(-bits // BRAM18K_BITS)


def format_engineering(value: float, unit: str = "", digits: int = 1) -> str:
    """Render ``value`` with an engineering suffix, e.g. ``13.6 G``."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits}f}{suffix}{unit}"
    return f"{value:.{digits}f}{unit}"


def format_count(value: float, digits: int = 1) -> str:
    """Short human-readable count (``7.2M``, ``13.6G``)."""
    return format_engineering(value, unit="", digits=digits)
