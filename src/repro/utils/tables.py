"""Plain-text table rendering for experiment reports.

Every experiment driver renders its result through :func:`render_table`, so
benchmark output looks like the tables in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with aligned columns.

    Floats are shown with one decimal (pre-format cells as strings for
    anything fancier). Returns the table as a single string.
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(rule))
    lines.append(fmt_row(list(headers)))
    lines.append(rule)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
