"""Seeded random number generation.

All stochastic code (the cross-branch search, synthetic weight generation)
takes an explicit seed or ``random.Random`` so experiments are reproducible.
"""

from __future__ import annotations

import random


def seed_fingerprint(
    seed: int | random.Random | None,
) -> tuple[str, int] | None:
    """A hashable identity for a seed, or ``None`` when it has none.

    Batch APIs use this to recognize that two cases will produce identical
    results and can be deduplicated. Only plain integer seeds are
    fingerprintable: ``None`` draws fresh OS entropy per search and a live
    ``random.Random`` carries hidden state, so neither may be deduplicated.
    """
    if isinstance(seed, bool) or not isinstance(seed, int):
        return None
    return ("int", seed)


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or ``None``.

    Passing an existing RNG returns it unchanged, which lets callers thread
    one generator through nested components.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
