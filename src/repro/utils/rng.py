"""Seeded random number generation.

All stochastic code (the cross-branch search, synthetic weight generation)
takes an explicit seed or ``random.Random`` so experiments are reproducible.
"""

from __future__ import annotations

import random


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or ``None``.

    Passing an existing RNG returns it unchanged, which lets callers thread
    one generator through nested components.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
