"""Shared utilities: unit conversion, ASCII tables, seeded RNG helpers."""

from repro.utils.rng import make_rng
from repro.utils.tables import render_table
from repro.utils.units import (
    GIGA,
    KIBI,
    MEBI,
    bits_to_bram18k,
    format_count,
    format_engineering,
    gop,
)

__all__ = [
    "GIGA",
    "KIBI",
    "MEBI",
    "bits_to_bram18k",
    "format_count",
    "format_engineering",
    "gop",
    "make_rng",
    "render_table",
]
