"""F-CAD: a framework to explore hardware accelerators for codec avatar decoding.

A faithful reproduction of Zhang et al., DAC 2021 (arXiv:2103.04958):
an elastic multi-branch pipeline architecture, a multi-branch dynamic
design space, and a two-level design-space-exploration engine, together
with every substrate the paper's evaluation depends on (decoder model zoo,
analytical performance models, baseline accelerator models, a
cycle-accurate simulator, and a functional numpy runtime).

Quickstart::

    from repro import FCad, Customization, build_codec_avatar_decoder, get_device

    result = FCad(
        network=build_codec_avatar_decoder(),
        device=get_device("ZU9CG"),
        quant="int8",
        customization=Customization(batch_sizes=(1, 2, 2),
                                    priorities=(1.0, 1.0, 1.0)),
    ).run()
    print(result.render())
"""

from repro.analysis.analyzer import NetworkAnalysis, analyze_network
from repro.arch.config import AcceleratorConfig, BranchConfig, ConfigError, StageConfig
from repro.arch.elastic import ElasticAccelerator
from repro.arch.serialize import config_from_json, config_to_json
from repro.baselines import DnnBuilderModel, HybridDnnModel, SNAPDRAGON_865, SocModel
from repro.codegen.hls import generate_project
from repro.construction import PipelinePlan, build_pipeline_plan, fuse_graph
from repro.devices import AsicSpec, FpgaDevice, ResourceBudget, get_device, list_devices
from repro.dse import (
    BranchMetrics,
    CompositeObjective,
    Customization,
    DseEngine,
    DseResult,
    PaperObjective,
    ServingOracle,
    SimOracle,
    SloObjective,
    make_objective,
    make_oracle,
)
from repro.dse.pareto import ParetoFrontier, explore_budget_frontier
from repro.fcad import FCad, FcadResult, run_sweep, sweep_grid
from repro.fcad.report import render_markdown_report
from repro.ir import (
    Activation,
    BiasMode,
    Conv2d,
    GraphBuilder,
    Input,
    Linear,
    NetworkGraph,
    TensorShape,
    Upsample,
)
from repro.models import (
    DecoderPlan,
    build_codec_avatar_decoder,
    build_mimic_decoder,
    get_model,
    list_models,
)
from repro.perf import evaluate
from repro.perf.energy import EnergyReport, estimate_energy
from repro.profiler import profile_network
from repro.quant import INT8, INT16, QuantScheme, get_scheme
from repro.runtime import Executor, run_graph
from repro.serving import (
    AvatarWorkload,
    ReplicaPool,
    ServingReport,
    pool_from_result,
    serve_from_result,
    serve_workload,
)
from repro.sim import (
    FrameLatencyProfile,
    SimulationReport,
    frame_latency_profile,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "Activation",
    "AsicSpec",
    "AvatarWorkload",
    "BiasMode",
    "BranchConfig",
    "BranchMetrics",
    "CompositeObjective",
    "ConfigError",
    "Conv2d",
    "Customization",
    "DecoderPlan",
    "DnnBuilderModel",
    "DseEngine",
    "DseResult",
    "ElasticAccelerator",
    "EnergyReport",
    "Executor",
    "FCad",
    "FcadResult",
    "FpgaDevice",
    "FrameLatencyProfile",
    "GraphBuilder",
    "HybridDnnModel",
    "INT16",
    "INT8",
    "Input",
    "Linear",
    "NetworkAnalysis",
    "NetworkGraph",
    "PaperObjective",
    "ParetoFrontier",
    "PipelinePlan",
    "QuantScheme",
    "ReplicaPool",
    "ResourceBudget",
    "SNAPDRAGON_865",
    "ServingOracle",
    "ServingReport",
    "SimOracle",
    "SimulationReport",
    "SloObjective",
    "SocModel",
    "StageConfig",
    "TensorShape",
    "Upsample",
    "analyze_network",
    "build_codec_avatar_decoder",
    "build_mimic_decoder",
    "build_pipeline_plan",
    "config_from_json",
    "config_to_json",
    "evaluate",
    "frame_latency_profile",
    "estimate_energy",
    "explore_budget_frontier",
    "generate_project",
    "fuse_graph",
    "get_device",
    "get_model",
    "get_scheme",
    "list_devices",
    "list_models",
    "make_objective",
    "make_oracle",
    "profile_network",
    "render_markdown_report",
    "pool_from_result",
    "run_graph",
    "run_sweep",
    "serve_from_result",
    "serve_workload",
    "simulate",
    "sweep_grid",
]
