"""Analytical performance and resource models (paper Sec. VI-B3)."""

from repro.perf.analytical import branch_fps, efficiency, stage_latency_cycles
from repro.perf.estimator import (
    AcceleratorPerf,
    BranchPerf,
    StagePerf,
    evaluate,
)
from repro.perf.resources import StageResources, stage_resources

__all__ = [
    "AcceleratorPerf",
    "BranchPerf",
    "StagePerf",
    "StageResources",
    "branch_fps",
    "efficiency",
    "evaluate",
    "stage_latency_cycles",
    "stage_resources",
]
