"""The paper's analytical performance models.

- Eq. 4 — stage latency:
  ``Lat_i = OutCh x InCh x H x W x K^2 / (cpf x kpf x h x f)``
  (we use per-dimension ceilings so non-power-of-two channel counts are
  handled exactly);
- Eq. 5 — branch throughput: ``FPS = BatchSize / max_i(Lat_i)``;
- Eq. 3 — hardware efficiency:
  ``EFFI = GOPS / (beta x #multipliers x FREQ)``.

These models are validated against the cycle-accurate simulator in the
Fig. 6/7 experiments (the paper validates them against board-level runs).
"""

from __future__ import annotations

from repro.arch.config import StageConfig
from repro.construction.fusion import FusedStage


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def stage_latency_cycles(stage: FusedStage, cfg: StageConfig) -> int:
    """Eq. 4: cycles for one frame through one basic architecture unit.

    The unit iterates output channels in groups of ``kpf``, input channels
    in groups of ``cpf``, and the ``h`` engines split the output rows; every
    engine sweeps the full output width and the K x K window.
    """
    return (
        _ceil_div(stage.out_channels, cfg.kpf)
        * _ceil_div(stage.in_channels, cfg.cpf)
        * _ceil_div(stage.conv_height, cfg.h)
        * stage.conv_width
        * stage.kernel
        * stage.kernel
    )


def stage_latency_seconds(
    stage: FusedStage, cfg: StageConfig, frequency_mhz: float
) -> float:
    """Eq. 4 in seconds at the given clock."""
    return stage_latency_cycles(stage, cfg) / (frequency_mhz * 1e6)


def branch_fps(
    latencies_cycles: list[int], batch_size: int, frequency_mhz: float
) -> float:
    """Eq. 5 with ``batch_size`` pipeline replicas."""
    if batch_size == 0 or not latencies_cycles:
        return 0.0
    bottleneck = max(latencies_cycles)
    if bottleneck == 0:
        return 0.0
    return batch_size * frequency_mhz * 1e6 / bottleneck


def efficiency(
    gops_per_second: float,
    beta: int,
    multipliers: int,
    frequency_mhz: float,
) -> float:
    """Eq. 3: achieved over peak throughput, in [0, 1]."""
    if multipliers == 0:
        return 0.0
    peak = beta * multipliers * frequency_mhz * 1e6
    return gops_per_second * 1e9 / peak
