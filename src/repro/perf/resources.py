"""Resource models of the basic architecture unit (paper Fig. 5 (b)).

Every unit holds three kinds of resources:

- **computation** — ``h`` compute engines x ``kpf`` PEs x ``cpf`` MACs;
  DSP slices follow the quantization packing (two 8-bit MACs per DSP);
- **on-chip memory** — a weight buffer (whole-layer resident when the layer
  is small enough, double-buffered tiles otherwise) and an input line
  buffer holding the rows the kernel window needs, both constrained by
  capacity *and* by port width (a BRAM18K serves 36 bits per cycle);
- **external memory** — streaming traffic per frame: non-resident weights,
  untied biases (too large to keep on chip at high resolutions), plus the
  branch-boundary input/output tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StageConfig
from repro.construction.fusion import FusedStage
from repro.quant.schemes import QuantScheme
from repro.utils.units import BRAM18K_BITS, BRAM18K_PORT_BITS

#: Per-stage cap for keeping weights resident on chip (64 BRAM18K blocks).
#: Heavier layers double-buffer weight tiles and re-stream from DRAM every
#: frame — the streaming traffic is negligible next to the untied biases,
#: while pinning multi-megabit weight layers in BRAM would starve the
#: multi-replica (batch > 1) configurations the decoder customization asks
#: for.
WEIGHT_RESIDENT_CAP_BITS = 64 * BRAM18K_BITS


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class StageResources:
    """Resources one configured basic architecture unit consumes."""

    dsp: int
    bram: int
    stream_bytes_per_frame: float  # weights/bias traffic, excl. branch I/O
    weights_resident: bool

    def scaled(self, replicas: int) -> "StageResources":
        return StageResources(
            dsp=self.dsp * replicas,
            bram=self.bram * replicas,
            stream_bytes_per_frame=self.stream_bytes_per_frame,
            weights_resident=self.weights_resident,
        )


def dsp_usage(cfg: StageConfig, quant: QuantScheme) -> int:
    """DSP slices for ``pf`` parallel MACs under the packing of ``quant``."""
    return _ceil_div(cfg.pf, quant.macs_per_multiplier)


def weight_buffer_brams(
    stage: FusedStage, cfg: StageConfig, quant: QuantScheme
) -> tuple[int, bool]:
    """(BRAM blocks, resident?) for the stage's weight buffer.

    The ``h`` engines work on different output rows of the *same* output
    channels, so weights are broadcast across engines and the port only
    needs ``cpf x kpf`` weights per cycle.
    """
    tied_bias = 0 if stage.untied_bias else stage.bias_params
    total_bits = int((stage.weight_params + tied_bias) * quant.weight_bits)
    resident = weights_resident(stage, quant)
    if resident:
        capacity_bits = total_bits
    else:
        # Double-buffered tile: one kernel slice per (cpf, kpf) group.
        capacity_bits = 2 * cfg.cpf * cfg.kpf * stage.kernel**2 * quant.weight_bits
    port_bits = cfg.cpf * cfg.kpf * quant.weight_bits
    blocks = max(
        _ceil_div(capacity_bits, BRAM18K_BITS),
        _ceil_div(port_bits, BRAM18K_PORT_BITS),
    )
    return blocks, resident


def input_buffer_brams(
    stage: FusedStage, cfg: StageConfig, quant: QuantScheme
) -> int:
    """BRAM blocks for the input line buffer.

    The buffer holds the (pre-upsample) input rows covered by the kernel
    window, double-buffered; with a folded 2x upsample each stored row is
    read twice, halving the rows that must be kept.
    """
    rows_needed = _ceil_div(stage.kernel, stage.upsample_in) + 1
    input_rows = max(
        1, stage.conv_height * stage.stride // stage.upsample_in
    )
    line_elements = _ceil_div(stage.input_elements, input_rows)
    capacity_bits = 2 * rows_needed * line_elements * quant.activation_bits
    port_bits = cfg.cpf * cfg.h * quant.activation_bits
    return max(
        _ceil_div(capacity_bits, BRAM18K_BITS),
        _ceil_div(port_bits, BRAM18K_PORT_BITS),
    )


def weights_resident(stage: FusedStage, quant: QuantScheme) -> bool:
    """Whether the stage's weights (+ tied bias) stay on chip."""
    tied_bias = 0 if stage.untied_bias else stage.bias_params
    total_bits = int((stage.weight_params + tied_bias) * quant.weight_bits)
    return total_bits <= WEIGHT_RESIDENT_CAP_BITS


def stage_stream_bytes(stage: FusedStage, quant: QuantScheme) -> float:
    """Per-frame DRAM streaming traffic of a stage (config-independent).

    Non-resident weights re-stream every frame; untied biases are consumed
    once per frame in raster order, so they are streamed from DRAM rather
    than wasting on-chip memory.
    """
    stream_bytes = 0.0
    if not weights_resident(stage, quant):
        stream_bytes += quant.weight_bytes(stage.weight_params)
        if not stage.untied_bias:
            stream_bytes += quant.weight_bytes(stage.bias_params)
    if stage.untied_bias:
        stream_bytes += quant.weight_bytes(stage.bias_params)
    return stream_bytes


def stage_resources(
    stage: FusedStage, cfg: StageConfig, quant: QuantScheme
) -> StageResources:
    """Full resource usage of one configured unit (one pipeline replica)."""
    weight_blocks, resident = weight_buffer_brams(stage, cfg, quant)
    input_blocks = input_buffer_brams(stage, cfg, quant)
    bias_fifo_blocks = 1 if stage.untied_bias else 0
    stream_bytes = stage_stream_bytes(stage, quant)

    return StageResources(
        dsp=dsp_usage(cfg, quant),
        bram=weight_blocks + input_blocks + bias_fifo_blocks,
        stream_bytes_per_frame=stream_bytes,
        weights_resident=resident,
    )
