"""Energy and power estimation for explored designs.

Untethered headsets live on battery power, and the paper motivates F-CAD
with exactly those "limited computation, memory, and power budgets". This
model assigns representative per-operation energies (16-nm-class FPGA
fabric) to the three activity sources the resource model already tracks:

- MAC operations on DSP slices,
- on-chip buffer traffic (each MAC reads one weight and one activation),
- external memory traffic (the dominant per-byte cost, ~two orders of
  magnitude above SRAM).

Numbers are representative class constants (Horowitz, ISSCC'14 scaling to
a 16-nm FPGA), not measurements of a specific part — the *relative*
comparisons (devices, precisions, configurations) are what the model is
for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import PipelinePlan
from repro.perf.estimator import AcceleratorPerf
from repro.perf.resources import stage_stream_bytes
from repro.quant.schemes import QuantScheme
from repro.utils.tables import render_table

#: Energy per 8-bit MAC on a DSP slice, picojoules.
MAC_ENERGY_PJ_INT8 = 0.35
#: Energy per 16-bit MAC, picojoules.
MAC_ENERGY_PJ_INT16 = 1.1
#: On-chip (BRAM) access energy per bit, picojoules.
SRAM_ENERGY_PJ_PER_BIT = 0.012
#: External DDR energy per byte, picojoules.
DRAM_ENERGY_PJ_PER_BYTE = 120.0
#: Static power per allocated DSP slice, milliwatts.
DSP_STATIC_MW = 0.08
#: Static power per allocated BRAM18K block, milliwatts.
BRAM_STATIC_MW = 0.05


def _mac_energy_pj(quant: QuantScheme) -> float:
    if quant.weight_bits <= 8 and quant.activation_bits <= 8:
        return MAC_ENERGY_PJ_INT8
    return MAC_ENERGY_PJ_INT16


@dataclass(frozen=True)
class BranchEnergy:
    """Per-frame energy of one branch pipeline."""

    index: int
    compute_mj: float
    sram_mj: float
    dram_mj: float

    @property
    def total_mj(self) -> float:
        return self.compute_mj + self.sram_mj + self.dram_mj


@dataclass(frozen=True)
class EnergyReport:
    """Energy per frame and power at the achieved frame rate."""

    branches: tuple[BranchEnergy, ...]
    static_w: float
    fps: float

    @property
    def dynamic_mj_per_frame(self) -> float:
        return sum(b.total_mj for b in self.branches)

    @property
    def dynamic_w(self) -> float:
        return self.dynamic_mj_per_frame * 1e-3 * self.fps

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w

    @property
    def fps_per_watt(self) -> float:
        return self.fps / self.total_w if self.total_w > 0 else 0.0

    def render(self) -> str:
        rows = []
        for branch in self.branches:
            rows.append(
                [
                    f"Br.{branch.index + 1}",
                    f"{branch.compute_mj:.2f}",
                    f"{branch.sram_mj:.2f}",
                    f"{branch.dram_mj:.2f}",
                    f"{branch.total_mj:.2f}",
                ]
            )
        rows.append(
            [
                "total",
                "-",
                "-",
                "-",
                f"{self.dynamic_mj_per_frame:.2f}",
            ]
        )
        table = render_table(
            ["branch", "compute mJ", "SRAM mJ", "DRAM mJ", "total mJ"],
            rows,
            title="Energy per decoded frame",
        )
        return (
            table
            + f"\nat {self.fps:.1f} FPS: {self.dynamic_w:.2f} W dynamic + "
            f"{self.static_w:.2f} W static = {self.total_w:.2f} W "
            f"({self.fps_per_watt:.1f} FPS/W)"
        )


def estimate_energy(
    plan: PipelinePlan,
    config: AcceleratorConfig,
    quant: QuantScheme,
    perf: AcceleratorPerf,
) -> EnergyReport:
    """Estimate per-frame energy and sustained power for a design."""
    config.validate_for(plan)
    mac_pj = _mac_energy_pj(quant)
    bits_per_mac = quant.weight_bits + quant.activation_bits

    branches = []
    for pipeline in plan.branches:
        macs = sum(s.stage.macs for s in pipeline.stages)
        compute_pj = macs * mac_pj
        sram_pj = macs * bits_per_mac * SRAM_ENERGY_PJ_PER_BIT
        dram_bytes = sum(
            stage_stream_bytes(s.stage, quant) for s in pipeline.stages
        )
        dram_bytes += quant.activation_bytes(
            sum(s.stage.external_input_elements for s in pipeline.stages)
        )
        dram_bytes += quant.activation_bytes(
            pipeline.stages[-1].stage.output_elements
        )
        dram_pj = dram_bytes * DRAM_ENERGY_PJ_PER_BYTE
        branches.append(
            BranchEnergy(
                index=pipeline.index,
                compute_mj=compute_pj * 1e-9,
                sram_mj=sram_pj * 1e-9,
                dram_mj=dram_pj * 1e-9,
            )
        )

    static_w = (
        perf.total_dsp * DSP_STATIC_MW + perf.total_bram * BRAM_STATIC_MW
    ) * 1e-3
    return EnergyReport(
        branches=tuple(branches), static_w=static_w, fps=perf.fps
    )
