"""Whole-accelerator performance estimation.

Combines Eq. 4 latencies, Eq. 5 throughput, Eq. 3 efficiency and the
resource models into one report the DSE engine (and the experiment
harnesses) consume. Branch resources include the ``batch_size`` pipeline
replicas; branch FPS is the aggregate over replicas, matching how Table IV
reports per-branch DSP/BRAM/FPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig, BranchConfig
from repro.construction.reorg import BranchPipeline, PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.perf.analytical import branch_fps, efficiency, stage_latency_cycles
from repro.perf.resources import StageResources, stage_resources
from repro.quant.schemes import QuantScheme
from repro.utils.units import GIGA


@dataclass(frozen=True)
class StagePerf:
    """Latency and resources of one configured stage (one replica)."""

    name: str
    latency_cycles: int
    resources: StageResources


@dataclass(frozen=True)
class BranchPerf:
    """Performance of one branch pipeline including its replicas."""

    index: int
    output_name: str
    batch_size: int
    fps: float
    efficiency: float
    dsp: int
    bram: int
    bandwidth_gbps: float
    gops: float
    bottleneck_stage: str
    stages: tuple[StagePerf, ...]

    @property
    def latency_ms(self) -> float:
        """Latency of the slowest stage, i.e. the pipeline beat, in ms."""
        if self.fps == 0.0:
            return float("inf")
        return 1000.0 * self.batch_size / self.fps


@dataclass(frozen=True)
class AcceleratorPerf:
    """Performance of the full multi-branch accelerator."""

    branches: tuple[BranchPerf, ...]
    frequency_mhz: float
    quant_name: str

    @property
    def fps(self) -> float:
        """Decoder frame rate: the slowest branch bounds the avatar rate."""
        return min((b.fps for b in self.branches), default=0.0)

    @property
    def total_dsp(self) -> int:
        return sum(b.dsp for b in self.branches)

    @property
    def total_bram(self) -> int:
        return sum(b.bram for b in self.branches)

    @property
    def total_bandwidth_gbps(self) -> float:
        return sum(b.bandwidth_gbps for b in self.branches)

    @property
    def total_gops(self) -> float:
        return sum(b.gops for b in self.branches)

    @property
    def overall_efficiency(self) -> float:
        if self.total_dsp == 0:
            return 0.0
        beta_peak = sum(
            b.efficiency * b.dsp for b in self.branches
        )
        return beta_peak / self.total_dsp

    def fits(self, budget: ResourceBudget) -> bool:
        return budget.fits(
            self.total_dsp, self.total_bram, self.total_bandwidth_gbps
        )


def evaluate_branch(
    pipeline: BranchPipeline,
    branch_cfg: BranchConfig,
    quant: QuantScheme,
    frequency_mhz: float,
) -> BranchPerf:
    """Evaluate one branch pipeline under one configuration."""
    stage_perfs: list[StagePerf] = []
    stream_bytes = 0.0
    io_bytes = 0.0
    for planned, cfg in zip(pipeline.stages, branch_cfg.stages):
        stage = planned.stage
        perf = StagePerf(
            name=stage.name,
            latency_cycles=stage_latency_cycles(stage, cfg),
            resources=stage_resources(stage, cfg, quant),
        )
        stage_perfs.append(perf)
        stream_bytes += perf.resources.stream_bytes_per_frame
        io_bytes += quant.activation_bytes(stage.external_input_elements)
    io_bytes += quant.activation_bytes(pipeline.stages[-1].stage.output_elements)

    latencies = [p.latency_cycles for p in stage_perfs]
    fps = branch_fps(latencies, branch_cfg.batch_size, frequency_mhz)
    gops_per_frame = pipeline.ops / GIGA
    gops_per_second = gops_per_frame * fps
    dsp = sum(p.resources.dsp for p in stage_perfs) * branch_cfg.batch_size
    bram = sum(p.resources.bram for p in stage_perfs) * branch_cfg.batch_size
    bandwidth_gbps = (stream_bytes + io_bytes) * fps / 1e9
    bottleneck = (
        stage_perfs[latencies.index(max(latencies))].name if latencies else ""
    )
    return BranchPerf(
        index=pipeline.index,
        output_name=pipeline.output_name,
        batch_size=branch_cfg.batch_size,
        fps=fps,
        efficiency=efficiency(gops_per_second, quant.beta, dsp, frequency_mhz),
        dsp=dsp,
        bram=bram,
        bandwidth_gbps=bandwidth_gbps,
        gops=gops_per_second,
        bottleneck_stage=bottleneck,
        stages=tuple(stage_perfs),
    )


def evaluate(
    plan: PipelinePlan,
    config: AcceleratorConfig,
    quant: QuantScheme,
    frequency_mhz: float = 200.0,
) -> AcceleratorPerf:
    """Evaluate a full accelerator configuration against a pipeline plan."""
    config.validate_for(plan)
    branches = tuple(
        evaluate_branch(pipeline, branch_cfg, quant, frequency_mhz)
        for pipeline, branch_cfg in zip(plan.branches, config.branches)
    )
    return AcceleratorPerf(
        branches=branches,
        frequency_mhz=frequency_mhz,
        quant_name=quant.name,
    )
