"""Serving replicas on a persistent remote host.

:class:`RemoteTransport` implements the
:class:`~repro.serving.transport.ReplicaTransport` protocol against a
long-lived replica server (:func:`serve_replicas`) reached by
``host:port`` — the fleet counterpart of ``SocketTransport``'s child
subprocess. Differences that matter:

- **The server outlives connections.** State is keyed by a *session id*
  the client picks at ``open``: per-replica warm-window state plus a
  reply cache keyed by message id. A client that reconnects mid-session
  resumes the same session and *resubmits* its in-flight request; if the
  server already computed it, the cached reply is returned — so a forced
  disconnect/reconnect yields a bit-identical serving report.
- **Connect/retry with exponential backoff + jitter.** Transient network
  failures retry up to ``max_retries`` times; only then does ``decode``
  raise :class:`RemoteReplicaError`, which the scheduler turns into
  errored futures — the session fails loudly, it never hangs.
- **Health is observable.** ``transport.health`` walks
  ``idle -> connected -> reconnecting -> connected`` (or ``failed``) and
  ``transport.reconnects`` counts successful re-dials; both surface into
  :class:`~repro.serving.slo.GroupReport` / ``ServingReport``.

``decode`` stays synchronous inside the coroutine (no awaits while the
wire is in flight), the same rule ``SocketTransport`` follows, so
virtual-clock sessions stay deterministic.
"""

from __future__ import annotations

import random
import secrets
import socket
import threading
import time
from collections import OrderedDict

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.protocol import (
    MessageIds,
    ProtocolError,
    client_handshake,
    server_handshake,
)
from repro.dist.wire import LineSocket, WireClosed
from repro.serving.replica import Replica, ReplicaPool
from repro.sim.runner import FrameLatencyProfile


class RemoteReplicaError(RuntimeError):
    """A remote replica is unreachable past the retry budget."""


def profile_to_wire(profile: FrameLatencyProfile) -> dict:
    return {
        "finish_ms": list(profile.finish_ms),
        "first_frame_ms": profile.first_frame_ms,
        "steady_interval_ms": profile.steady_interval_ms,
        "frequency_mhz": profile.frequency_mhz,
    }


def profile_from_wire(raw: dict) -> FrameLatencyProfile:
    return FrameLatencyProfile(
        finish_ms=tuple(raw["finish_ms"]),
        first_frame_ms=raw["first_frame_ms"],
        steady_interval_ms=raw["steady_interval_ms"],
        frequency_mhz=raw["frequency_mhz"],
    )


class RemoteTransport:
    """Replicas served by a persistent ``host:port`` replica server."""

    name = "remote"

    def __init__(
        self,
        host: str,
        port: int,
        token: str = "",
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        max_resubmits: int = 8,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.max_resubmits = max_resubmits
        #: ``idle`` -> ``connected`` -> ``reconnecting`` -> ... ->
        #: ``closed`` (clean) or ``failed`` (retry budget exhausted).
        self.health = "idle"
        #: Successful re-dials after a dropped connection.
        self.reconnects = 0
        self._rng = rng or random.Random(0)
        self._ids = MessageIds()
        self._conn: LineSocket | None = None
        self._session_id: str | None = None
        self._pool: ReplicaPool | None = None

    # -- connection management ------------------------------------------
    def _dial(self) -> LineSocket:
        """Connect + authenticate + resume the session, with backoff."""
        assert self._pool is not None and self._session_id is not None
        last_error: Exception | None = None
        for attempt in range(self.max_retries):
            if attempt:
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)),
                    self.backoff_max_s,
                )
                time.sleep(delay * (1.0 + 0.25 * self._rng.random()))
            try:
                conn = LineSocket.connect(
                    self.host, self.port, timeout_s=self.timeout_s
                )
            except OSError as exc:
                last_error = exc
                continue
            try:
                client_handshake(
                    conn,
                    self.token,
                    role="replica-client",
                    extra={
                        "session": self._session_id,
                        "profile": profile_to_wire(self._pool.profile),
                        "max_batch": self._pool.max_batch,
                    },
                )
                return conn
            except (OSError, ProtocolError, ValueError) as exc:
                conn.close()
                if isinstance(exc, ProtocolError):
                    raise  # auth/version refusals will not heal on retry
                last_error = exc
        self.health = "failed"
        raise RemoteReplicaError(
            f"replica server {self.host}:{self.port} unreachable after "
            f"{self.max_retries} attempts: {last_error}"
        )

    def open(self, pool: ReplicaPool) -> None:
        self._pool = pool
        self._session_id = secrets.token_hex(8)
        self._conn = self._dial()
        self.health = "connected"

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send({"type": "close"})
            except (OSError, ValueError):
                pass
            self._conn.close()
            self._conn = None
        if self.health != "failed":
            self.health = "closed"

    def ping(self) -> bool:
        """Liveness probe outside the decode path."""
        if self._conn is None:
            return False
        try:
            reply = self._conn.request(
                {"type": "ping", "id": self._ids.next()}
            )
            return reply.get("type") == "pong"
        except (OSError, ValueError, WireClosed):
            return False

    # -- the transport protocol -----------------------------------------
    async def decode(
        self, replica: Replica, start_ms: float, batch: int
    ) -> tuple[float, ...]:
        # Synchronous round-trip (no awaits): the virtual clock cannot
        # advance while the request is on the wire.
        assert self._conn is not None, "transport not opened"
        message = {
            "type": "decode",
            "id": self._ids.next(),
            "replica": replica.replica_id,
            "start_ms": start_ms,
            "batch": batch,
        }
        for _ in range(self.max_resubmits):
            try:
                reply = self._conn.request(message)
            except (OSError, ValueError, WireClosed):
                # Dropped connection: re-dial and resubmit the same
                # message id — the server's reply cache makes it
                # idempotent. _dial raises RemoteReplicaError once the
                # retry budget is spent, which fails the batch loudly.
                self.health = "reconnecting"
                self._conn.close()
                self._conn = self._dial()
                self.health = "connected"
                self.reconnects += 1
                continue
            if reply.get("type") == "error":
                raise RemoteReplicaError(
                    f"replica server: {reply.get('error')}"
                )
            finishes = tuple(reply["finish_ms"])
            replica.record_service(start_ms, finishes)
            return finishes
        self.health = "failed"
        raise RemoteReplicaError(
            f"decode resubmitted {self.max_resubmits} times without an "
            f"answer from {self.host}:{self.port}"
        )


# ---------------------------------------------------------------------------
# the server side (repro fleet replicas)
# ---------------------------------------------------------------------------
class _Session:
    """Authoritative per-session replica state + reply cache."""

    #: Replies kept for resubmission after reconnects. A window this
    #: deep outlasts any plausible in-flight set (one per replica).
    REPLY_CACHE = 4096

    def __init__(self, profile: FrameLatencyProfile, max_batch: int) -> None:
        self.profile = profile
        self.max_batch = max_batch
        self.replicas: dict[int, Replica] = {}
        self.replies: OrderedDict[int, list[float]] = OrderedDict()

    def decode(self, message: dict) -> list[float]:
        mid = int(message["id"])
        cached = self.replies.get(mid)
        if cached is not None:  # resubmission after a reconnect
            return cached
        replica_id = int(message["replica"])
        replica = self.replicas.get(replica_id)
        if replica is None:
            replica = self.replicas[replica_id] = Replica(
                replica_id=replica_id,
                latency=self.profile,
                max_batch=self.max_batch,
            )
        finishes = list(
            replica.service_times(message["start_ms"], int(message["batch"]))
        )
        self.replies[mid] = finishes
        while len(self.replies) > self.REPLY_CACHE:
            self.replies.popitem(last=False)
        return finishes


def serve_replicas(
    host: str = "127.0.0.1",
    port: int = 0,
    token: str = "",
    fault: FaultInjector | None = None,
    ready: "callable | None" = None,
    stop: threading.Event | None = None,
    announce: bool = True,
) -> int:
    """Serve replica sessions until ``stop`` is set (or the fault kills us).

    Accepts any number of sequential/concurrent client connections;
    session state survives disconnects, which is what makes client-side
    resubmission idempotent. Prints the bound port on stdout (CLI
    contract, same as ``SocketTransport``'s child server) and also hands
    it to ``ready`` when given (thread-friendly for tests).
    """
    fault = fault or FaultInjector(FaultPlan.from_env())
    stop = stop or threading.Event()
    listener = socket.create_server((host, port))
    listener.settimeout(0.2)
    bound_port = listener.getsockname()[1]
    if announce:
        print(bound_port, flush=True)
    if ready is not None:
        ready(bound_port)
    sessions: dict[str, _Session] = {}
    lock = threading.Lock()
    live_conns: list[LineSocket] = []

    def handle(raw: socket.socket) -> None:
        conn = LineSocket(raw)
        with lock:
            live_conns.append(conn)
        try:
            hello = server_handshake(conn, token)
            session_key = str(hello.get("session", ""))
            with lock:
                session = sessions.get(session_key)
                if session is None:
                    session = sessions[session_key] = _Session(
                        profile_from_wire(hello["profile"]),
                        int(hello["max_batch"]),
                    )
            while not stop.is_set():
                message = conn.recv()
                if message is None or message.get("type") == "close":
                    break
                kind = message.get("type")
                if kind == "ping":
                    conn.send({"type": "pong", "id": message.get("id")})
                    continue
                if kind != "decode":
                    conn.send(
                        {"type": "error", "error": f"bad request: {kind!r}"}
                    )
                    continue
                with lock:
                    finishes = session.decode(message)
                    verdict = fault.after_decode()
                if verdict == "kill":
                    stop.set()
                    break  # reply never sent; listener closes too
                if verdict == "drop-conn":
                    break  # computed + cached, but the reply is lost
                conn.send({"type": "result", "id": message["id"], "finish_ms": finishes})
        except (ProtocolError, OSError, ValueError, KeyError):
            pass  # bad client or torn connection: drop it, keep serving
        finally:
            conn.close()
            with lock:
                if conn in live_conns:
                    live_conns.remove(conn)

    try:
        while not stop.is_set():
            try:
                raw, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=handle, args=(raw,), daemon=True).start()
    finally:
        listener.close()
        with lock:
            for conn in list(live_conns):
                conn.close()
    return 0


__all__ = [
    "RemoteReplicaError",
    "RemoteTransport",
    "profile_from_wire",
    "profile_to_wire",
    "serve_replicas",
]
