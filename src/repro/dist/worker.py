"""The fleet worker: lease a shard, solve it, ship the result home.

A :class:`FleetWorker` keeps two connections to the coordinator:

- the **main** connection runs the lease loop — request a lease, solve
  the case with a :class:`~repro.dse.cache.DeltaEvalCache` over a local
  base warmed by the coordinator's cache log, submit the result plus the
  delta entries;
- the **heartbeat** connection pings on a fixed interval from its own
  thread, so a minutes-long Algorithm-2 solve cannot be mistaken for a
  dead worker.

Both connections reconnect with exponential backoff + jitter. If the
main connection drops after a shard was solved but before the submission
was acknowledged, the worker resubmits after reconnecting — the
coordinator's first-writer-wins merge makes that idempotent. A worker
that cannot reach the coordinator past its retry budget gives up with an
error; it never hangs.

``spawned_main`` is the entry point coordinator-spawned subprocesses run
(connection target, token, and fault plan arrive via environment
variables — see :data:`repro.dist.faults.FAULT_ENV`).
"""

from __future__ import annotations

import os
import random
import time

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.protocol import ProtocolError, client_handshake
from repro.dist.wire import LineSocket, WireClosed, pack_blob, unpack_blob
from repro.dse.cache import DeltaEvalCache, LocalEvalCache


class FleetWorker:
    """One worker process (or thread, in tests) serving a coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        token: str = "",
        fault: FaultInjector | None = None,
        connect_retries: int = 8,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.fault = fault or FaultInjector(FaultPlan.from_env())
        self.connect_retries = connect_retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._rng = rng or random.Random(0)
        self._conn: LineSocket | None = None
        self._heartbeat: "_HeartbeatThread | None" = None
        self.worker_id: int | None = None
        #: Shards this worker solved (observability + test assertions).
        self.solved: list[int] = []

    # -- connection management ------------------------------------------
    def _dial(self, role: str, extra: dict | None = None) -> LineSocket:
        last_error: Exception | None = None
        for attempt in range(self.connect_retries):
            if attempt:
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)), self.backoff_max_s
                )
                time.sleep(delay * (1.0 + 0.25 * self._rng.random()))
            try:
                conn = LineSocket.connect(self.host, self.port)
            except OSError as exc:
                last_error = exc
                continue
            try:
                client_handshake(conn, self.token, role=role, extra=extra)
                return conn
            except (OSError, ProtocolError, ValueError) as exc:
                conn.close()
                if isinstance(exc, ProtocolError):
                    raise  # bad token / wrong version: retrying cannot help
                last_error = exc
        raise RuntimeError(
            f"coordinator {self.host}:{self.port} unreachable after "
            f"{self.connect_retries} attempts: {last_error}"
        )

    def _connect(self) -> None:
        """(Re)establish the main connection, register, start heartbeats."""
        self._disconnect()
        self._conn = self._dial("worker")
        registered = self._conn.request({"type": "register"})
        if registered.get("type") != "registered":
            raise RuntimeError(f"registration refused: {registered!r}")
        self.worker_id = int(registered["worker"])
        interval = float(registered.get("heartbeat_interval_s", 0.5))
        self._heartbeat = _HeartbeatThread(self, interval)
        self._heartbeat.start()

    def _disconnect(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.stop()
            self._heartbeat = None
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- the lease loop ---------------------------------------------------
    def run(self) -> int:
        """Serve until the coordinator reports the sweep drained."""
        base = LocalEvalCache()
        cache_seq = 0
        pending_submission: dict | None = None
        failures = 0
        ever_connected = False
        try:
            while True:
                try:
                    if self._conn is None:
                        self._connect()
                        ever_connected = True
                    assert self._conn is not None
                    if pending_submission is not None:
                        pending_submission["worker"] = self.worker_id
                        self._conn.request(pending_submission)
                        pending_submission = None
                    reply = self._conn.request(
                        {
                            "type": "lease_request",
                            "worker": self.worker_id,
                            "cache_seq": cache_seq,
                        }
                    )
                    failures = 0
                except (OSError, WireClosed, ValueError, RuntimeError):
                    self._disconnect()
                    failures += 1
                    if failures >= 2 and ever_connected and pending_submission is None:
                        # The coordinator we once served is gone and we
                        # owe it nothing: the sweep drained (or the run
                        # was abandoned). Either way, done here.
                        return 0
                    if failures > self.connect_retries:
                        raise
                    continue
                kind = reply.get("type")
                if kind == "drained":
                    return 0
                if kind == "wait":
                    time.sleep(float(reply.get("poll_s", 0.1)))
                    continue
                if kind != "lease":
                    raise RuntimeError(f"unexpected coordinator reply: {reply!r}")
                for blob in reply.get("cache", ()):
                    key, value = unpack_blob(blob)
                    if base.get(key) is None:
                        base.put(key, value)
                cache_seq = int(reply.get("cache_seq", cache_seq))
                if self.fault.should_die_on_lease():
                    # Simulated crash: vanish without submitting. The
                    # coordinator sees EOF and re-leases the shard.
                    self._disconnect()
                    return 1
                shard = int(reply["shard"])
                case = unpack_blob(reply["case"])
                delta = DeltaEvalCache(base)
                result = case.run(delta)
                entries = delta.new_entries()
                for key, value in entries:
                    if base.get(key) is None:
                        base.put(key, value)
                self.solved.append(shard)
                pending_submission = {
                    "type": "result",
                    "worker": self.worker_id,
                    "shard": shard,
                    "result": pack_blob(result),
                    "cache": [pack_blob(entry) for entry in entries],
                }
        finally:
            if self._conn is not None:
                try:
                    self._conn.send({"type": "close"})
                except (OSError, ValueError):
                    pass
            self._disconnect()


class _HeartbeatThread:
    """Pings the coordinator from a dedicated connection."""

    def __init__(self, worker: FleetWorker, interval_s: float) -> None:
        import threading

        self._worker = worker
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        try:
            conn = self._worker._dial(
                "heartbeat", extra={"worker": self._worker.worker_id}
            )
        except (RuntimeError, ProtocolError, OSError):
            return  # no heartbeats: the lease deadline takes over
        try:
            while not self._stop.wait(self._interval_s):
                reply = conn.request(
                    {"type": "ping", "worker": self._worker.worker_id}
                )
                if reply.get("type") != "pong":
                    return
        except (OSError, ValueError, WireClosed):
            return  # main loop notices and reconnects; we just exit
        finally:
            conn.close()


def run_worker(
    host: str,
    port: int,
    token: str = "",
    fault: FaultInjector | None = None,
) -> int:
    """Convenience wrapper: build a :class:`FleetWorker` and run it."""
    return FleetWorker(host, port, token=token, fault=fault).run()


def spawned_main() -> int:
    """Entry point for coordinator-spawned worker subprocesses."""
    target = os.environ.get("REPRO_FLEET_CONNECT", "")
    host, _, port_text = target.partition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(f"bad REPRO_FLEET_CONNECT: {target!r}")
    token = os.environ.get("REPRO_FLEET_TOKEN", "")
    return run_worker(host, int(port_text), token=token)


__all__ = ["FleetWorker", "run_worker", "spawned_main"]
