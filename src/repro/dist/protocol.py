"""Versioned handshake + auth for every fleet connection.

Connections open with a three-step exchange over the line-JSON wire
(:mod:`repro.dist.wire`):

1. client -> ``{"type": "hello", "version": V, "role": R, ...}``
2. server -> ``{"type": "challenge", "nonce": N}``
3. client -> ``{"type": "auth", "mac": HMAC_SHA256(token, N || V)}``
4. server -> ``{"type": "welcome", ...}`` or ``{"type": "error", ...}``

The shared secret never crosses the wire — only an HMAC over the
server's fresh nonce, so a captured handshake cannot be replayed against
a new connection. Version mismatches and bad MACs are rejected *before*
any payload is exchanged (payloads contain pickles, which must never be
unpickled from an unauthenticated peer).

Requests carry a client-assigned ``id`` (monotonic per connection,
:class:`MessageIds`); servers that support resumption cache replies by id
so a resubmitted request after a reconnect is idempotent. Liveness uses
``{"type": "ping"}`` / ``{"type": "pong"}`` heartbeats.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import secrets

from repro.dist.wire import LineSocket

#: Bumped whenever a message shape changes incompatibly. Both ends must
#: match; the server refuses mismatched clients during the handshake.
PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """The peer spoke the protocol wrong (or refused us)."""


class AuthError(ProtocolError):
    """The shared-secret handshake failed."""


class MessageIds:
    """Monotonic message-id source, one per connection."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next(self) -> int:
        return next(self._counter)


def auth_mac(token: str, nonce: str) -> str:
    material = f"{nonce}|{PROTOCOL_VERSION}".encode()
    return hmac.new(token.encode(), material, hashlib.sha256).hexdigest()


def client_handshake(
    conn: LineSocket,
    token: str,
    role: str,
    extra: dict | None = None,
) -> dict:
    """Run the client side of the handshake; returns the welcome message."""
    hello = {"type": "hello", "version": PROTOCOL_VERSION, "role": role}
    if extra:
        hello.update(extra)
    conn.send(hello)
    challenge = conn.recv()
    if challenge is None:
        raise ProtocolError("server closed the connection during handshake")
    if challenge.get("type") == "error":
        raise ProtocolError(f"server refused: {challenge.get('error')}")
    if challenge.get("type") != "challenge":
        raise ProtocolError(f"expected challenge, got {challenge!r}")
    conn.send({"type": "auth", "mac": auth_mac(token, challenge["nonce"])})
    welcome = conn.recv()
    if welcome is None:
        raise AuthError("server closed the connection after auth (bad token?)")
    if welcome.get("type") == "error":
        raise AuthError(f"auth rejected: {welcome.get('error')}")
    if welcome.get("type") != "welcome":
        raise ProtocolError(f"expected welcome, got {welcome!r}")
    return welcome


def server_handshake(
    conn: LineSocket, token: str, welcome_extra: dict | None = None
) -> dict:
    """Run the server side; returns the client's hello (with its role).

    Raises :class:`AuthError` / :class:`ProtocolError` after sending the
    peer a ``{"type": "error"}`` explanation — callers just close.
    """
    hello = conn.recv()
    if hello is None:
        raise ProtocolError("client vanished before hello")
    if hello.get("type") != "hello":
        conn.send({"type": "error", "error": "expected hello"})
        raise ProtocolError(f"expected hello, got {hello!r}")
    if hello.get("version") != PROTOCOL_VERSION:
        conn.send(
            {
                "type": "error",
                "error": (
                    f"protocol version mismatch: server speaks "
                    f"{PROTOCOL_VERSION}, client spoke {hello.get('version')}"
                ),
            }
        )
        raise ProtocolError("protocol version mismatch")
    nonce = secrets.token_hex(16)
    conn.send({"type": "challenge", "nonce": nonce})
    auth = conn.recv()
    if auth is None or auth.get("type") != "auth":
        conn.send({"type": "error", "error": "expected auth"})
        raise AuthError("client did not answer the challenge")
    if not hmac.compare_digest(auth.get("mac", ""), auth_mac(token, nonce)):
        conn.send({"type": "error", "error": "bad auth token"})
        raise AuthError("bad auth token")
    welcome = {"type": "welcome", "version": PROTOCOL_VERSION}
    if welcome_extra:
        welcome.update(welcome_extra)
    conn.send(welcome)
    return hello


__all__ = [
    "PROTOCOL_VERSION",
    "AuthError",
    "MessageIds",
    "ProtocolError",
    "auth_mac",
    "client_handshake",
    "server_handshake",
]
