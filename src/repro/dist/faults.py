"""Compatibility alias — fault injection moved to :mod:`repro.faults`.

PR 7 grew deterministic fault injection for the distributed runtime
here; the serving chaos layer now shares the same machinery, so the
module was promoted to :mod:`repro.faults`. Import from there; this
alias keeps older imports (and external scripts) working.
"""

from __future__ import annotations

from repro.faults import FAULT_ENV, FaultInjector, FaultPlan

__all__ = ["FAULT_ENV", "FaultInjector", "FaultPlan"]
