"""The repo's one wire format: newline-delimited JSON messages.

Every socket in the codebase — the ``SocketTransport`` replica
subprocess, the fleet coordinator/worker control plane, and the remote
replica server — frames traffic the same way: one JSON object per line,
UTF-8, ``\\n``-terminated. ``json`` emits shortest-repr floats, so every
float round-trips *exactly*; that is what lets a socket-served session
compute bit-identical finish times to the in-process path.

Payloads that are not JSON-shaped (eval specs, :class:`DseResult`\\ s,
cache entries) ride inside messages as base64-encoded pickles via
:func:`pack_blob` / :func:`unpack_blob` — opaque to the framing, exact by
construction.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.faults import FaultInjector


class WireClosed(ConnectionError):
    """The peer closed the connection (EOF while a reply was expected)."""


def encode_message(message: dict) -> str:
    """One message -> one line (no trailing newline)."""
    return json.dumps(message, separators=(",", ":"))


def decode_message(line: str) -> dict:
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"wire message must be a JSON object: {line!r}")
    return message


def pack_blob(obj: Any) -> str:
    """Arbitrary picklable object -> ASCII-safe string field."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_blob(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class LineSocket:
    """A connected socket speaking newline-delimited JSON messages.

    Wraps the raw socket with buffered text files and exposes
    ``send(dict)`` / ``recv() -> dict | None`` (``None`` on EOF). An
    optional :class:`~repro.dist.faults.FaultInjector` can drop or delay
    outbound messages — the seam the fault-injection tests use.
    """

    def __init__(
        self, sock: socket.socket, fault: "FaultInjector | None" = None
    ) -> None:
        self._sock = sock
        self._rfile = sock.makefile("r", encoding="utf-8")
        self._wfile = sock.makefile("w", encoding="utf-8")
        self.fault = fault

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        fault: "FaultInjector | None" = None,
    ) -> "LineSocket":
        return cls(
            socket.create_connection((host, port), timeout=timeout_s),
            fault=fault,
        )

    def send(self, message: dict) -> None:
        if self.fault is not None and not self.fault.before_send(message):
            return  # injected drop: the line never hits the wire
        self._wfile.write(encode_message(message) + "\n")
        self._wfile.flush()

    def recv(self) -> dict | None:
        """Next message, or ``None`` once the peer has closed."""
        line = self._rfile.readline()
        if not line:
            return None
        return decode_message(line)

    def request(self, message: dict) -> dict:
        """``send`` then ``recv``, raising :class:`WireClosed` on EOF."""
        self.send(message)
        reply = self.recv()
        if reply is None:
            raise WireClosed("peer closed the connection mid-request")
        return reply

    def close(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            try:
                handle.close()
            except OSError:
                pass


__all__ = [
    "LineSocket",
    "WireClosed",
    "decode_message",
    "encode_message",
    "pack_blob",
    "unpack_blob",
]
