"""Distributed fleet runtime shared by DSE sweeps and serving clusters.

One wire format, one auth handshake, one fault model — used by three
clients:

- :mod:`repro.dist.wire` / :mod:`repro.dist.protocol` — newline-delimited
  JSON framing with message ids, a shared-secret HMAC handshake, and
  heartbeat/ping messages. ``SocketTransport`` speaks the same framing.
- :mod:`repro.dist.coordinator` / :mod:`repro.dist.worker` — the sweep
  control plane: a coordinator leases sweep shards to workers with
  deadlines, streams eval-cache deltas between them, re-leases shards
  whose worker died, and checkpoints progress for resumable runs.
- :mod:`repro.dist.remote_transport` — a
  :class:`~repro.serving.transport.ReplicaTransport` against a persistent
  remote replica server, with reconnection, request resubmission, and
  per-replica health surfaced into the serving report.

See ``docs/distributed.md`` for topology, lease/heartbeat semantics, and
the determinism guarantees.
"""

from repro.dist.coordinator import FleetSpec, SweepCoordinator, run_fleet_sweep
from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.protocol import PROTOCOL_VERSION, AuthError, ProtocolError
from repro.dist.remote_transport import (
    RemoteReplicaError,
    RemoteTransport,
    serve_replicas,
)
from repro.dist.wire import LineSocket, WireClosed, pack_blob, unpack_blob
from repro.dist.worker import FleetWorker, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "AuthError",
    "FaultInjector",
    "FaultPlan",
    "FleetSpec",
    "FleetWorker",
    "LineSocket",
    "ProtocolError",
    "RemoteReplicaError",
    "RemoteTransport",
    "SweepCoordinator",
    "WireClosed",
    "pack_blob",
    "unpack_blob",
    "run_fleet_sweep",
    "run_worker",
    "serve_replicas",
]
