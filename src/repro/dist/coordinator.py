"""The sweep control plane: lease shards to workers, merge deterministically.

A :class:`SweepCoordinator` owns a sweep — a list of :class:`SweepCase`
shards, each a full DSE search that is a *pure function* of its fields —
and serves them to fleet workers over the line-JSON wire:

- **Leases with deadlines.** A worker asks for work, gets one shard and
  a lease. Heartbeats (on a separate connection, so a long Algorithm-2
  solve never starves them) renew the lease; a missed deadline or a
  dropped connection releases the shard back to the pending queue, where
  the next idle worker picks it up. Losing a worker loses time, never
  results.
- **Live cache deltas.** Workers ship their
  :class:`~repro.dse.cache.DeltaEvalCache` entries home with each
  result; the coordinator appends them to a log and forwards unseen
  entries with every lease, so all workers warm each other exactly the
  way ``search_many`` warms successive cases in-process.
- **Deterministic merge.** Results are keyed by *shard index* and
  reassembled in case order, never arrival order. Because each shard is
  a pure function of its case, re-leased shards, duplicate submissions
  (first writer wins — later copies are bit-identical by construction),
  and cache warmth cannot change any result: a fleet sweep is
  bit-identical to ``search_many`` serially at the same seed.
- **Checkpoints.** Each completed shard is appended to an atomically
  replaced checkpoint file (temp + ``os.replace``); a restarted
  coordinator with the same sweep fingerprint resumes from it without
  re-solving.

:func:`run_fleet_sweep` is the high-level entry —
``DseEngine.search_many(fleet=...)`` delegates here.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.dist.faults import FAULT_ENV
from repro.dist.protocol import ProtocolError, server_handshake
from repro.dist.wire import LineSocket, pack_blob, unpack_blob
from repro.utils.rng import seed_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dse.cache import EvalCache
    from repro.dse.engine import DseEngine
    from repro.dse.result import DseResult


@dataclass(frozen=True)
class SweepCase:
    """One shard: everything a worker needs to solve it, picklable.

    ``objective`` / ``rerank_oracle`` are *resolved* instances so the
    worker runs exactly the configuration the dedup key was computed
    from. The search runs with ``workers=1`` on the worker — fleet
    parallelism is across shards, not within them — which keeps each
    shard on the serial code path whose determinism is already gated.
    """

    engine: "DseEngine"
    iterations: int
    population: int
    seed: int | None
    heuristic_seed: bool
    objective: object
    rerank_oracle: object | None
    rerank_top_k: int | None

    def key(self) -> tuple:
        """Mirror of the ``search_many`` dedup key."""
        return (
            self.engine.spec.digest,
            self.iterations,
            self.population,
            seed_fingerprint(self.seed),
            self.heuristic_seed,
            self.objective.key,
            self.rerank_oracle.key if self.rerank_oracle is not None else None,
            self.rerank_top_k if self.rerank_oracle is not None else None,
        )

    def run(self, cache) -> "DseResult":
        return self.engine.search(
            iterations=self.iterations,
            population=self.population,
            seed=self.seed,
            heuristic_seed=self.heuristic_seed,
            workers=1,
            cache=cache,
            objective=self.objective,
            rerank_oracle=(
                self.rerank_oracle if self.rerank_oracle is not None else "none"
            ),
            rerank_top_k=self.rerank_top_k,
        )


@dataclass
class FleetSpec:
    """How to run a sweep as a fleet instead of in-process."""

    #: Local worker subprocesses the coordinator spawns for the run (0
    #: means workers join from outside — other machines, test threads).
    workers: int = 2
    host: str = "127.0.0.1"
    #: 0 picks a free port (read it back from ``SweepCoordinator.port``).
    port: int = 0
    #: Shared secret for the HMAC handshake ("" disables auth — loopback
    #: smoke runs only; anything remote should set one).
    token: str = ""
    #: A leased shard whose worker has not heartbeat for this long is
    #: declared orphaned and re-leased.
    lease_timeout_s: float = 15.0
    heartbeat_interval_s: float = 0.5
    #: How often the coordinator scans for orphaned leases. Worst-case
    #: death detection is ``lease_timeout_s + monitor_interval_s`` after
    #: the last heartbeat (see docs/distributed.md).
    monitor_interval_s: float = 0.25
    #: Checkpoint file for resumable coordinators (None = not persisted).
    checkpoint: str | Path | None = None
    #: Hard wall-time ceiling for the whole sweep.
    timeout_s: float = 600.0
    #: Fault spec per spawned-worker index (test hook; see
    #: :class:`~repro.dist.faults.FaultPlan`). Shorter than ``workers``
    #: means the remaining workers run clean.
    worker_faults: tuple[str, ...] = field(default=())


@dataclass
class _Lease:
    worker: int
    deadline: float


class SweepCoordinator:
    """Serves one sweep to a fleet of workers; see the module docstring."""

    def __init__(self, cases: Sequence[SweepCase], spec: FleetSpec) -> None:
        self.cases = list(cases)
        self.spec = spec
        self.fingerprint = hashlib.sha1(
            pickle.dumps([case.key() for case in self.cases])
        ).hexdigest()
        self.port: int | None = None
        self.stats: dict[str, int] = {
            "shards": len(self.cases),
            "leases": 0,
            "releases": 0,
            "workers": 0,
            "worker_deaths": 0,
            "duplicate_results": 0,
            "cache_entries": 0,
            "resumed": 0,
        }
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: deque[int] = deque(range(len(self.cases)))
        self._leases: dict[int, _Lease] = {}
        self._done: dict[int, str] = {}  # shard -> result blob
        self._last_beat: dict[int, float] = {}  # worker -> monotonic time
        self._cache_log: list[str] = []  # packed (key, value) blobs
        self._cache_keys: set = set()
        self._next_worker = 0
        self._live_workers = 0
        self._stop = threading.Event()
        self._load_checkpoint()

    # -- checkpointing ---------------------------------------------------
    def _load_checkpoint(self) -> None:
        path = self.spec.checkpoint
        if path is None or not Path(path).exists():
            return
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return  # unreadable checkpoint: start over, do not crash
        if payload.get("fingerprint") != self.fingerprint:
            return  # different sweep: ignore
        for shard_text, blob in payload.get("done", {}).items():
            shard = int(shard_text)
            if 0 <= shard < len(self.cases):
                self._done[shard] = blob
        self._pending = deque(
            i for i in range(len(self.cases)) if i not in self._done
        )
        self.stats["resumed"] = len(self._done)

    def _write_checkpoint_locked(self) -> None:
        path = self.spec.checkpoint
        if path is None:
            return
        path = Path(path)
        payload = {
            "version": 1,
            "fingerprint": self.fingerprint,
            "shards": len(self.cases),
            "done": {str(shard): blob for shard, blob in self._done.items()},
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)  # atomic: readers see old or new, never half

    # -- worker bookkeeping ---------------------------------------------
    def _release_worker_shards_locked(self, worker: int, why: str) -> None:
        orphaned = sorted(
            shard
            for shard, lease in self._leases.items()
            if lease.worker == worker
        )
        for shard in orphaned:
            del self._leases[shard]
            self._pending.appendleft(shard)
            self.stats["releases"] += 1
        if orphaned:
            self._cond.notify_all()

    def _monitor(self) -> None:
        """Re-lease shards whose worker stopped heartbeating."""
        while not self._stop.wait(self.spec.monitor_interval_s):
            now = time.monotonic()
            with self._lock:
                expired = sorted(
                    shard
                    for shard, lease in self._leases.items()
                    if max(
                        lease.deadline,
                        self._last_beat.get(lease.worker, 0.0)
                        + self.spec.lease_timeout_s,
                    )
                    < now
                )
                for shard in expired:
                    worker = self._leases.pop(shard).worker
                    self._pending.appendleft(shard)
                    self.stats["releases"] += 1
                    self.stats["worker_deaths"] += 1
                    self._last_beat.pop(worker, None)
                if expired:
                    self._cond.notify_all()

    # -- the wire protocol ----------------------------------------------
    def _handle_message(self, message: dict) -> dict | None:
        kind = message.get("type")
        now = time.monotonic()
        with self._lock:
            if kind == "register":
                worker = self._next_worker
                self._next_worker += 1
                self.stats["workers"] += 1
                self._last_beat[worker] = now
                return {
                    "type": "registered",
                    "worker": worker,
                    "heartbeat_interval_s": self.spec.heartbeat_interval_s,
                    "shards": len(self.cases),
                }
            worker = int(message.get("worker", -1))
            self._last_beat[worker] = now
            if kind == "ping":
                for lease in self._leases.values():
                    if lease.worker == worker:
                        lease.deadline = now + self.spec.lease_timeout_s
                return {"type": "pong"}
            if kind == "lease_request":
                if len(self._done) == len(self.cases):
                    return {"type": "drained"}
                if not self._pending:
                    return {"type": "wait", "poll_s": 0.1}
                shard = self._pending.popleft()
                self._leases[shard] = _Lease(
                    worker=worker, deadline=now + self.spec.lease_timeout_s
                )
                self.stats["leases"] += 1
                seen = int(message.get("cache_seq", 0))
                return {
                    "type": "lease",
                    "shard": shard,
                    "case": pack_blob(self.cases[shard]),
                    "cache": self._cache_log[seen:],
                    "cache_seq": len(self._cache_log),
                    "deadline_s": self.spec.lease_timeout_s,
                }
            if kind == "result":
                shard = int(message["shard"])
                self._leases.pop(shard, None)
                for blob in message.get("cache", ()):
                    key, _ = unpack_blob(blob)
                    if key not in self._cache_keys:
                        self._cache_keys.add(key)
                        self._cache_log.append(blob)
                        self.stats["cache_entries"] += 1
                if shard in self._done:
                    # A re-leased shard finished twice. Both copies are
                    # bit-identical (pure function of the case); keep the
                    # first so the merge never depends on arrival order.
                    self.stats["duplicate_results"] += 1
                else:
                    self._done[shard] = message["result"]
                    self._write_checkpoint_locked()
                self._cond.notify_all()
                return {"type": "ack", "done": len(self._done)}
        return {"type": "error", "error": f"bad request: {kind!r}"}

    def _handle_connection(self, raw: socket.socket) -> None:
        conn = LineSocket(raw)
        worker: int | None = None
        role = "worker"
        try:
            hello = server_handshake(conn, self.spec.token)
            role = str(hello.get("role", "worker"))
            if role == "worker":
                with self._lock:
                    self._live_workers += 1
            while not self._stop.is_set():
                message = conn.recv()
                if message is None or message.get("type") == "close":
                    break
                if message.get("type") == "register":
                    reply = self._handle_message(message)
                    worker = reply["worker"]
                    conn.send(reply)
                    continue
                conn.send(self._handle_message(message))
        except (ProtocolError, OSError, ValueError, KeyError):
            pass  # torn or hostile connection: release and move on
        finally:
            conn.close()
            with self._lock:
                if role == "worker":
                    self._live_workers -= 1
                    self._cond.notify_all()
                if worker is not None:
                    # EOF from a worker's main connection is the fastest
                    # death signal — re-lease immediately, don't wait for
                    # the heartbeat timeout.
                    self._release_worker_shards_locked(worker, "disconnect")

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                raw, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._handle_connection, args=(raw,), daemon=True
            ).start()
        listener.close()

    # -- worker processes ------------------------------------------------
    def _spawn_workers(self) -> list[subprocess.Popen]:
        import repro

        procs: list[subprocess.Popen] = []
        src_root = str(Path(repro.__file__).resolve().parents[1])
        for index in range(self.spec.workers):
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_root, env.get("PYTHONPATH")) if p
            )
            env["REPRO_FLEET_CONNECT"] = f"{self.spec.host}:{self.port}"
            env["REPRO_FLEET_TOKEN"] = self.spec.token
            env.pop(FAULT_ENV, None)
            if index < len(self.spec.worker_faults):
                fault = self.spec.worker_faults[index]
                if fault:
                    env[FAULT_ENV] = fault
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        "from repro.dist.worker import spawned_main; "
                        "raise SystemExit(spawned_main())",
                    ],
                    env=env,
                )
            )
        return procs

    # -- the run ----------------------------------------------------------
    def serve(self) -> list["DseResult"]:
        """Run the sweep to completion; returns results in case order."""
        listener = socket.create_server((self.spec.host, self.spec.port))
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        threads = [
            threading.Thread(
                target=self._accept_loop, args=(listener,), daemon=True
            ),
            threading.Thread(target=self._monitor, daemon=True),
        ]
        for thread in threads:
            thread.start()
        procs = self._spawn_workers() if self.spec.workers > 0 else []
        deadline = time.monotonic() + self.spec.timeout_s
        try:
            with self._cond:
                while len(self._done) < len(self.cases):
                    self._cond.wait(timeout=0.2)
                    if len(self._done) == len(self.cases):
                        break
                    if procs and all(p.poll() is not None for p in procs):
                        if self._live_workers == 0:
                            raise RuntimeError(
                                "all spawned fleet workers exited with "
                                f"{len(self.cases) - len(self._done)} shards "
                                f"unsolved (stats: {self.stats})"
                            )
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"fleet sweep timed out after "
                            f"{self.spec.timeout_s:.0f}s "
                            f"({len(self._done)}/{len(self.cases)} shards, "
                            f"stats: {self.stats})"
                        )
            # Linger briefly so connected workers hear "drained" and exit
            # cleanly instead of finding a closed port on their next ask.
            with self._cond:
                grace = time.monotonic() + 5.0
                while self._live_workers > 0 and time.monotonic() < grace:
                    self._cond.wait(timeout=0.1)
        finally:
            self._stop.set()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            for thread in threads:
                thread.join(timeout=5.0)
        return [unpack_blob(self._done[i]) for i in range(len(self.cases))]

    def cache_entries(self) -> list[tuple]:
        """All (key, value) eval-cache entries the fleet produced."""
        with self._lock:
            return [unpack_blob(blob) for blob in self._cache_log]


def run_fleet_sweep(
    engines: Sequence["DseEngine"],
    fleet: FleetSpec,
    iterations: int = 20,
    population: int = 200,
    seed: int | None = 0,
    seeds: Sequence[int | None] | None = None,
    heuristic_seed: bool = True,
    cache: "EvalCache | None" = None,
    objective=None,
    rerank_oracle=None,
    rerank_top_k: int | None = None,
    stats: dict | None = None,
) -> tuple["DseResult", ...]:
    """``search_many`` across a worker fleet — same dedup, same results.

    Unique cases become shards; duplicates share one shard's result,
    exactly mirroring the in-process dedup. The caller's ``cache`` is
    warmed with every entry the fleet produced (and flushed if it is
    file-backed), so a following local run starts hot. ``stats``, when
    given, is filled with the coordinator's counters (leases, releases,
    worker deaths, ...).
    """
    import random as _random

    from repro.dse.objective import resolve_oracle

    engines = list(engines)
    if seeds is None:
        seeds = [seed] * len(engines)
    elif len(seeds) != len(engines):
        raise ValueError(f"got {len(seeds)} seeds for {len(engines)} engines")
    for case_seed in seeds:
        if isinstance(case_seed, _random.Random):
            raise ValueError(
                "fleet sweeps need integer (or None) seeds: a live "
                "random.Random carries hidden state that cannot be "
                "shipped to a worker deterministically"
            )

    cases: list[SweepCase] = []
    case_index: dict[tuple, int] = {}
    placement: list[int] = []  # input index -> shard index
    for engine, case_seed in zip(engines, seeds):
        case = SweepCase(
            engine=engine,
            iterations=iterations,
            population=population,
            seed=case_seed,
            heuristic_seed=heuristic_seed,
            objective=engine.resolved_objective(objective),
            rerank_oracle=resolve_oracle(
                rerank_oracle if rerank_oracle is not None else engine.rerank_oracle
            ),
            rerank_top_k=(
                rerank_top_k if rerank_top_k is not None else engine.rerank_top_k
            ),
        )
        key = case.key() if seed_fingerprint(case_seed) is not None else None
        if key is not None and key in case_index:
            placement.append(case_index[key])
            continue
        if key is not None:
            case_index[key] = len(cases)
        placement.append(len(cases))
        cases.append(case)

    coordinator = SweepCoordinator(cases, fleet)
    results = coordinator.serve()
    if stats is not None:
        stats.update(coordinator.stats)
    if cache is not None:
        for key, value in coordinator.cache_entries():
            if cache.get(key) is None:
                cache.put(key, value)
        flush = getattr(cache, "flush", None)
        if callable(flush):
            flush()
    return tuple(results[shard] for shard in placement)


__all__ = ["FleetSpec", "SweepCase", "SweepCoordinator", "run_fleet_sweep"]
