"""Hardware target database: FPGA devices and ASIC budget specifications."""

from repro.devices.asic import AsicSpec
from repro.devices.budget import ResourceBudget
from repro.devices.fpga import (
    FpgaDevice,
    KU115,
    Z7045,
    ZU17EG,
    ZU9CG,
    get_device,
    list_devices,
)

__all__ = [
    "AsicSpec",
    "FpgaDevice",
    "KU115",
    "ResourceBudget",
    "Z7045",
    "ZU17EG",
    "ZU9CG",
    "get_device",
    "list_devices",
]
