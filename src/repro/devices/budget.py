"""Resource budgets — the ``{Cmax, Mmax, BWmax}`` triple of the paper.

The budget is the common currency between devices, the DSE engine, and the
resource models:

- ``compute``   — number of multiplier units (DSP slices on FPGA, MAC units
  on ASIC); how many MACs each sustains per cycle depends on the
  quantization scheme (see :mod:`repro.quant.schemes`);
- ``memory``    — on-chip memory in BRAM18K-block equivalents (18 Kb each);
- ``bandwidth`` — external memory bandwidth in GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ResourceBudget:
    """An upper bound on the three resources an accelerator may consume."""

    compute: int
    memory: int
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.compute < 0 or self.memory < 0 or self.bandwidth_gbps < 0:
            raise ValueError(f"budget components must be non-negative: {self}")

    def scaled(self, fraction: float) -> "ResourceBudget":
        """A proportionally smaller budget (used to split across branches)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return ResourceBudget(
            compute=int(self.compute * fraction),
            memory=int(self.memory * fraction),
            bandwidth_gbps=self.bandwidth_gbps * fraction,
        )

    def fits(self, compute: float, memory: float, bandwidth_gbps: float) -> bool:
        """Whether a usage triple fits inside this budget."""
        return (
            compute <= self.compute
            and memory <= self.memory
            and bandwidth_gbps <= self.bandwidth_gbps + 1e-9
        )

    def with_compute(self, compute: int) -> "ResourceBudget":
        return replace(self, compute=compute)

    def with_memory(self, memory: int) -> "ResourceBudget":
        return replace(self, memory=memory)

    def with_bandwidth(self, bandwidth_gbps: float) -> "ResourceBudget":
        return replace(self, bandwidth_gbps=bandwidth_gbps)
