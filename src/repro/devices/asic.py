"""ASIC targets.

The paper notes (Sec. VII) that F-CAD "can also target ASIC designs with the
resource budgets {Cmax, Mmax, BWmax} associating to ... the available MAC
units, the on-chip buffer size, and the external memory bandwidth". An
:class:`AsicSpec` captures exactly that triple and converts it to the common
:class:`~repro.devices.budget.ResourceBudget` currency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.budget import ResourceBudget
from repro.utils.units import BRAM18K_BITS


@dataclass(frozen=True)
class AsicSpec:
    """An ASIC accelerator budget: MAC array size, SRAM bytes, DRAM GB/s."""

    name: str
    mac_units: int
    onchip_buffer_kb: int
    bandwidth_gbps: float
    default_frequency_mhz: float = 800.0

    def budget(self) -> ResourceBudget:
        """Express the ASIC budget in the common resource currency.

        On-chip SRAM is converted to BRAM18K-block equivalents so the same
        memory model serves both target kinds.
        """
        bits = self.onchip_buffer_kb * 1024 * 8
        return ResourceBudget(
            compute=self.mac_units,
            memory=bits // BRAM18K_BITS,
            bandwidth_gbps=self.bandwidth_gbps,
        )
