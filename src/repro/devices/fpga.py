"""FPGA device specifications used throughout the paper's evaluation.

DSP and BRAM totals match the budgets the paper quotes in Table IV
(Z7045: 900 DSP / 1090 BRAM18K; ZU17EG: 1590 / 1592; ZU9CG: 2520 / 1824).
KU115 is the board used for the estimation-accuracy study (Figs. 6-7).
External bandwidth defaults to a 64-bit DDR3-1600 channel (12.8 GB/s), the
"DDR3 memory bandwidth" the paper uses as ``BWmax``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.budget import ResourceBudget

#: Peak bandwidth of one 64-bit DDR3-1600 channel, in GB/s.
DDR3_BANDWIDTH_GBPS = 12.8


@dataclass(frozen=True)
class FpgaDevice:
    """Resource inventory of one FPGA part at a fixed working frequency."""

    name: str
    family: str
    dsp: int
    bram_18k: int
    bandwidth_gbps: float = DDR3_BANDWIDTH_GBPS
    default_frequency_mhz: float = 200.0

    def budget(self) -> ResourceBudget:
        """The full device expressed as a resource budget."""
        return ResourceBudget(
            compute=self.dsp,
            memory=self.bram_18k,
            bandwidth_gbps=self.bandwidth_gbps,
        )


Z7045 = FpgaDevice(name="Z7045", family="Zynq-7000", dsp=900, bram_18k=1090)
ZU17EG = FpgaDevice(
    name="ZU17EG", family="Zynq UltraScale+", dsp=1590, bram_18k=1592
)
ZU9CG = FpgaDevice(
    name="ZU9CG", family="Zynq UltraScale+", dsp=2520, bram_18k=1824
)
KU115 = FpgaDevice(
    name="KU115",
    family="Kintex UltraScale",
    dsp=5520,
    bram_18k=4320,
    # KU115 boards pair the part with two DDR4 channels; keep one channel to
    # stay consistent with the embedded-platform bandwidth model.
    bandwidth_gbps=19.2,
)

_DEVICES = {dev.name: dev for dev in (Z7045, ZU17EG, ZU9CG, KU115)}


def get_device(name: str) -> FpgaDevice:
    """Look up a device by name (case-insensitive)."""
    try:
        return _DEVICES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None


def list_devices() -> list[FpgaDevice]:
    """All known FPGA devices, in ascending DSP count."""
    return sorted(_DEVICES.values(), key=lambda dev: dev.dsp)
