"""ASCII timeline rendering of a simulation run.

Turns the recorded busy intervals of every stage into a Gantt-style
utilization chart — the quickest way to *see* pipeline fill, a bottleneck
stage running flat out while its neighbours starve, or a fork throttling a
branch::

    conv1  |#######..#..#..#..#..#..#..#..#..| 34%
    conv2  |.#################################| 97%
    out_a  |..###..###..###..###..###..###..#| 58%

Each column is one time bucket; the glyph encodes the stage's busy
fraction within the bucket (' ' idle, '.' < 50 %, ':' < 90 %, '#' busy).
"""

from __future__ import annotations

from repro.sim.stats import SimStats

_GLYPHS = ((0.90, "#"), (0.50, ":"), (1e-9, "."))


def _bucket_glyph(busy_fraction: float) -> str:
    for threshold, glyph in _GLYPHS:
        if busy_fraction >= threshold:
            return glyph
    return " "


def render_timeline(stats: SimStats, width: int = 72) -> str:
    """Render the whole run as one utilization row per stage."""
    if width < 8:
        raise ValueError(f"width must be >= 8: {width}")
    total = stats.total_cycles
    if total <= 0:
        return "(empty simulation)"
    bucket = total / width
    name_width = max(len(name) for name in stats.stages) if stats.stages else 0

    lines = [
        f"timeline: {total:,.0f} cycles, {width} buckets of {bucket:,.0f}"
    ]
    for name, stage in stats.stages.items():
        busy = [0.0] * width
        for start, end in stage.busy_intervals:
            first = min(width - 1, int(start / bucket))
            last = min(width - 1, int(max(start, end - 1e-9) / bucket))
            for idx in range(first, last + 1):
                lo = max(start, idx * bucket)
                hi = min(end, (idx + 1) * bucket)
                busy[idx] += max(0.0, hi - lo)
        row = "".join(_bucket_glyph(b / bucket) for b in busy)
        overall = 100.0 * stage.busy_cycles / total
        lines.append(f"{name.ljust(name_width)} |{row}| {overall:3.0f}%")
    return "\n".join(lines)
