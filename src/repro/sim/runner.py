"""High-level simulation entry point and measurement report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import PipelinePlan
from repro.perf.analytical import efficiency
from repro.perf.estimator import evaluate
from repro.quant.schemes import QuantScheme
from repro.sim.pipeline import PipelineSimulator
from repro.sim.stats import SimStats
from repro.utils.units import GIGA


@dataclass(frozen=True)
class FrameLatencyProfile:
    """Per-frame decode latency of one accelerator, fill vs steady state.

    Sampled from a cycle-accurate run: a frame is *decoded* when the
    terminal stage of every branch has finished it, so ``finish_ms[i]`` is
    the completion time of frame ``i`` on a cold accelerator (weight load
    and pipeline fill included). ``first_frame_ms`` is the cold-start
    latency; ``steady_interval_ms`` is the inter-frame spacing once the
    pipeline is full — the two numbers a serving layer needs to account a
    batch that starts on an empty pipeline differently from one that keeps
    a warm pipeline fed.
    """

    finish_ms: tuple[float, ...]
    first_frame_ms: float
    steady_interval_ms: float
    frequency_mhz: float

    @property
    def fill_overhead_ms(self) -> float:
        """Extra latency the first frame pays over a steady-state frame."""
        return max(0.0, self.first_frame_ms - self.steady_interval_ms)

    @property
    def steady_fps(self) -> float:
        return (
            1000.0 / self.steady_interval_ms
            if self.steady_interval_ms > 0
            else 0.0
        )

    def batch_finish_ms(
        self, start_ms: float, batch: int, warm: bool = False
    ) -> tuple[float, ...]:
        """Completion times of ``batch`` back-to-back frames from ``start_ms``.

        A cold start (idle pipeline) pays the full fill latency on its
        first frame; a warm start (the pipeline was still draining when the
        batch arrived) streams every frame at the steady interval.
        """
        if batch < 1:
            raise ValueError("need at least one frame in a batch")
        first = (
            self.steady_interval_ms if warm else self.first_frame_ms
        )
        return tuple(
            start_ms + first + j * self.steady_interval_ms
            for j in range(batch)
        )


@dataclass(frozen=True)
class SimulationReport:
    """Measured ("board-level") performance of an accelerator config.

    ``branch_fps`` is the steady-state rate (inter-frame spacing after
    warmup); ``end_to_end_fps`` divides the frame count by the whole run
    including pipeline fill and weight-load startup — the number a
    host-side timer reports, and the one the estimation-error experiments
    (Figs. 6-7) compare against.
    """

    branch_fps: tuple[float, ...]
    end_to_end_fps: float
    efficiency: float  # whole-run accounting (includes fill and startup)
    steady_efficiency: float  # Eq. 3 from the steady-state throughput
    total_cycles: float
    frames: int
    stats: SimStats

    @property
    def fps(self) -> float:
        return min(self.branch_fps) if self.branch_fps else 0.0


def _steady_state_fps(
    finish_times: list[float], frequency_mhz: float, warmup: int
) -> float:
    """Frame rate from inter-frame spacing after discarding warmup frames."""
    if len(finish_times) < 2:
        return 0.0
    warmup = min(warmup, len(finish_times) - 2)
    window = finish_times[warmup:]
    cycles = window[-1] - window[0]
    if cycles <= 0:
        return 0.0
    return (len(window) - 1) * frequency_mhz * 1e6 / cycles


def simulate(
    plan: PipelinePlan,
    config: AcceleratorConfig,
    quant: QuantScheme,
    bandwidth_gbps: float,
    frequency_mhz: float = 200.0,
    frames: int = 8,
    warmup: int = 2,
) -> SimulationReport:
    """Run the cycle-accurate simulator and measure throughput/efficiency.

    Throughput is the steady-state rate of each branch's terminal stage
    (scaled by the branch's replica count); efficiency is Eq. 3 over the
    whole run *including* pipeline fill — the same accounting a board
    measurement with a host-side timer would produce.
    """
    simulator = PipelineSimulator(
        plan=plan,
        config=config,
        quant=quant,
        bandwidth_gbps=bandwidth_gbps,
        frequency_mhz=frequency_mhz,
    )
    stats = simulator.run(frames=frames)

    branch_fps = []
    for pipeline, branch_cfg in zip(plan.branches, config.branches):
        terminal = pipeline.stages[-1].name
        fps_one = _steady_state_fps(
            stats.stages[terminal].frame_finish_times, frequency_mhz, warmup
        )
        branch_fps.append(fps_one * max(1, branch_cfg.batch_size))

    slowest_batch = max(
        1,
        min(
            (cfg.batch_size for cfg in config.branches),
            default=1,
        ),
    )
    end_to_end_fps = (
        frames * slowest_batch * frequency_mhz * 1e6 / stats.total_cycles
        if stats.total_cycles > 0
        else 0.0
    )

    # Whole-run efficiency: ops completed over peak ops in the elapsed time.
    perf = evaluate(plan, config, quant, frequency_mhz)
    total_dsp = perf.total_dsp
    seconds = stats.total_cycles / (frequency_mhz * 1e6)
    gops_done = sum(
        pipeline.ops / GIGA * frames for pipeline in plan.branches
    )
    measured_eff = efficiency(
        gops_done / seconds if seconds > 0 else 0.0,
        quant.beta,
        total_dsp,
        frequency_mhz,
    )
    steady_gops = sum(
        pipeline.ops / GIGA * fps
        for pipeline, fps in zip(plan.branches, branch_fps)
    )
    steady_eff = efficiency(steady_gops, quant.beta, total_dsp, frequency_mhz)
    return SimulationReport(
        branch_fps=tuple(branch_fps),
        end_to_end_fps=end_to_end_fps,
        efficiency=measured_eff,
        steady_efficiency=steady_eff,
        total_cycles=stats.total_cycles,
        frames=frames,
        stats=stats,
    )


def frame_latency_profile(
    plan: PipelinePlan,
    config: AcceleratorConfig,
    quant: QuantScheme,
    bandwidth_gbps: float,
    frequency_mhz: float = 200.0,
    frames: int = 8,
    warmup: int = 2,
) -> FrameLatencyProfile:
    """Sample per-frame decode latencies from a cycle-accurate run.

    Frame ``i`` counts as decoded when every branch's terminal stage has
    finished it (an avatar needs all of geometry, texture, and warp). The
    steady interval averages the inter-frame spacing after ``warmup``
    frames; the frames before that carry the fill-phase accounting.
    """
    if frames < 2:
        raise ValueError("need at least two frames to split fill from steady state")
    simulator = PipelineSimulator(
        plan=plan,
        config=config,
        quant=quant,
        bandwidth_gbps=bandwidth_gbps,
        frequency_mhz=frequency_mhz,
    )
    stats = simulator.run(frames=frames)
    cycles_per_ms = frequency_mhz * 1e3
    per_branch = [
        stats.stages[pipeline.stages[-1].name].frame_finish_times
        for pipeline in plan.branches
    ]
    finish_ms = tuple(
        max(times[i] for times in per_branch) / cycles_per_ms
        for i in range(frames)
    )
    warmup = min(warmup, frames - 2)
    # Steady interval per *decoded avatar frame*: a branch with batch B
    # runs B replica pipelines on independent frames, so its effective
    # spacing is the simulated single-replica spacing over B (the same
    # accounting `simulate` uses for branch_fps). The slowest branch
    # paces the decode.
    intervals_ms = []
    for times, branch_cfg in zip(per_branch, config.branches):
        window = times[warmup:]
        spacing = (window[-1] - window[0]) / (len(window) - 1)
        intervals_ms.append(
            spacing / cycles_per_ms / max(1, branch_cfg.batch_size)
        )
    steady = max(intervals_ms)
    return FrameLatencyProfile(
        finish_ms=finish_ms,
        first_frame_ms=finish_ms[0],
        steady_interval_ms=steady,
        frequency_mhz=frequency_mhz,
    )
