"""Event-driven execution of the whole multi-pipeline accelerator."""

from __future__ import annotations

import heapq
import itertools

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import PipelinePlan
from repro.quant.schemes import QuantScheme
from repro.sim.dram import DramChannel
from repro.sim.stage import StageSim
from repro.sim.stats import SimStats, StageStats


class PipelineSimulator:
    """Simulates one replica of every branch pipeline of a plan.

    Multi-replica (batch > 1) branches process independent frames on
    identical copies; the runner scales their frame rate by the replica
    count (replica DRAM contention is second-order next to the modeled
    streams and is noted in EXPERIMENTS.md).
    """

    def __init__(
        self,
        plan: PipelinePlan,
        config: AcceleratorConfig,
        quant: QuantScheme,
        bandwidth_gbps: float,
        frequency_mhz: float = 200.0,
    ) -> None:
        config.validate_for(plan)
        self.plan = plan
        self.config = config
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.dram = DramChannel(
            bandwidth_gbps=bandwidth_gbps, frequency_mhz=frequency_mhz
        )

        terminal_names = {
            pipeline.stages[-1].name for pipeline in plan.branches
        }
        self.stages: dict[str, StageSim] = {}
        for pipeline, branch_cfg in zip(plan.branches, config.branches):
            for planned, stage_cfg in zip(pipeline.stages, branch_cfg.stages):
                self.stages[planned.name] = StageSim(
                    stage=planned.stage,
                    cfg=stage_cfg,
                    quant=quant,
                    is_terminal=planned.name in terminal_names,
                    branch=pipeline.index,
                )
        self._wire()
        self.dram.register_flows(
            {
                name: sim.dram_bytes_per_step * sim.steps_per_frame
                for name, sim in self.stages.items()
            }
        )

    def _wire(self) -> None:
        from repro.sim.stage import LinkState

        for sim in self.stages.values():
            for source in sim.stage.sources:
                producer = self.stages.get(source)
                if producer is None:
                    continue  # external input
                sim.producers.append(producer)
                # Line-buffer capacity: the window a step needs, doubled,
                # plus slack — enough to never deadlock, small enough to
                # exert real backpressure. A highly H-partitioned producer
                # emits a whole row burst atomically, so the buffer must
                # also absorb one full producer step.
                need = sim.producer_rows_needed(0)
                burst = producer.rows_after_step(0)
                capacity = max(
                    2 * (need + sim.window_overlap_rows() + 1),
                    burst + need + 1,
                )
                producer.out_links.append(
                    LinkState(consumer=sim, capacity_rows=capacity)
                )

    # ------------------------------------------------------------------
    def run(self, frames: int = 8) -> SimStats:
        """Simulate ``frames`` frames through every pipeline."""
        if frames < 1:
            raise ValueError("need at least one frame")
        stats = SimStats(frames_requested=frames)
        for name, sim in self.stages.items():
            sim.frames_target = frames
            sim.frame = 0
            sim.step = 0
            sim.emitted_rows = 0
            sim.busy = False
            stats.stages[name] = StageStats(name=name)

        # Startup: resident weights load once through DRAM, then the first
        # step's streamed data is prefetched on the stage's own flow.
        ready_at: dict[str, float] = {}
        dram_ready: dict[str, float] = {}
        for name, sim in self.stages.items():
            loaded = self.dram.request("", sim.resident_weight_bytes, 0.0)
            ready_at[name] = loaded
            dram_ready[name] = self.dram.request(
                name, sim.dram_bytes_per_step, loaded
            )
            sim.idle_since = loaded

        counter = itertools.count()
        events: list[tuple[float, int, str]] = []
        now = 0.0

        def try_start(sim: StageSim) -> bool:
            if sim.busy or sim.done():
                return False
            if ready_at[sim.name] > now:
                return False
            if not sim.inputs_available():
                return False
            if not sim.credits_available():
                return False
            st = stats.stages[sim.name]
            st.input_stall_cycles += now - sim.idle_since
            # This step waits for the data prefetched one step earlier;
            # the next step's transfer starts now (double buffering).
            dram_done = dram_ready[sim.name]
            dram_ready[sim.name] = self.dram.request(
                sim.name, sim.dram_bytes_per_step, now
            )
            compute_done = now + sim.compute_cycles_per_step
            finish = max(compute_done, dram_done)
            st.busy_cycles += sim.compute_cycles_per_step
            st.dram_stall_cycles += finish - compute_done
            st.record_interval(now, finish)
            sim.busy = True
            heapq.heappush(events, (finish, next(counter), sim.name))
            return True

        def try_start_all() -> None:
            started = True
            while started:
                started = False
                for sim in self.stages.values():
                    if try_start(sim):
                        started = True

        # Kick off anything that can start at the ready times.
        for t in sorted(set(ready_at.values())):
            now = t
            try_start_all()

        while events:
            now, _, name = heapq.heappop(events)
            sim = self.stages[name]
            st = stats.stages[name]
            was_last_step = sim.step >= sim.steps_per_frame - 1
            sim.complete_step()
            sim.busy = False
            sim.idle_since = now
            st.steps_done += 1
            if was_last_step:
                st.frames_done += 1
                st.frame_finish_times.append(now)
            try_start_all()

        stats.total_cycles = now
        stats.dram_busy_cycles = self.dram.busy_cycles
        stats.dram_bytes = self.dram.bytes_moved
        unfinished = [
            s.name for s in self.stages.values() if not s.done()
        ]
        if unfinished:
            raise RuntimeError(
                f"simulation deadlocked; unfinished stages: {unfinished}"
            )
        return stats
