"""Statistics collected during simulation."""

from __future__ import annotations

from dataclasses import dataclass, field


#: Per-stage cap on recorded busy intervals (timeline rendering only; the
#: aggregate counters keep accumulating past the cap).
MAX_RECORDED_INTERVALS = 4096


@dataclass
class StageStats:
    """Accumulated behaviour of one simulated stage."""

    name: str
    steps_done: int = 0
    frames_done: int = 0
    busy_cycles: float = 0.0
    input_stall_cycles: float = 0.0
    credit_stall_cycles: float = 0.0
    dram_stall_cycles: float = 0.0
    frame_finish_times: list[float] = field(default_factory=list)
    busy_intervals: list[tuple[float, float]] = field(default_factory=list)

    def record_interval(self, start: float, end: float) -> None:
        if len(self.busy_intervals) < MAX_RECORDED_INTERVALS:
            self.busy_intervals.append((start, end))

    @property
    def utilization(self) -> float:
        """Busy fraction of the stage over the recorded lifetime."""
        total = self.busy_cycles + self.stall_cycles
        return self.busy_cycles / total if total > 0 else 0.0

    @property
    def stall_cycles(self) -> float:
        return (
            self.input_stall_cycles
            + self.credit_stall_cycles
            + self.dram_stall_cycles
        )


@dataclass
class SimStats:
    """Whole-run statistics."""

    total_cycles: float = 0.0
    frames_requested: int = 0
    stages: dict[str, StageStats] = field(default_factory=dict)
    dram_busy_cycles: float = 0.0
    dram_bytes: float = 0.0

    def stage(self, name: str) -> StageStats:
        return self.stages[name]
