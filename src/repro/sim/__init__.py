"""Cycle-accurate simulation of the elastic multi-pipeline accelerator.

The paper validates its analytical models against board-level FPGA
implementations; this simulator is the stand-in. It executes an
:class:`~repro.arch.elastic.ElasticAccelerator` at row-tile granularity and
models the second-order effects the analytical models ignore:

- pipeline fill/drain across stages and frames,
- per-row control overhead in each compute engine,
- a shared DRAM channel with bounded efficiency arbitrating weight/bias
  streams and branch I/O,
- credit-based backpressure over the bounded inter-stage line buffers
  (including cross-branch forks, where the slower consumer throttles the
  shared producer).
"""

from repro.sim.dram import DramChannel
from repro.sim.pipeline import PipelineSimulator
from repro.sim.runner import (
    FrameLatencyProfile,
    SimulationReport,
    frame_latency_profile,
    simulate,
)
from repro.sim.stats import SimStats, StageStats
from repro.sim.timeline import render_timeline

__all__ = [
    "DramChannel",
    "FrameLatencyProfile",
    "PipelineSimulator",
    "SimStats",
    "SimulationReport",
    "frame_latency_profile",
    "render_timeline",
    "StageStats",
    "simulate",
]
