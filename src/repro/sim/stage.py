"""Per-stage simulation model.

A :class:`StageSim` executes one basic architecture unit at *row-step*
granularity: each step, the unit's ``h`` engines produce ``h`` consecutive
output rows, taking ``ceil(OutCh/kpf) x ceil(InCh/cpf) x W x K^2`` compute
cycles plus a fixed control overhead. Steps only start when

- the producers have emitted the input rows the kernel window needs
  (pipeline fill), and
- every consumer still has line-buffer credit for the rows this step emits
  (backpressure), and
- frame-streamed data (non-resident weights, untied bias slices, branch
  I/O) has been granted by the shared DRAM channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import StageConfig
from repro.construction.fusion import FusedStage
from repro.perf.resources import stage_stream_bytes, weights_resident
from repro.quant.schemes import QuantScheme

#: Fixed per-row-step control overhead: address generation, accumulator
#: drain, write-back handshake. This is one of the second-order effects the
#: analytical model (Eq. 4) ignores.
ROW_OVERHEAD_CYCLES = 24


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass
class LinkState:
    """Credit bookkeeping for one producer -> consumer edge.

    All quantities are cumulative producer-output rows since t=0 (frame
    boundaries are multiples of the producer's ``out_height``).
    """

    consumer: "StageSim"
    capacity_rows: int
    consumed_rows: int = 0


class StageSim:
    """Simulation state of one pipeline stage (one replica)."""

    def __init__(
        self,
        stage: FusedStage,
        cfg: StageConfig,
        quant: QuantScheme,
        is_terminal: bool,
        branch: int,
    ) -> None:
        self.stage = stage
        self.cfg = cfg
        self.quant = quant
        self.branch = branch
        self.is_terminal = is_terminal

        self.steps_per_frame = _ceil_div(stage.conv_height, cfg.h)
        self.compute_cycles_per_step = (
            _ceil_div(stage.out_channels, cfg.kpf)
            * _ceil_div(stage.in_channels, cfg.cpf)
            * stage.conv_width
            * stage.kernel
            * stage.kernel
        ) + ROW_OVERHEAD_CYCLES

        stream_bytes = stage_stream_bytes(stage, quant)
        stream_bytes += quant.activation_bytes(stage.external_input_elements)
        if is_terminal:
            stream_bytes += quant.activation_bytes(stage.output_elements)
        self.dram_bytes_per_step = stream_bytes / self.steps_per_frame
        self.resident_weight_bytes = (
            quant.weight_bytes(stage.weight_params)
            if weights_resident(stage, quant)
            else 0.0
        )

        # Wiring (filled by the pipeline builder).
        self.producers: list[StageSim] = []
        self.out_links: list[LinkState] = []

        # Progress.
        self.frame = 0
        self.step = 0
        self.emitted_rows = 0  # cumulative own output rows
        self.busy = False
        self.idle_since = 0.0
        self.frames_target = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.stage.name

    @property
    def input_rows_post_upsample(self) -> int:
        """Rows of the conv input after the folded upsample."""
        if self.producers:
            return self.producers[0].stage.out_height * self.stage.upsample_in
        # External input: reconstruct from the conv geometry.
        return max(1, self.stage.conv_height * self.stage.stride)

    def _pad_top(self) -> int:
        in_rows = self.input_rows_post_upsample
        total = max(
            0,
            (self.stage.conv_height - 1) * self.stage.stride
            + self.stage.kernel
            - in_rows,
        )
        return total // 2

    def producer_rows_needed(self, step: int) -> int:
        """Producer output rows required before ``step`` may start."""
        if not self.producers:
            return 0
        producer_out = self.producers[0].stage.out_height
        if self.stage.kind == "linear" or step >= self.steps_per_frame - 1:
            return producer_out  # the whole input tensor
        last_out_row = min(
            self.stage.conv_height - 1, (step + 1) * self.cfg.h - 1
        )
        last_in_row = min(
            self.input_rows_post_upsample - 1,
            last_out_row * self.stage.stride
            + self.stage.kernel
            - 1
            - self._pad_top(),
        )
        needed = math.ceil((last_in_row + 1) / self.stage.upsample_in)
        return min(producer_out, max(1, needed))

    def rows_after_step(self, step: int) -> int:
        """Cumulative own output rows emitted once ``step`` completes."""
        if step >= self.steps_per_frame - 1:
            return self.stage.out_height
        return self.stage.out_height * (step + 1) // self.steps_per_frame

    def window_overlap_rows(self) -> int:
        """Producer rows a consumer must retain across adjacent steps."""
        return _ceil_div(self.stage.kernel, self.stage.upsample_in)

    # ------------------------------------------------------------------
    # scheduling predicates
    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self.frame >= self.frames_target

    def inputs_available(self) -> bool:
        """All producers have emitted the rows this step's window needs."""
        for producer in self.producers:
            required = (
                self.frame * producer.stage.out_height
                + self.producer_rows_needed(self.step)
            )
            if producer.emitted_rows < required:
                return False
        return True

    def credits_available(self) -> bool:
        """All consumers can absorb the rows this step will emit."""
        emitted_after = (
            self.frame * self.stage.out_height + self.rows_after_step(self.step)
        )
        for link in self.out_links:
            if emitted_after - link.consumed_rows > link.capacity_rows:
                return False
        return True

    # ------------------------------------------------------------------
    # progress updates (called by the pipeline on step completion)
    # ------------------------------------------------------------------
    def complete_step(self) -> None:
        """Advance emission/consumption bookkeeping after one step."""
        self.emitted_rows = (
            self.frame * self.stage.out_height + self.rows_after_step(self.step)
        )
        # Release producer rows this window no longer needs.
        for producer in self.producers:
            link = next(
                link for link in producer.out_links if link.consumer is self
            )
            if self.step >= self.steps_per_frame - 1:
                freed = (self.frame + 1) * producer.stage.out_height
            else:
                kept = self.window_overlap_rows()
                freed = (
                    self.frame * producer.stage.out_height
                    + max(0, self.producer_rows_needed(self.step) - kept)
                )
            link.consumed_rows = max(link.consumed_rows, freed)
        if self.step >= self.steps_per_frame - 1:
            self.frame += 1
            self.step = 0
        else:
            self.step += 1
