"""External-memory channel model.

The single DDR controller of the target platforms is shared by every
streaming flow (non-resident weights, untied biases, branch I/O). Real
memory subsystems interleave bursts from concurrent DMA streams rather
than serving whole multi-megabyte transfers FCFS, so the channel is
modeled as *demand-proportional bandwidth partitioning*: each flow owns a
share of the effective bandwidth proportional to its per-frame traffic,
and transfers within a flow are serialized. This captures steady-state
contention without the convoy artifacts of a strict FCFS queue, and it is
slightly conservative (idle shares are not redistributed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fraction of peak DDR bandwidth sustainable with realistic access
#: patterns (row activations, refresh, read/write turnaround).
DEFAULT_DDR_EFFICIENCY = 0.93


@dataclass
class DramFlow:
    """One stream's private slice of the channel."""

    name: str
    bytes_per_cycle: float
    free_at: float = 0.0


@dataclass
class DramChannel:
    """Bandwidth-partitioned external-memory channel."""

    bandwidth_gbps: float
    frequency_mhz: float
    efficiency: float = DEFAULT_DDR_EFFICIENCY
    busy_cycles: float = field(default=0.0, init=False)
    bytes_moved: float = field(default=0.0, init=False)
    requests: int = field(default=0, init=False)
    _flows: dict[str, DramFlow] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_gbps}")
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive: {self.frequency_mhz}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1]: {self.efficiency}")

    @property
    def bytes_per_cycle(self) -> float:
        """Effective bytes the whole channel moves per accelerator cycle."""
        return (
            self.bandwidth_gbps * 1e9 * self.efficiency
        ) / (self.frequency_mhz * 1e6)

    def register_flows(self, demands: dict[str, float]) -> None:
        """Assign each flow a bandwidth share proportional to its demand."""
        total = sum(d for d in demands.values() if d > 0)
        for name, demand in demands.items():
            share = demand / total if total > 0 else 0.0
            self._flows[name] = DramFlow(
                name=name,
                bytes_per_cycle=self.bytes_per_cycle * share,
            )

    def request(self, flow_name: str, num_bytes: float, now: float) -> float:
        """Enqueue a transfer on a flow; returns its completion time."""
        if num_bytes <= 0:
            return now
        flow = self._flows.get(flow_name)
        if flow is None or flow.bytes_per_cycle <= 0:
            # Unregistered or zero-demand flow: give it the whole channel
            # (used for one-off startup loads of resident weights).
            duration = num_bytes / self.bytes_per_cycle
            self.busy_cycles += duration
            self.bytes_moved += num_bytes
            self.requests += 1
            return now + duration
        start = max(flow.free_at, now)
        duration = num_bytes / flow.bytes_per_cycle
        flow.free_at = start + duration
        self.busy_cycles += num_bytes / self.bytes_per_cycle
        self.bytes_moved += num_bytes
        self.requests += 1
        return flow.free_at
