"""Decoder variants from the codec-avatar literature the paper cites.

The paper positions F-CAD as a general tool for multi-branch DNNs and
cites several decoder families in its related work; these variants give
the framework workloads with different branch structures:

- :func:`build_gan_decoder` — a GAN-style decoder in the spirit of Wei et
  al., "VR facial animation via multiview image translation" (TOG 2019):
  two branches, a deeper single texture tower with tanh image output and
  conventional (tied-bias) convolutions;
- :func:`build_modular_decoder` — a modular codec avatar in the spirit of
  Chu et al. (ECCV 2020): one geometry branch plus *per-facial-region*
  texture branches (face / eyes / mouth) hanging off a shared trunk —
  four branches with very uneven demands, the stress case for cross-branch
  resource distribution.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import NetworkGraph
from repro.ir.layer import BiasMode, TensorShape


def build_gan_decoder(name: str = "gan_decoder") -> NetworkGraph:
    """A two-branch GAN-style avatar decoder (geometry + 1024^2 texture)."""
    b = GraphBuilder(name)
    z = b.input("z", TensorShape(256, 1, 1))

    # Geometry tower: 8x8 -> 256x256 position map.
    g = b.reshape(z, TensorShape(4, 8, 8), name="z_geo")
    for out_ch in (96, 96, 64, 32, 16):
        g = b.cau_block(g, out_channels=out_ch, kernel=4, bias=BiasMode.TIED)
    b.conv(g, out_channels=3, kernel=4, bias=BiasMode.TIED, name="geometry")

    # Texture tower: 8x8 -> 1024x1024 RGB, tanh image head.
    t = b.reshape(z, TensorShape(4, 8, 8), name="z_tex")
    for out_ch in (256, 192, 128, 96, 64, 32, 16):
        t = b.cau_block(t, out_channels=out_ch, kernel=4, bias=BiasMode.TIED)
    t = b.conv(t, out_channels=3, kernel=4, bias=BiasMode.TIED)
    b.act(t, fn="tanh", name="texture")

    graph = b.graph
    graph.validate()
    return graph


def build_modular_decoder(name: str = "modular_decoder") -> NetworkGraph:
    """A four-branch modular decoder: geometry + 3 per-region textures.

    The shared trunk upsamples to 64x64; the face region continues to
    512x512 while the eye/mouth modules are small 128x128 crops, giving
    branches whose compute demands differ by more than an order of
    magnitude.
    """
    b = GraphBuilder(name)
    z = b.input("z", TensorShape(256, 1, 1))
    view = b.input("view", TensorShape(3, 8, 8))

    g = b.reshape(z, TensorShape(4, 8, 8), name="z_geo")
    for out_ch in (96, 64, 32, 16, 8):
        g = b.cau_block(g, out_channels=out_ch, kernel=4, bias=BiasMode.UNTIED)
    b.conv(g, out_channels=3, kernel=4, bias=BiasMode.UNTIED, name="geometry")

    # Shared trunk: 8x8 -> 64x64.
    t = b.reshape(z, TensorShape(4, 8, 8), name="z_tex")
    t = b.concat([t, view], name="zv")
    for out_ch in (192, 128, 64):
        t = b.cau_block(t, out_channels=out_ch, kernel=4, bias=BiasMode.UNTIED)

    # Face region: 64x64 -> 512x512.
    face = t
    for out_ch in (32, 16, 8):
        face = b.cau_block(face, out_channels=out_ch, kernel=4, bias=BiasMode.UNTIED)
    b.conv(face, out_channels=3, kernel=4, bias=BiasMode.UNTIED, name="face_texture")

    # Eye / mouth modules: 64x64 -> 128x128 crops.
    for region in ("eye", "mouth"):
        m = b.cau_block(t, out_channels=24, kernel=3, bias=BiasMode.UNTIED)
        b.conv(
            m,
            out_channels=3,
            kernel=3,
            bias=BiasMode.UNTIED,
            name=f"{region}_texture",
        )

    graph = b.graph
    graph.validate()
    return graph
