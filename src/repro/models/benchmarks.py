"""Benchmark DNNs used in the estimation-accuracy study (Figs. 6-7).

The paper validates its analytical models on AlexNet, ZFNet, VGG16 and
Tiny-YOLO at 16-bit and 8-bit quantization on a KU115. These are
single-branch feed-forward networks built from conventional layers; their
role here is identical — exercising the performance models on workloads that
look nothing like the decoder.

Channel/shape configurations follow the standard (ungrouped) variants.
Exact top-1 fidelity is irrelevant: only layer shapes drive the experiment.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import NetworkGraph
from repro.ir.layer import BiasMode, TensorShape


def build_alexnet(name: str = "alexnet") -> NetworkGraph:
    """AlexNet (ungrouped), 227x227 input."""
    b = GraphBuilder(name)
    x = b.input("image", TensorShape(3, 227, 227))
    x = b.conv(x, 96, kernel=11, stride=4, padding="valid", bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.conv(x, 256, kernel=5, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.conv(x, 384, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.conv(x, 384, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.conv(x, 256, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.flatten(x)
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    b.linear(x, 1000, name="logits")
    graph = b.graph
    graph.validate()
    return graph


def build_zfnet(name: str = "zfnet") -> NetworkGraph:
    """ZFNet, 224x224 input."""
    b = GraphBuilder(name)
    x = b.input("image", TensorShape(3, 224, 224))
    x = b.conv(x, 96, kernel=7, stride=2, padding="same", bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.conv(x, 256, kernel=5, stride=2, padding="valid", bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.conv(x, 384, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.conv(x, 384, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.conv(x, 256, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="relu")
    x = b.pool(x, kernel=3, stride=2)
    x = b.flatten(x)
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    b.linear(x, 1000, name="logits")
    graph = b.graph
    graph.validate()
    return graph


def build_vgg16(name: str = "vgg16") -> NetworkGraph:
    """VGG-16, 224x224 input."""
    b = GraphBuilder(name)
    x = b.input("image", TensorShape(3, 224, 224))
    for block, (repeats, channels) in enumerate(
        [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)]
    ):
        for _ in range(repeats):
            x = b.conv(x, channels, kernel=3, bias=BiasMode.TIED)
            x = b.act(x, fn="relu")
        x = b.pool(x, kernel=2, stride=2)
    x = b.flatten(x)
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    x = b.linear(x, 4096)
    x = b.act(x, fn="relu")
    b.linear(x, 1000, name="logits")
    graph = b.graph
    graph.validate()
    return graph


def build_tiny_yolo(name: str = "tiny_yolo") -> NetworkGraph:
    """Tiny-YOLO (v2-style backbone), 416x416 input."""
    b = GraphBuilder(name)
    x = b.input("image", TensorShape(3, 416, 416))
    for channels in (16, 32, 64, 128, 256):
        x = b.conv(x, channels, kernel=3, bias=BiasMode.TIED)
        x = b.act(x, fn="leaky_relu", negative_slope=0.1)
        x = b.pool(x, kernel=2, stride=2)
    x = b.conv(x, 512, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="leaky_relu", negative_slope=0.1)
    x = b.pool(x, kernel=2, stride=1, padding="same")
    x = b.conv(x, 1024, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="leaky_relu", negative_slope=0.1)
    x = b.conv(x, 1024, kernel=3, bias=BiasMode.TIED)
    x = b.act(x, fn="leaky_relu", negative_slope=0.1)
    b.conv(x, 125, kernel=1, bias=BiasMode.TIED, name="detections")
    graph = b.graph
    graph.validate()
    return graph
