"""Named registry over the model zoo."""

from __future__ import annotations

from collections.abc import Callable

from repro.ir.graph import NetworkGraph
from repro.models.benchmarks import (
    build_alexnet,
    build_tiny_yolo,
    build_vgg16,
    build_zfnet,
)
from repro.models.codec_avatar import build_codec_avatar_decoder
from repro.models.mimic import build_mimic_decoder
from repro.models.variants import build_gan_decoder, build_modular_decoder

_REGISTRY: dict[str, Callable[[], NetworkGraph]] = {
    "codec_avatar_decoder": build_codec_avatar_decoder,
    "mimic_decoder": build_mimic_decoder,
    "gan_decoder": build_gan_decoder,
    "modular_decoder": build_modular_decoder,
    "alexnet": build_alexnet,
    "zfnet": build_zfnet,
    "vgg16": build_vgg16,
    "tiny_yolo": build_tiny_yolo,
}


def list_models() -> list[str]:
    """Names of every model in the zoo."""
    return sorted(_REGISTRY)


def get_model(name: str) -> NetworkGraph:
    """Build a zoo model by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(list_models())
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
    return builder()
