"""The targeted codec-avatar decoder (paper Table I).

Topology (three branches; Br.2 and Br.3 share a five-block front part):

- **Br. 1 — facial geometry**: latent ``z`` (256-d) reshaped to ``[4,8,8]``,
  then 5 x [C,A,U] + C  ->  ``[3,256,256]`` mesh position map;
- **shared front**: ``z`` reshaped and concatenated with the tiled view code
  to ``[7,8,8]``, then 5 x [C,A,U]  ->  ``[32,256,256]``;
- **Br. 2 — view-dependent UV texture**: shared front, then 2 x [C,A,U] + C
  ->  ``[3,1024,1024]``;
- **Br. 3 — warp field**: shared front, then C  ->  ``[2,256,256]``.

C is the paper's *customized Conv* (4x4, stride 1, untied per-pixel bias),
A is LeakyReLU, U is 2x nearest upsampling.

The paper publishes the topology but not the channel widths. The widths
below were calibrated (see ``tools/calibrate_decoder.py``) so the profile
reproduces Table I:

==============  ===========  ===========
quantity        paper        this plan
==============  ===========  ===========
Br.1 GOP        1.9 (10.5%)  1.90 (10.5%)
Br.2 GOP        11.3 (62.4%) 11.35 (62.5%)
Br.3 GOP        4.9 (27.1%)  4.91 (27.0%)
unique GOP      13.6         13.66
largest FM      16x1024x1024 16x1024x1024
==============  ===========  ===========

Parameter *shares* also match (12.1 / 67.0 / 20.9 % in the paper vs.
12.0 / 67.4 / 20.6 % here); absolute parameter counts run ~38 % above the
paper's 7.2 M because we carry untied biases up to 512x512 outputs — the
paper does not say where the real model ties them (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import GraphBuilder
from repro.ir.graph import NetworkGraph
from repro.ir.layer import BiasMode, TensorShape

#: Outputs with more pixels than this carry a tied bias instead of the
#: customized untied bias (an untied bias over 1024x1024x3 alone would
#: exceed the paper's total parameter count).
UNTIED_BIAS_MAX_PIXELS = 512 * 512


@dataclass(frozen=True)
class DecoderPlan:
    """Channel widths of the decoder; defaults reproduce Table I."""

    # Br.1: five [C,A,U] blocks, then the output conv to 3 channels.
    br1_channels: tuple[int, ...] = (128, 128, 96, 48, 24)
    br1_out_channels: int = 3
    # Shared front part of Br.2 / Br.3: five [C,A,U] blocks.
    shared_channels: tuple[int, ...] = (256, 160, 128, 104, 32)
    # Br.2: two more [C,A,U] blocks, then the output conv to 3 channels.
    br2_channels: tuple[int, ...] = (26, 16)
    br2_out_channels: int = 3
    # Br.3: a single (larger-kernel) output conv to 2 channels.
    br3_out_channels: int = 2
    br3_kernel: int = 7
    kernel: int = 4
    latent_dim: int = 256
    view_channels: int = 3
    base_resolution: int = 8
    negative_slope: float = 0.2

    @property
    def latent_channels(self) -> int:
        res = self.base_resolution
        if self.latent_dim % (res * res):
            raise ValueError(
                f"latent dim {self.latent_dim} does not reshape to {res}x{res}"
            )
        return self.latent_dim // (res * res)


REFERENCE_PLAN = DecoderPlan()


def _bias_for(out_channels: int, height: int, width: int) -> BiasMode:
    """Untied bias up to UNTIED_BIAS_MAX_PIXELS output pixels, tied above."""
    if height * width <= UNTIED_BIAS_MAX_PIXELS:
        return BiasMode.UNTIED
    return BiasMode.TIED


def build_codec_avatar_decoder(
    plan: DecoderPlan = REFERENCE_PLAN,
    name: str = "codec_avatar_decoder",
    bias_override: BiasMode | None = None,
) -> NetworkGraph:
    """Build the three-branch decoder graph.

    ``bias_override`` forces every conv to one bias mode — the mimic decoder
    (conventional convolutions) passes ``BiasMode.TIED``.
    """
    b = GraphBuilder(name)
    res = plan.base_resolution

    z = b.input("z", TensorShape(plan.latent_dim, 1, 1))
    # The 3-d view direction is tiled spatially by the host before decoding.
    view = b.input("view", TensorShape(plan.view_channels, res, res))

    def bias_mode(out_channels: int, height: int, width: int) -> BiasMode:
        if bias_override is not None:
            return bias_override
        return _bias_for(out_channels, height, width)

    def cau_stack(x: str, channels: tuple[int, ...], start_res: int) -> str:
        """A stack of [C,A,U] blocks; conv runs at the pre-upsample size."""
        size = start_res
        for out_ch in channels:
            x = b.conv(
                x,
                out_channels=out_ch,
                kernel=plan.kernel,
                bias=bias_mode(out_ch, size, size),
            )
            x = b.act(x, fn="leaky_relu", negative_slope=plan.negative_slope)
            x = b.upsample(x, scale=2)
            size *= 2
        return x

    # --- Br.1: facial geometry -------------------------------------------
    g = b.reshape(z, TensorShape(plan.latent_channels, res, res), name="z_geo")
    g = cau_stack(g, plan.br1_channels, res)
    out_res = res * 2 ** len(plan.br1_channels)
    b.conv(
        g,
        out_channels=plan.br1_out_channels,
        kernel=plan.kernel,
        bias=bias_mode(plan.br1_out_channels, out_res, out_res),
        name="geometry",
    )

    # --- shared front of Br.2 / Br.3 -------------------------------------
    t = b.reshape(z, TensorShape(plan.latent_channels, res, res), name="z_tex")
    t = b.concat([t, view], name="zv")
    shared = cau_stack(t, plan.shared_channels, res)
    shared_res = res * 2 ** len(plan.shared_channels)

    # --- Br.2: view-dependent texture -------------------------------------
    u = cau_stack(shared, plan.br2_channels, shared_res)
    tex_res = shared_res * 2 ** len(plan.br2_channels)
    b.conv(
        u,
        out_channels=plan.br2_out_channels,
        kernel=plan.kernel,
        bias=bias_mode(plan.br2_out_channels, tex_res, tex_res),
        name="texture",
    )

    # --- Br.3: warp field --------------------------------------------------
    b.conv(
        shared,
        out_channels=plan.br3_out_channels,
        kernel=plan.br3_kernel,
        bias=bias_mode(plan.br3_out_channels, shared_res, shared_res),
        name="warp_field",
    )

    graph = b.graph
    graph.validate()
    return graph
