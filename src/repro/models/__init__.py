"""Model zoo: the codec-avatar decoder, its mimic, and benchmark DNNs."""

from repro.models.codec_avatar import (
    DecoderPlan,
    REFERENCE_PLAN,
    build_codec_avatar_decoder,
)
from repro.models.mimic import build_mimic_decoder
from repro.models.benchmarks import (
    build_alexnet,
    build_tiny_yolo,
    build_vgg16,
    build_zfnet,
)
from repro.models.variants import build_gan_decoder, build_modular_decoder
from repro.models.zoo import get_model, list_models

__all__ = [
    "DecoderPlan",
    "REFERENCE_PLAN",
    "build_alexnet",
    "build_codec_avatar_decoder",
    "build_gan_decoder",
    "build_mimic_decoder",
    "build_modular_decoder",
    "build_tiny_yolo",
    "build_vgg16",
    "build_zfnet",
    "get_model",
    "list_models",
]
