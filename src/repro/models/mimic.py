"""The *mimic* decoder (paper Sec. III).

DNNBuilder and HybridDNN do not support the customized untied-bias Conv, so
the paper evaluates them on a mimic decoder: the same network with the
customized Conv replaced by a conventional one. Structure and feature-map
sizes are identical; only the per-pixel biases disappear.
"""

from __future__ import annotations

from repro.ir.graph import NetworkGraph
from repro.ir.layer import BiasMode
from repro.models.codec_avatar import DecoderPlan, REFERENCE_PLAN, build_codec_avatar_decoder


def build_mimic_decoder(
    plan: DecoderPlan = REFERENCE_PLAN, name: str = "mimic_decoder"
) -> NetworkGraph:
    """The decoder with conventional (tied-bias) convolutions."""
    return build_codec_avatar_decoder(
        plan=plan, name=name, bias_override=BiasMode.TIED
    )
