"""Graph execution: synthetic parameter init and forward passes.

The avatar decoder's trained weights are proprietary; :func:`init_parameters`
creates He-scaled synthetic weights with the published topology, which is
sufficient for every code path here (F-CAD never inspects weight values —
only shapes and counts — and the functional examples only need a decoder
that produces well-scaled geometry/texture tensors).
"""

from __future__ import annotations

import numpy as np

from repro.ir.graph import NetworkGraph
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool,
    Reshape,
    Upsample,
)
from repro.quant.quantize import quantize_tensor
from repro.quant.schemes import QuantScheme
from repro.runtime import ops


def init_parameters(
    graph: NetworkGraph, seed: int | None = 0
) -> dict[str, dict[str, np.ndarray]]:
    """Synthetic parameters for every parametric node of ``graph``.

    Weights are He-normal; biases start at zero (untied biases get their
    full per-pixel shape).
    """
    rng = np.random.default_rng(seed)
    shapes = graph.infer_shapes()
    params: dict[str, dict[str, np.ndarray]] = {}
    for node in graph.nodes():
        layer = node.layer
        if isinstance(layer, Conv2d):
            fan_in = layer.in_channels * layer.kernel * layer.kernel
            weight = rng.normal(
                0.0,
                np.sqrt(2.0 / fan_in),
                size=(layer.out_channels, layer.in_channels, layer.kernel, layer.kernel),
            )
            entry = {"weight": weight}
            out_shape = shapes[node.name]
            if layer.bias is BiasMode.TIED:
                entry["bias"] = np.zeros(layer.out_channels)
            elif layer.bias is BiasMode.UNTIED:
                entry["bias"] = np.zeros(out_shape.as_tuple())
            params[node.name] = entry
        elif isinstance(layer, Linear):
            weight = rng.normal(
                0.0,
                np.sqrt(2.0 / layer.in_features),
                size=(layer.out_features, layer.in_features),
            )
            entry = {"weight": weight}
            if layer.bias is not BiasMode.NONE:
                entry["bias"] = np.zeros(layer.out_features)
            params[node.name] = entry
    return params


def _quantize_params(
    params: dict[str, dict[str, np.ndarray]], scheme: QuantScheme
) -> dict[str, dict[str, np.ndarray]]:
    """Round-trip every parameter through the scheme's weight width."""
    out: dict[str, dict[str, np.ndarray]] = {}
    for node, entry in params.items():
        out[node] = {
            key: quantize_tensor(value, scheme.weight_bits).dequantized()
            for key, value in entry.items()
        }
    return out


class Executor:
    """Runs a graph forward, optionally with quantized arithmetic.

    With a :class:`~repro.quant.schemes.QuantScheme`, weights are quantized
    once up front and every layer output is re-quantized to the activation
    width — a simple model of fixed-point inference.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        params: dict[str, dict[str, np.ndarray]] | None = None,
        quant: QuantScheme | None = None,
        seed: int | None = 0,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.quant = quant
        self.params = params if params is not None else init_parameters(graph, seed)
        if quant is not None:
            self.params = _quantize_params(self.params, quant)

    def run(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Forward pass; returns activations of every node."""
        missing = [name for name in self.graph.input_names() if name not in inputs]
        if missing:
            raise KeyError(f"missing inputs: {missing}")
        values: dict[str, np.ndarray] = {}
        for name in self.graph.topo_order():
            node = self.graph.node(name)
            layer = node.layer
            args = [values[parent] for parent in node.inputs]
            if isinstance(layer, Input):
                x = np.asarray(inputs[name], dtype=np.float64)
                if x.shape != layer.shape.as_tuple():
                    raise ValueError(
                        f"input {name!r} has shape {x.shape}, "
                        f"expected {layer.shape.as_tuple()}"
                    )
                result = x
            elif isinstance(layer, Conv2d):
                entry = self.params[name]
                result = ops.conv2d(
                    args[0],
                    entry["weight"],
                    entry.get("bias"),
                    stride=layer.stride,
                    padding=layer.padding,
                )
            elif isinstance(layer, Linear):
                entry = self.params[name]
                result = ops.linear(args[0], entry["weight"], entry.get("bias"))
            elif isinstance(layer, Activation):
                result = ops.apply_activation(
                    args[0], layer.fn, layer.negative_slope
                )
            elif isinstance(layer, Upsample):
                result = ops.upsample_nearest(args[0], layer.scale)
            elif isinstance(layer, MaxPool):
                result = ops.maxpool2d(
                    args[0],
                    layer.kernel,
                    layer.effective_stride,
                    layer.padding,
                )
            elif isinstance(layer, Reshape):
                result = args[0].reshape(layer.target.as_tuple())
            elif isinstance(layer, Flatten):
                result = args[0].reshape(-1, 1, 1)
            elif isinstance(layer, Concat):
                result = np.concatenate(args, axis=0)
            else:
                raise TypeError(f"no kernel for layer kind {layer.kind!r}")
            if self.quant is not None and not isinstance(layer, Input):
                result = quantize_tensor(
                    result, self.quant.activation_bits
                ).dequantized()
            values[name] = result
        return values

    def run_outputs(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Forward pass; returns only the branch outputs."""
        values = self.run(inputs)
        return {name: values[name] for name in self.graph.output_names()}


def run_graph(
    graph: NetworkGraph,
    inputs: dict[str, np.ndarray],
    params: dict[str, dict[str, np.ndarray]] | None = None,
    quant: QuantScheme | None = None,
    seed: int | None = 0,
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph, params=params, quant=quant, seed=seed).run_outputs(inputs)
