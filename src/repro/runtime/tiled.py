"""Dataflow-faithful tiled execution.

The elastic architecture's two structural tricks are *H-partitioning*
(``h`` engines compute disjoint output-row slices in parallel) and
*upsample folding* (a 2x nearest upsample is absorbed into the consumer's
input addressing, so the upsampled tensor never exists). Both are purely
architectural claims — they must not change the mathematics.

This module computes convolutions exactly the way the hardware would:

- :func:`conv2d_h_partitioned` splits the output rows into ``h`` slices,
  gives each engine its halo of input rows, and concatenates;
- :func:`conv2d_folded_upsample` reads the *pre-upsample* tensor with
  replicated row/column addressing.

Property tests assert bit-exact agreement with the reference kernels in
:mod:`repro.runtime.ops`, which functionally validates the fusion and
H-partition transformations of the Construction step.
"""

from __future__ import annotations

import numpy as np

from repro.ir.layer import explicit_padding
from repro.runtime.ops import conv2d, upsample_nearest


def _partition_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``total`` rows into ``parts`` near-equal contiguous slices."""
    bounds = []
    base, extra = divmod(total, parts)
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    return bounds


def conv2d_h_partitioned(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int | str = "same",
    h: int = 2,
) -> np.ndarray:
    """Convolution computed as ``h`` independent output-row slices.

    Each engine receives only the input rows its output slice touches
    (slice rows x stride plus the kernel halo), mirroring the input-buffer
    partitioning of the basic architecture unit.
    """
    if h < 1:
        raise ValueError(f"h must be >= 1: {h}")
    kernel = weight.shape[2]
    pad_top, pad_bottom = explicit_padding(x.shape[1], kernel, stride, padding)
    pad_left, pad_right = explicit_padding(x.shape[2], kernel, stride, padding)
    padded = np.pad(
        x, ((0, 0), (pad_top, pad_bottom), (pad_left, pad_right))
    )
    out_h = (padded.shape[1] - kernel) // stride + 1
    out_w = (padded.shape[2] - kernel) // stride + 1
    out_c = weight.shape[0]

    out = np.empty((out_c, out_h, out_w))
    for row_start, row_end in _partition_bounds(out_h, min(h, out_h)):
        in_start = row_start * stride
        in_end = (row_end - 1) * stride + kernel
        slab = padded[:, in_start:in_end, :]
        piece = conv2d(slab, weight, bias=None, stride=stride, padding="valid")
        out[:, row_start:row_end, :] = piece
    if bias is not None:
        if bias.ndim == 1:
            out += bias[:, None, None]
        else:
            out += bias
    return out


def conv2d_folded_upsample(
    x_pre: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int | str = "same",
    scale: int = 2,
) -> np.ndarray:
    """Convolution over a nearest-upsampled input, without materializing it.

    Each (post-upsample) input pixel ``(i, j)`` is the pre-upsample pixel
    ``(i // scale, j // scale)``; the kernel sweep reads through that
    address mapping. Equivalent to
    ``conv2d(upsample_nearest(x_pre, scale), ...)`` while touching only the
    small tensor — this is how the fused [C,A,U] stage keeps the decoder's
    16x1024x1024 map virtual.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1: {scale}")
    channels, pre_h, pre_w = x_pre.shape
    up_h, up_w = pre_h * scale, pre_w * scale
    kernel = weight.shape[2]
    pad_top, _ = explicit_padding(up_h, kernel, stride, padding)
    pad_left, _ = explicit_padding(up_w, kernel, stride, padding)
    out_h = _conv_out(up_h, kernel, stride, padding)
    out_w = _conv_out(up_w, kernel, stride, padding)
    out_c = weight.shape[0]

    out = np.zeros((out_c, out_h, out_w))
    row_idx = np.arange(out_h) * stride
    col_idx = np.arange(out_w) * stride
    for ky in range(kernel):
        y = row_idx + ky - pad_top
        y_valid = (y >= 0) & (y < up_h)
        y_src = np.clip(y, 0, up_h - 1) // scale
        for kx in range(kernel):
            xx = col_idx + kx - pad_left
            x_valid = (xx >= 0) & (xx < up_w)
            x_src = np.clip(xx, 0, up_w - 1) // scale
            patch = x_pre[:, y_src[:, None], x_src[None, :]]
            mask = (y_valid[:, None] & x_valid[None, :]).astype(patch.dtype)
            out += np.tensordot(weight[:, :, ky, kx], patch * mask, axes=1)
    if bias is not None:
        if bias.ndim == 1:
            out += bias[:, None, None]
        else:
            out += bias
    return out


def _conv_out(size: int, kernel: int, stride: int, padding: int | str) -> int:
    from repro.ir.layer import conv_output_size

    return conv_output_size(size, kernel, stride, padding)


def reference_folded_upsample(
    x_pre: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int | str = "same",
    scale: int = 2,
) -> np.ndarray:
    """The materializing equivalent, for validation."""
    return conv2d(
        upsample_nearest(x_pre, scale),
        weight,
        bias=bias,
        stride=stride,
        padding=padding,
    )
