"""Functional (numpy) execution of IR graphs.

F-CAD's exploration is purely analytical, but a framework for decoder
accelerators should also *decode*: this package initializes synthetic
parameters for a graph and runs it forward, optionally with 8-/16-bit
quantized weights and activations.
"""

from repro.runtime.executor import Executor, init_parameters, run_graph
from repro.runtime.ops import (
    apply_activation,
    conv2d,
    linear,
    maxpool2d,
    upsample_nearest,
)

__all__ = [
    "Executor",
    "apply_activation",
    "conv2d",
    "init_parameters",
    "linear",
    "maxpool2d",
    "run_graph",
    "upsample_nearest",
]
