"""Numpy kernels for the IR layers.

Tensors are channel-height-width ``float64`` arrays. The convolution
supports the paper's customized Conv: an *untied* bias shaped like the whole
output tensor, added per pixel.
"""

from __future__ import annotations

import numpy as np

from repro.ir.layer import explicit_padding


def _pad_spatial(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int | str,
    fill: float = 0.0,
) -> np.ndarray:
    """Zero-pad (or fill-pad) the two spatial axes of a CHW tensor."""
    top, bottom = explicit_padding(x.shape[1], kernel, stride, padding)
    left, right = explicit_padding(x.shape[2], kernel, stride, padding)
    if top == bottom == left == right == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (top, bottom), (left, right)),
        mode="constant",
        constant_values=fill,
    )


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int | str = "same",
) -> np.ndarray:
    """2-D convolution (cross-correlation) over a CHW tensor.

    ``weight`` is ``(out_channels, in_channels, k, k)``. ``bias`` may be
    ``None``, per-channel ``(out_channels,)``, or untied
    ``(out_channels, out_h, out_w)``.
    """
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError(f"only square kernels are supported: {weight.shape}")
    if x.shape[0] != in_channels:
        raise ValueError(
            f"input has {x.shape[0]} channels, weight expects {in_channels}"
        )
    padded = _pad_spatial(x, kernel, stride, padding)
    out_h = (padded.shape[1] - kernel) // stride + 1
    out_w = (padded.shape[2] - kernel) // stride + 1
    out = np.zeros((out_channels, out_h, out_w), dtype=np.float64)
    for ky in range(kernel):
        for kx in range(kernel):
            patch = padded[
                :,
                ky : ky + out_h * stride : stride,
                kx : kx + out_w * stride : stride,
            ]
            # (out_c, in_c) x (in_c, H, W) -> (out_c, H, W)
            out += np.tensordot(weight[:, :, ky, kx], patch, axes=1)
    if bias is not None:
        if bias.ndim == 1:
            out += bias[:, None, None]
        else:
            if bias.shape != out.shape:
                raise ValueError(
                    f"untied bias shape {bias.shape} does not match output {out.shape}"
                )
            out += bias
    return out


def maxpool2d(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int | str = "valid",
) -> np.ndarray:
    """Max pooling over a CHW tensor."""
    padded = _pad_spatial(x, kernel, stride, padding, fill=-np.inf)
    out_h = (padded.shape[1] - kernel) // stride + 1
    out_w = (padded.shape[2] - kernel) // stride + 1
    out = np.full((x.shape[0], out_h, out_w), -np.inf)
    for ky in range(kernel):
        for kx in range(kernel):
            patch = padded[
                :,
                ky : ky + out_h * stride : stride,
                kx : kx + out_w * stride : stride,
            ]
            np.maximum(out, patch, out=out)
    return out


def upsample_nearest(x: np.ndarray, scale: int) -> np.ndarray:
    """Nearest-neighbour upsampling of a CHW tensor."""
    return np.repeat(np.repeat(x, scale, axis=1), scale, axis=2)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Fully connected layer: ``weight @ flatten(x)`` as a (F,1,1) tensor."""
    flat = x.reshape(-1)
    out = weight @ flat
    if bias is not None:
        out = out + bias
    return out.reshape(-1, 1, 1)


def apply_activation(
    x: np.ndarray, fn: str, negative_slope: float = 0.2
) -> np.ndarray:
    """Elementwise nonlinearity by name."""
    if fn == "relu":
        return np.maximum(x, 0.0)
    if fn == "leaky_relu":
        return np.where(x >= 0.0, x, negative_slope * x)
    if fn == "tanh":
        return np.tanh(x)
    if fn == "sigmoid":
        return 1.0 / (1.0 + np.exp(-x))
    if fn == "identity":
        return x
    raise ValueError(f"unsupported activation {fn!r}")
