"""(De)serialization of accelerator configurations.

A found configuration is a design artifact worth persisting: the DSE takes
seconds, but a downstream RTL/HLS generation step wants a stable on-disk
handle. The format is deliberately plain JSON.
"""

from __future__ import annotations

import json
from typing import Any

from repro.arch.config import AcceleratorConfig, BranchConfig, ConfigError, StageConfig

FORMAT_VERSION = 1


def config_to_dict(config: AcceleratorConfig) -> dict[str, Any]:
    """Serialize a configuration to plain dicts/lists."""
    return {
        "version": FORMAT_VERSION,
        "branches": [
            {
                "batch_size": branch.batch_size,
                "stages": [
                    {"cpf": s.cpf, "kpf": s.kpf, "h": s.h}
                    for s in branch.stages
                ],
            }
            for branch in config.branches
        ],
    }


def config_from_dict(data: dict[str, Any]) -> AcceleratorConfig:
    """Rebuild a configuration serialized by :func:`config_to_dict`."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ConfigError(f"unsupported config format version {version}")
    try:
        branches = tuple(
            BranchConfig(
                batch_size=entry["batch_size"],
                stages=tuple(
                    StageConfig(cpf=s["cpf"], kpf=s["kpf"], h=s["h"])
                    for s in entry["stages"]
                ),
            )
            for entry in data["branches"]
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed config payload: {exc}") from exc
    return AcceleratorConfig(branches=branches)


def config_to_json(config: AcceleratorConfig, indent: int | None = 2) -> str:
    """Serialize a configuration to a JSON string."""
    return json.dumps(config_to_dict(config), indent=indent)


def config_from_json(text: str) -> AcceleratorConfig:
    """Rebuild a configuration from its JSON string form."""
    return config_from_dict(json.loads(text))
