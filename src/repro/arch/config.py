"""Hardware configuration types — the paper's Table III design space.

A full accelerator configuration is, per branch, a batch size (number of
pipeline replicas) plus one ``(cpf, kpf, h)`` triple per stage:

- ``cpf`` — channel parallelism factor: MACs per PE, unrolling input
  channels;
- ``kpf`` — kernel parallelism factor: PEs per compute engine, unrolling
  output channels;
- ``h``   — H-partition: compute engines per unit, partitioning the output
  feature map along its height.

``pf = cpf x kpf x h`` is the stage's total parallelism (MACs per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.construction.reorg import PipelinePlan, PlannedStage


class ConfigError(ValueError):
    """Raised when a configuration is illegal for its pipeline plan."""


@dataclass(frozen=True)
class StageConfig:
    """3-D parallelism of one basic architecture unit."""

    cpf: int = 1
    kpf: int = 1
    h: int = 1

    def __post_init__(self) -> None:
        if min(self.cpf, self.kpf, self.h) < 1:
            raise ConfigError(f"parallelism factors must be >= 1: {self}")

    @property
    def pf(self) -> int:
        """Total parallel MACs per cycle of the unit."""
        return self.cpf * self.kpf * self.h

    def validate_for(self, planned: PlannedStage) -> None:
        """Check the factors against the stage's natural bounds."""
        stage = planned.stage
        if self.cpf > stage.cpf_max:
            raise ConfigError(
                f"stage {stage.name!r}: cpf={self.cpf} exceeds "
                f"input channels {stage.cpf_max}"
            )
        if self.kpf > stage.kpf_max:
            raise ConfigError(
                f"stage {stage.name!r}: kpf={self.kpf} exceeds "
                f"output channels {stage.kpf_max}"
            )
        if self.h > stage.h_max:
            raise ConfigError(
                f"stage {stage.name!r}: h={self.h} exceeds "
                f"feature-map height {stage.h_max}"
            )


@dataclass(frozen=True)
class BranchConfig:
    """Configuration of one branch pipeline: replicas + per-stage factors."""

    batch_size: int
    stages: tuple[StageConfig, ...]

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            raise ConfigError(f"batch size must be >= 0: {self.batch_size}")

    @property
    def num_stages(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full multi-branch configuration (one ``config_j`` file per branch)."""

    branches: tuple[BranchConfig, ...]

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    def stage(self, branch: int, index: int) -> StageConfig:
        return self.branches[branch].stages[index]

    def validate_for(self, plan: PipelinePlan) -> None:
        """Check shape compatibility and per-stage bounds against a plan."""
        if self.num_branches != plan.num_branches:
            raise ConfigError(
                f"config has {self.num_branches} branches, "
                f"plan has {plan.num_branches}"
            )
        for branch_cfg, pipeline in zip(self.branches, plan.branches):
            if branch_cfg.num_stages != pipeline.num_stages:
                raise ConfigError(
                    f"branch {pipeline.index}: config has "
                    f"{branch_cfg.num_stages} stages, plan has "
                    f"{pipeline.num_stages}"
                )
            for stage_cfg, planned in zip(branch_cfg.stages, pipeline.stages):
                stage_cfg.validate_for(planned)

    @staticmethod
    def uniform(plan: PipelinePlan, batch_size: int = 1) -> "AcceleratorConfig":
        """The minimal legal configuration: every factor 1."""
        return AcceleratorConfig(
            branches=tuple(
                BranchConfig(
                    batch_size=batch_size,
                    stages=tuple(StageConfig() for _ in pipeline.stages),
                )
                for pipeline in plan.branches
            )
        )
