"""The elastic accelerator architecture (paper Sec. V)."""

from repro.arch.config import (
    AcceleratorConfig,
    BranchConfig,
    ConfigError,
    StageConfig,
)
from repro.arch.elastic import ArchitectureUnit, ElasticAccelerator

__all__ = [
    "AcceleratorConfig",
    "ArchitectureUnit",
    "BranchConfig",
    "ConfigError",
    "ElasticAccelerator",
    "StageConfig",
]
