"""The elastic architecture: a 2-D grid of basic architecture units.

Expansion along the X axis adds pipeline stages within a branch; expansion
along the Y axis adds branches (paper Fig. 5 (b)). Each unit hosts ``h``
compute engines of ``kpf`` PEs, each PE performing ``cpf`` MACs per cycle,
plus its weight/input buffers. This class is the structural model the
cycle-accurate simulator executes and the report renderer draws; the
numbers themselves come from :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig, StageConfig
from repro.construction.reorg import PipelinePlan, PlannedStage
from repro.perf.resources import StageResources, stage_resources
from repro.quant.schemes import QuantScheme
from repro.utils.tables import render_table


@dataclass(frozen=True)
class ArchitectureUnit:
    """One basic architecture unit: unit instance (y, x) of the grid."""

    planned: PlannedStage
    config: StageConfig
    resources: StageResources

    @property
    def position(self) -> tuple[int, int]:
        """(branch, stage) — the paper's (Y, X) unit coordinates."""
        return (self.planned.branch, self.planned.index)

    @property
    def num_engines(self) -> int:
        return self.config.h

    @property
    def pes_per_engine(self) -> int:
        return self.config.kpf

    @property
    def macs_per_pe(self) -> int:
        return self.config.cpf


class ElasticAccelerator:
    """A fully instantiated multi-pipeline accelerator."""

    def __init__(
        self,
        plan: PipelinePlan,
        config: AcceleratorConfig,
        quant: QuantScheme,
        frequency_mhz: float = 200.0,
    ) -> None:
        config.validate_for(plan)
        self.plan = plan
        self.config = config
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.rows: list[list[ArchitectureUnit]] = []
        for pipeline, branch_cfg in zip(plan.branches, config.branches):
            row = [
                ArchitectureUnit(
                    planned=planned,
                    config=stage_cfg,
                    resources=stage_resources(planned.stage, stage_cfg, quant),
                )
                for planned, stage_cfg in zip(pipeline.stages, branch_cfg.stages)
            ]
            self.rows.append(row)

    def unit(self, branch: int, index: int) -> ArchitectureUnit:
        return self.rows[branch][index]

    def units(self) -> list[ArchitectureUnit]:
        return [unit for row in self.rows for unit in row]

    @property
    def num_branches(self) -> int:
        return len(self.rows)

    def describe(self) -> str:
        """Render the 2-D unit grid with per-unit configuration."""
        rows = []
        for branch_idx, row in enumerate(self.rows):
            batch = self.config.branches[branch_idx].batch_size
            for unit in row:
                rows.append(
                    [
                        f"({branch_idx + 1},{unit.planned.index + 1})",
                        unit.planned.name,
                        "yes" if unit.planned.shared else "",
                        batch,
                        unit.config.cpf,
                        unit.config.kpf,
                        unit.config.h,
                        unit.resources.dsp,
                        unit.resources.bram,
                    ]
                )
        return render_table(
            ["unit", "stage", "shared", "batch", "cpf", "kpf", "h", "DSP", "BRAM"],
            rows,
            title=f"Elastic architecture: {self.plan.graph_name} ({self.quant.name})",
        )
