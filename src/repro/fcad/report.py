"""Markdown design-report generation.

``render_markdown_report`` turns an :class:`~repro.fcad.flow.FcadResult`
into a self-contained markdown document: network summary, branch profile,
the optimized configuration (including every unit's ``(cpf, kpf, h)``),
resource usage against the budget, and the DSE trace — the artifact a
hardware team would attach to a design review.
"""

from __future__ import annotations

from repro.fcad.flow import FcadResult
from repro.perf.energy import estimate_energy
from repro.utils.units import GIGA, format_count


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def render_markdown_report(result: FcadResult) -> str:
    """A full design report as a markdown string."""
    perf = result.dse.best_perf
    budget = result.budget
    lines: list[str] = []
    add = lines.append

    add(f"# F-CAD design report: {result.network_name}")
    add("")
    add(
        f"- target budget: **{budget.compute}** compute units, "
        f"**{budget.memory}** BRAM18K, **{budget.bandwidth_gbps:.1f} GB/s** "
        f"@ {result.frequency_mhz:.0f} MHz"
    )
    add(f"- quantization: **{result.quant.name}**")
    add(
        f"- decoder frame rate: **{perf.fps:.1f} FPS** "
        f"({'meets' if perf.fps >= 90 else 'below'} the 90 FPS VR target)"
    )
    add(f"- overall efficiency (Eq. 3): **{100 * perf.overall_efficiency:.1f}%**")
    add(
        f"- DSE: {result.dse.iterations} iterations, best fitness "
        f"{result.dse.best_fitness:.1f}, converged at iteration "
        f"{result.dse.convergence_iteration}, "
        f"{result.dse.runtime_seconds:.1f} s wall clock"
    )
    add("")

    add("## Network")
    add("")
    profile = result.profile
    add(
        f"{len(profile.layers)} layers in {len(profile.branches)} branches; "
        f"{profile.total_ops / GIGA:.1f} GOP and "
        f"{format_count(profile.total_params)} parameters per frame "
        f"(shared parts counted once)."
    )
    add("")
    add("| branch | output | GOP | params | shared GOP |")
    add("|---|---|---|---|---|")
    for branch in profile.branches:
        add(
            f"| Br.{branch.index + 1} | {branch.output_name} "
            f"| {branch.ops / GIGA:.2f} | {format_count(branch.params)} "
            f"| {branch.shared_ops / GIGA:.2f} |"
        )
    add("")

    add("## Optimized accelerator")
    add("")
    add("| branch | batch | DSP | BRAM | FPS | eff % | bottleneck |")
    add("|---|---|---|---|---|---|---|")
    for branch in perf.branches:
        add(
            f"| Br.{branch.index + 1} | {branch.batch_size} | {branch.dsp} "
            f"| {branch.bram} | {branch.fps:.1f} "
            f"| {100 * branch.efficiency:.1f} | {branch.bottleneck_stage} |"
        )
    add(
        f"| **total** |  | {perf.total_dsp} ({_pct(perf.total_dsp, budget.compute)}) "
        f"| {perf.total_bram} ({_pct(perf.total_bram, budget.memory)}) "
        f"| {perf.fps:.1f} | {100 * perf.overall_efficiency:.1f} |  |"
    )
    add("")

    add("## Unit configurations (cpf x kpf x h per stage)")
    add("")
    add("| unit | stage | cpf | kpf | h | pf | latency (cycles) |")
    add("|---|---|---|---|---|---|---|")
    for branch_perf, branch_cfg, pipeline in zip(
        perf.branches, result.dse.best_config.branches, result.plan.branches
    ):
        for planned, cfg, stage_perf in zip(
            pipeline.stages, branch_cfg.stages, branch_perf.stages
        ):
            add(
                f"| ({pipeline.index + 1},{planned.index + 1}) "
                f"| {planned.name} | {cfg.cpf} | {cfg.kpf} | {cfg.h} "
                f"| {cfg.pf} | {stage_perf.latency_cycles:,} |"
            )
    add("")

    add("## Energy estimate")
    add("")
    energy = estimate_energy(
        result.plan, result.dse.best_config, result.quant, perf
    )
    add(
        f"- {energy.dynamic_mj_per_frame:.2f} mJ per decoded frame "
        f"(compute {sum(b.compute_mj for b in energy.branches):.2f}, "
        f"SRAM {sum(b.sram_mj for b in energy.branches):.2f}, "
        f"DRAM {sum(b.dram_mj for b in energy.branches):.2f})"
    )
    add(
        f"- at {energy.fps:.1f} FPS: {energy.dynamic_w:.2f} W dynamic + "
        f"{energy.static_w:.2f} W static = **{energy.total_w:.2f} W** "
        f"({energy.fps_per_watt:.1f} FPS/W)"
    )
    add("")

    add("## DSE fitness trace")
    add("")
    add("| iteration | best fitness |")
    add("|---|---|")
    for idx, fitness in enumerate(result.dse.history, start=1):
        add(f"| {idx} | {fitness:.1f} |")
    add("")
    return "\n".join(lines)
