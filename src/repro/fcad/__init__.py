"""The F-CAD automation flow (paper Fig. 4)."""

from repro.fcad.flow import FCad, FcadResult, run_sweep, sweep_grid

__all__ = ["FCad", "FcadResult", "run_sweep", "sweep_grid"]
