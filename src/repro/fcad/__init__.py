"""The F-CAD automation flow (paper Fig. 4)."""

from repro.fcad.flow import FCad, FcadResult

__all__ = ["FCad", "FcadResult"]
