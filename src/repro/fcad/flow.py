"""F-CAD: the three-step automation design flow.

1. **Analysis** — profile the network layer- and branch-wise
   (:mod:`repro.profiler`);
2. **Construction** — fuse layers, separate shared branches, instantiate
   the elastic architecture (:mod:`repro.construction`, :mod:`repro.arch`);
3. **Optimization** — explore the multi-branch design space with the DSE
   engine under the budget and customization (:mod:`repro.dse`).

Usage::

    from repro import FCad, get_device, INT8, Customization

    result = FCad(
        network=build_codec_avatar_decoder(),
        device=get_device("ZU9CG"),
        quant=INT8,
        customization=Customization(batch_sizes=(1, 2, 2),
                                    priorities=(1.0, 1.0, 1.0)),
    ).run(workers=4)
    print(result.render())

Whole families and device grids go through the batch entry point, which
shares one evaluation cache across every case and deduplicates identical
ones::

    results = run_sweep(
        sweep_grid(
            networks=[build_codec_avatar_decoder()],
            devices=["Z7045", "ZU17EG", "ZU9CG"],
            quants=["int8", "int16"],
        ),
        workers=4,
    )

A found design can then be *deployed*: :mod:`repro.serving` batches live
decode requests from many avatars onto simulated replicas of it::

    from repro.serving import serve_from_result

    report = serve_from_result(result, avatars=64, replicas=4, policy="edf")
    print(report.render())

Several found designs can serve *together* as a heterogeneous cluster —
:meth:`FcadResult.serving_group` turns each into a replica group, and a
deadline-aware router splits the traffic::

    from repro.serving import serve_cluster

    report = serve_cluster(
        [fast.serving_group("latency", replicas=1, batch_window_ms=0.0),
         big.serving_group("throughput", replicas=3, policy="fifo")],
        workload, router="deadline", admission=True,
    )
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from repro.dse.objective import MetricsOracle, Objective

from repro.analysis.analyzer import NetworkAnalysis, analyze_network
from repro.arch.elastic import ElasticAccelerator
from repro.construction.reorg import PipelinePlan, build_pipeline_plan
from repro.devices.asic import AsicSpec
from repro.devices.budget import ResourceBudget
from repro.devices.fpga import FpgaDevice, get_device
from repro.dse.cache import EvalCache
from repro.dse.engine import DseEngine
from repro.dse.result import DseResult
from repro.dse.space import Customization
from repro.ir.graph import NetworkGraph
from repro.profiler.network import NetworkProfile
from repro.profiler.report import render_branch_table
from repro.quant.schemes import QuantScheme, get_scheme


@dataclass(frozen=True)
class FcadResult:
    """Everything the flow produced, from analysis to the optimized design."""

    network_name: str
    analysis: NetworkAnalysis
    plan: PipelinePlan
    dse: DseResult
    budget: ResourceBudget
    quant: QuantScheme
    frequency_mhz: float

    @property
    def profile(self) -> NetworkProfile:
        return self.analysis.profile

    @property
    def fps(self) -> float:
        return self.dse.best_perf.fps

    @property
    def efficiency(self) -> float:
        return self.dse.best_perf.overall_efficiency

    def accelerator(self) -> ElasticAccelerator:
        """Instantiate the optimized elastic architecture."""
        return ElasticAccelerator(
            plan=self.plan,
            config=self.dse.best_config,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
        )

    def frame_latency_profile(self, frames: int = 8, warmup: int = 2):
        """Per-frame decode latency of the found design, from the simulator.

        The returned :class:`~repro.sim.runner.FrameLatencyProfile` splits
        cold-start (weight load + pipeline fill) from steady-state cost —
        what the serving layer (:mod:`repro.serving`) uses to account each
        replica's batches. Deferred import keeps ``fcad`` free of a
        dependency on the simulator package at import time.
        """
        from repro.sim.runner import frame_latency_profile

        return frame_latency_profile(
            plan=self.plan,
            config=self.dse.best_config,
            quant=self.quant,
            bandwidth_gbps=self.budget.bandwidth_gbps,
            frequency_mhz=self.frequency_mhz,
            frames=frames,
            warmup=warmup,
        )

    def serving_group(
        self,
        name: str | None = None,
        replicas: int = 1,
        policy: str = "edf",
        batch_window_ms: float = 2.0,
        max_batch: int | None = None,
        transport: str = "inprocess",
        sim_frames: int = 8,
        profile=None,
    ):
        """This design as one replica group of a heterogeneous cluster.

        The bridge from the design flow into the cluster serving layer
        (:mod:`repro.serving.cluster`): sample the design's frame-latency
        profile once and wrap it in a
        :class:`~repro.serving.cluster.GroupSpec` with the group's own
        batching policy/window/transport. Feed several of these — e.g. a
        low-latency design next to a big-batch one — to
        :func:`~repro.serving.cluster.serve_cluster`.
        """
        from repro.serving.cluster import GroupSpec
        from repro.serving.replica import design_max_batch

        if profile is None:
            profile = self.frame_latency_profile(frames=sim_frames)
        if max_batch is None:
            max_batch = design_max_batch(self.dse.best_config)
        return GroupSpec(
            name=name if name is not None else self.network_name,
            profile=profile,
            replicas=replicas,
            policy=policy,
            batch_window_ms=batch_window_ms,
            max_batch=max_batch,
            transport=transport,
        )

    def render(self) -> str:
        parts = [
            render_branch_table(self.profile),
            "",
            self.dse.render(),
            "",
            (
                f"budget: {self.budget.compute} DSP, {self.budget.memory} BRAM, "
                f"{self.budget.bandwidth_gbps:.1f} GB/s @ {self.frequency_mhz:.0f} MHz "
                f"({self.quant.name})"
            ),
        ]
        return "\n".join(parts)


class FCad:
    """The end-to-end automation tool."""

    def __init__(
        self,
        network: NetworkGraph,
        device: FpgaDevice | AsicSpec | None = None,
        budget: ResourceBudget | None = None,
        quant: QuantScheme | str = "int8",
        customization: Customization | None = None,
        frequency_mhz: float | None = None,
        alpha: float = 0.05,
    ) -> None:
        if (device is None) == (budget is None):
            raise ValueError("provide exactly one of device or budget")
        if isinstance(quant, str):
            quant = get_scheme(quant)
        self.network = network
        self.budget = budget if budget is not None else device.budget()
        self.quant = quant
        if frequency_mhz is None:
            frequency_mhz = (
                device.default_frequency_mhz if device is not None else 200.0
            )
        self.frequency_mhz = frequency_mhz
        self.customization = customization
        self.alpha = alpha

    def prepare(
        self, alpha: float | None = None
    ) -> tuple[NetworkAnalysis, PipelinePlan, DseEngine]:
        """Run Analysis and Construction; return the ready-to-search engine.

        ``alpha`` overrides the constructor's variance-penalty weight for
        this engine (it feeds :class:`~repro.dse.objective.PaperObjective`
        and the SLO objective's analytical-stage proxy).
        """
        analysis = analyze_network(self.network)
        plan = build_pipeline_plan(self.network)
        customization = (
            self.customization
            if self.customization is not None
            else Customization.uniform(plan.num_branches)
        )
        engine = DseEngine(
            plan=plan,
            budget=self.budget,
            customization=customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
            alpha=self.alpha if alpha is None else alpha,
        )
        return analysis, plan, engine

    def _result(
        self, analysis: NetworkAnalysis, plan: PipelinePlan, dse: DseResult
    ) -> FcadResult:
        return FcadResult(
            network_name=self.network.name,
            analysis=analysis,
            plan=plan,
            dse=dse,
            budget=self.budget,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
        )

    def run(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        workers: int = 1,
        cache: "EvalCache | None" = None,
        objective: "Objective | str | None" = None,
        rerank_oracle: "MetricsOracle | str | None" = None,
        rerank_top_k: int = 4,
        alpha: float | None = None,
        surrogate: str | None = None,
        surrogate_min_samples: int | None = None,
    ) -> FcadResult:
        """Execute Analysis, Construction and Optimization.

        ``workers > 1`` evaluates each DSE generation on a process pool;
        the found design is bit-identical to the serial search. ``cache``
        plugs in an evaluation-cache backend (e.g. a persistent
        :class:`~repro.dse.cache.FileEvalCache` for warm starts across
        runs); the default is a fresh in-process cache.

        ``objective`` picks the fitness the search maximizes (``"paper"``,
        ``"slo"``, ``"composite"``, or any
        :class:`~repro.dse.objective.Objective` instance);
        ``rerank_oracle`` (``"sim"`` / ``"serving"`` / an oracle instance)
        re-measures the analytical top-``rerank_top_k`` candidates per
        generation with an expensive oracle and selects the final design
        by *its* scores. ``alpha`` overrides the constructor's
        variance-penalty weight. ``surrogate`` turns on the learned
        eval-path filter (``"prune"`` / ``"verify"``, see
        :mod:`repro.dse.surrogate`) and ``surrogate_min_samples`` sets
        how much training data it needs before its first prediction.
        The defaults reproduce the paper's search bit for bit.
        """
        analysis, plan, engine = self.prepare(alpha=alpha)
        dse = engine.search(
            iterations=iterations,
            population=population,
            seed=seed,
            workers=workers,
            cache=cache,
            objective=objective,
            rerank_oracle=rerank_oracle,
            rerank_top_k=rerank_top_k,
            surrogate=surrogate,
            surrogate_min_samples=surrogate_min_samples,
        )
        return self._result(analysis, plan, dse)


def sweep_grid(
    networks: Iterable[NetworkGraph],
    devices: Iterable[FpgaDevice | AsicSpec | str],
    quants: Iterable[QuantScheme | str] = ("int8",),
    customization: Customization | None = None,
    frequency_mhz: float | None = None,
    alpha: float = 0.05,
) -> list[FCad]:
    """Build the cross product of a sweep as a list of flows.

    Device names are looked up in the FPGA database; pass
    :class:`AsicSpec` objects for ASIC targets. Feed the result to
    :func:`run_sweep`.
    """
    flows = []
    for network in networks:
        for device in devices:
            resolved = get_device(device) if isinstance(device, str) else device
            for quant in quants:
                flows.append(
                    FCad(
                        network=network,
                        device=resolved,
                        quant=quant,
                        customization=customization,
                        frequency_mhz=frequency_mhz,
                        alpha=alpha,
                    )
                )
    return flows


def run_sweep(
    flows: Sequence[FCad],
    iterations: int = 20,
    population: int = 200,
    seed: int | random.Random | None = 0,
    workers: int = 1,
    cache: "EvalCache | None" = None,
    objective: "Objective | str | None" = None,
    rerank_oracle: "MetricsOracle | str | None" = None,
    rerank_top_k: int | None = None,
    surrogate: str | None = None,
    surrogate_min_samples: int | None = None,
) -> tuple[FcadResult, ...]:
    """Explore a whole batch of flows in one call.

    Every case draws from one shared evaluation cache (in-branch solutions
    are reused wherever specs overlap) and duplicate cases — same network,
    target, quantization, customization, objective, and seed — are
    searched exactly once. Results come back in input order, one per flow.
    ``cache`` overrides the backend, e.g. a
    :class:`~repro.dse.cache.FileEvalCache` so the next sweep starts from
    this one's solutions; because cache entries are objective-independent
    metrics, a sweep under a new objective still warm-starts from an old
    sweep's file. ``objective`` / ``rerank_oracle`` / ``rerank_top_k``
    / ``surrogate`` / ``surrogate_min_samples`` apply to every case; a
    warm shared cache doubles as surrogate training data, so later
    cases in a sweep prune with a model fitted on earlier ones.
    """
    prepared = [flow.prepare() for flow in flows]
    dse_results = DseEngine.search_many(
        [engine for _, _, engine in prepared],
        iterations=iterations,
        population=population,
        seed=seed,
        workers=workers,
        cache=cache,
        objective=objective,
        rerank_oracle=rerank_oracle,
        rerank_top_k=rerank_top_k,
        surrogate=surrogate,
        surrogate_min_samples=surrogate_min_samples,
    )
    return tuple(
        flow._result(analysis, plan, dse)
        for flow, (analysis, plan, _), dse in zip(flows, prepared, dse_results)
    )
