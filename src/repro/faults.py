"""Deterministic fault injection, shared across the repo.

Tests, the fleet-smoke CI job, and the serving chaos layer all need
failures on demand: a dropped message, a slow link, a worker that dies
right after taking a lease. :class:`FaultPlan` describes *what* goes
wrong, :class:`FaultInjector` counts messages/leases and fires at the
configured points. Plans parse from a compact spec string
(``"die-after-leases:1,drop-every:3"``) so CI can arm a spawned worker
through the ``REPRO_FLEET_FAULT`` environment variable without any code.

All faults are deterministic (counter-based, never random) so a faulted
run is as reproducible as a clean one. The serving layer's richer
per-replica fault grammar builds on the same rule — see
:mod:`repro.serving.chaos`.

This module started life as ``repro.dist.faults`` (PR 7) and was
promoted here once serving chaos needed the same machinery;
``repro.dist.faults`` remains as a compatibility alias.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Environment variable spawned fleet workers read their fault plan from.
FAULT_ENV = "REPRO_FLEET_FAULT"


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, and when (all counters 0 = fault disabled)."""

    #: Drop every Nth outbound message (send becomes a no-op).
    drop_every: int = 0
    #: Sleep this long (wall time) before every outbound message.
    delay_ms: float = 0.0
    #: Worker: abandon after receiving the Nth lease — close the
    #: connection without submitting a result, then stop. To the
    #: coordinator this is indistinguishable from a crash.
    die_after_leases: int = 0
    #: Server: abruptly close the client connection after serving the
    #: Nth decode (the reply is never sent). Exercises client reconnect
    #: + resubmission.
    drop_conn_after_decodes: int = 0
    #: Server: stop serving entirely after the Nth decode (close the
    #: listener too). Exercises unrecoverable-death error paths.
    kill_server_after_decodes: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"name:value,name:value"`` fault specs.

        Names mirror the field names with dashes:
        ``drop-every``, ``delay-ms``, ``die-after-leases``,
        ``drop-conn-after-decodes``, ``kill-server-after-decodes``.
        """
        fields: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition(":")
            key = name.strip().replace("-", "_")
            if key not in cls.__dataclass_fields__:
                known = ", ".join(
                    f.replace("_", "-") for f in cls.__dataclass_fields__
                )
                raise ValueError(
                    f"unknown fault {name!r}; known faults: {known}"
                )
            try:
                fields[key] = float(value)
            except ValueError as exc:
                raise ValueError(
                    f"fault {name!r} needs a numeric value, got {value!r}"
                ) from exc
        return cls(
            **{
                key: (value if key == "delay_ms" else int(value))
                for key, value in fields.items()
            }
        )

    @classmethod
    def from_env(cls) -> "FaultPlan":
        spec = os.environ.get(FAULT_ENV, "")
        return cls.parse(spec) if spec else cls()

    def to_spec(self) -> str:
        """Inverse of :meth:`parse` (only non-default fields)."""
        parts = []
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value:
                parts.append(f"{name.replace('_', '-')}:{value}")
        return ",".join(parts)


class FaultInjector:
    """Counts events and fires the plan's faults at the right moments."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.sends = 0
        self.leases = 0
        self.decodes = 0

    def before_send(self, message: dict) -> bool:
        """Called per outbound message; ``False`` means drop it."""
        self.sends += 1
        if self.plan.delay_ms > 0:
            time.sleep(self.plan.delay_ms / 1000.0)
        if self.plan.drop_every and self.sends % self.plan.drop_every == 0:
            return False
        return True

    def should_die_on_lease(self) -> bool:
        """Worker-side: called once per granted lease."""
        self.leases += 1
        return (
            self.plan.die_after_leases > 0
            and self.leases >= self.plan.die_after_leases
        )

    def after_decode(self) -> str:
        """Server-side, called once per served decode.

        Returns ``"ok"``, ``"drop-conn"`` (close this connection without
        replying) or ``"kill"`` (stop the whole server).
        """
        self.decodes += 1
        if (
            self.plan.kill_server_after_decodes
            and self.decodes >= self.plan.kill_server_after_decodes
        ):
            return "kill"
        if (
            self.plan.drop_conn_after_decodes
            and self.decodes == self.plan.drop_conn_after_decodes
        ):
            return "drop-conn"
        return "ok"


__all__ = ["FAULT_ENV", "FaultInjector", "FaultPlan"]
