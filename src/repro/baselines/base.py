"""Common result type for baseline accelerator designs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BaselineDesign:
    """One baseline accelerator evaluated on one network/device pair."""

    name: str
    target: str
    quant_name: str
    fps: float
    efficiency: float  # Eq. 3, in [0, 1]
    dsp: int
    bram: int
    layer_latency_ms: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    @property
    def latency_ms(self) -> float:
        return 1000.0 / self.fps if self.fps > 0 else float("inf")
