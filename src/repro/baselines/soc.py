"""Mobile-SoC baseline: a roofline model of the Snapdragon 865's AI engine.

The paper measures the decoder at 35.8 FPS / 16.9 % efficiency on the 865
and attributes the gap to "its limited cache size, which causes frequent
data transfers and severely restricts performance". This model reproduces
that mechanism:

- compute roofline — a fixed MAC array at the AI-engine clock;
- memory roofline — every layer whose working set (input + output +
  weights) exceeds the on-chip cache round-trips its tensors through DDR at
  an effective (much lower than peak) bandwidth. Because the SoC executes
  the graph as-is, the decoder's HD intermediate feature maps (up to
  16x1024x1024) dominate and the model lands in the tens-of-FPS regime.

The peak-throughput constants are chosen so Eq. 3 reproduces the paper's
efficiency accounting (13.6 GOP x 35.8 FPS / 16.9 % ~ 2.88 TOP/s peak);
the effective DDR bandwidth is the one calibrated constant (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineDesign
from repro.ir.graph import NetworkGraph
from repro.perf.analytical import efficiency
from repro.profiler.network import profile_network
from repro.quant.schemes import QuantScheme
from repro.utils.units import GIGA


@dataclass(frozen=True)
class SocSpec:
    """A mobile SoC's AI-engine characteristics."""

    name: str
    multipliers: int
    frequency_mhz: float
    cache_bytes: int
    effective_ddr_gbps: float

    def peak_gops(self, quant: QuantScheme) -> float:
        return quant.beta * self.multipliers * self.frequency_mhz / 1e3


SNAPDRAGON_865 = SocSpec(
    name="Snapdragon 865",
    multipliers=496,
    frequency_mhz=1450.0,
    cache_bytes=3 * 1024 * 1024,
    effective_ddr_gbps=2.8,
)


class SocModel:
    """Layer-by-layer roofline evaluation of a network on a mobile SoC."""

    def __init__(self, spec: SocSpec = SNAPDRAGON_865) -> None:
        self.spec = spec

    def design(
        self,
        network: NetworkGraph,
        quant: QuantScheme,
        target: str = "",
    ) -> BaselineDesign:
        profile = profile_network(network)
        peak_macs_per_s = (
            self.spec.multipliers
            * quant.macs_per_multiplier
            * self.spec.frequency_mhz
            * 1e6
        )
        ddr_bytes_per_s = self.spec.effective_ddr_gbps * 1e9

        total_seconds = 0.0
        layer_latency_ms: dict[str, float] = {}
        for layer in profile.layers:
            weight_bytes = quant.weight_bytes(layer.params)
            act_bytes = quant.activation_bytes(
                layer.input_elements + layer.output_elements
            )
            working_set = weight_bytes + act_bytes
            compute_s = layer.macs / peak_macs_per_s
            if working_set > self.spec.cache_bytes:
                memory_s = (weight_bytes + act_bytes) / ddr_bytes_per_s
            else:
                memory_s = 0.0
            seconds = max(compute_s, memory_s)
            total_seconds += seconds
            if seconds > 0:
                layer_latency_ms[layer.name] = seconds * 1e3

        fps = 1.0 / total_seconds if total_seconds > 0 else 0.0
        gops = profile.total_ops / GIGA * fps
        return BaselineDesign(
            name=self.spec.name,
            target=target or self.spec.name,
            quant_name=quant.name,
            fps=fps,
            efficiency=efficiency(
                gops,
                quant.beta,
                self.spec.multipliers,
                self.spec.frequency_mhz,
            ),
            dsp=self.spec.multipliers,
            bram=0,
            layer_latency_ms=layer_latency_ms,
            notes=f"cache {self.spec.cache_bytes >> 20} MiB, "
            f"{self.spec.effective_ddr_gbps} GB/s effective DDR",
        )
