"""DNNBuilder-style accelerator model (Zhang et al., ICCAD 2018).

As characterized by the F-CAD paper (Sec. III):

- an *unfolded* architecture — one dedicated engine per layer, pipelined,
  so throughput is set by the slowest layer (high design specificity, high
  efficiency at small budgets);
- *two-level parallelism only* — each layer's parallel factor is
  ``cpf x kpf`` and cannot exceed ``InCh x OutCh``. A layer with few
  channels (the paper circles the thin high-resolution convs of Br. 2 in
  Fig. 3) saturates that cap and becomes a hard throughput floor that more
  resources cannot move: FPS stays flat across growing FPGAs while the
  allocator keeps spending DSPs on the other layers — exactly the
  deteriorating-efficiency behaviour of Table II.

The allocator mirrors that behaviour: repeatedly double the parallelism of
the currently slowest layer that still fits the budget (power-of-two
ladder), including layers already behind the capped bottleneck.
"""

from __future__ import annotations

import math

from repro.arch.config import StageConfig
from repro.baselines.base import BaselineDesign
from repro.construction.fusion import FusedStage
from repro.construction.reorg import PipelinePlan, build_pipeline_plan
from repro.devices.budget import ResourceBudget
from repro.dse.space import get_pf
from repro.ir.graph import NetworkGraph
from repro.perf.analytical import efficiency
from repro.perf.resources import stage_resources
from repro.quant.schemes import QuantScheme
from repro.utils.units import GIGA


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class DnnBuilderModel:
    """Design generator for the DNNBuilder architecture template."""

    name = "DNNBuilder"

    def __init__(self, frequency_mhz: float = 200.0) -> None:
        self.frequency_mhz = frequency_mhz

    # ------------------------------------------------------------------
    def _latency_cycles(self, stage: FusedStage, pf: int) -> int:
        """Latency with two-level (channel-only) parallelism."""
        cfg = get_pf(stage, pf)
        # No H-partition: fold any h the ladder produced back to 1.
        return (
            _ceil_div(stage.out_channels, cfg.kpf)
            * _ceil_div(stage.in_channels, cfg.cpf)
            * stage.conv_height
            * stage.conv_width
            * stage.kernel
            * stage.kernel
        )

    def _dsp(self, stage: FusedStage, pf: int, quant: QuantScheme) -> int:
        cfg = get_pf(stage, pf)
        return _ceil_div(cfg.cpf * cfg.kpf, quant.macs_per_multiplier)

    def _bram(self, stage: FusedStage, pf: int, quant: QuantScheme) -> int:
        cfg = get_pf(stage, pf)
        flat = StageConfig(cpf=cfg.cpf, kpf=cfg.kpf, h=1)
        return stage_resources(stage, flat, quant).bram

    # ------------------------------------------------------------------
    def design(
        self,
        network: NetworkGraph | PipelinePlan,
        budget: ResourceBudget,
        quant: QuantScheme,
        target: str = "",
    ) -> BaselineDesign:
        """Allocate the budget over an unfolded per-layer pipeline."""
        plan = (
            network
            if isinstance(network, PipelinePlan)
            else build_pipeline_plan(network)
        )
        stages = [planned.stage for planned in plan.all_stages()]
        # Two-level parallelism cap: pf <= InCh x OutCh (no H-partition).
        caps = [stage.in_channels * stage.out_channels for stage in stages]

        def totals(pf_list: list[int]) -> tuple[int, int]:
            dsp = sum(
                self._dsp(stage, pf, quant)
                for stage, pf in zip(stages, pf_list)
            )
            bram = sum(
                self._bram(stage, pf, quant)
                for stage, pf in zip(stages, pf_list)
            )
            return dsp, bram

        def allocation(beat_cycles: float) -> list[int]:
            """pf per layer for a uniform latency target, capped."""
            return [
                min(cap, max(1, math.ceil(stage.macs / beat_cycles)))
                for stage, cap in zip(stages, caps)
            ]

        # DNNBuilder allocates resources proportional to each layer's
        # compute so all stages aim at one common beat; the power-of-two
        # parallelism ladder makes usage jump in coarse steps, which is why
        # the generated designs leave part of large budgets unused (644 /
        # 1044 / 1820 DSPs in the paper's schemes 1-3). Binary-search the
        # smallest feasible beat.
        lo, hi = 1.0, float(max(stage.macs for stage in stages))
        for _ in range(64):
            mid = (lo * hi) ** 0.5
            dsp, bram = totals(allocation(mid))
            if dsp <= budget.compute and bram <= budget.memory:
                hi = mid
            else:
                lo = mid
        pfs = allocation(hi)

        latencies = [
            self._latency_cycles(stage, pf) for stage, pf in zip(stages, pfs)
        ]
        dsp, bram = totals(pfs)
        bottleneck = max(latencies)
        fps = self.frequency_mhz * 1e6 / bottleneck
        gops = sum(stage.ops for stage in stages) / GIGA * fps
        layer_latency_ms = {
            stage.name: cycles / (self.frequency_mhz * 1e3)
            for stage, cycles in zip(stages, latencies)
        }
        return BaselineDesign(
            name=self.name,
            target=target,
            quant_name=quant.name,
            fps=fps,
            efficiency=efficiency(gops, quant.beta, dsp, self.frequency_mhz),
            dsp=dsp,
            bram=bram,
            layer_latency_ms=layer_latency_ms,
            notes="unfolded pipeline, pf <= InCh x OutCh",
        )
