"""Baseline accelerator models the paper compares against (Sec. III).

These are analytical reimplementations of the published architecture
templates — the same granularity at which the paper itself evaluates them:

- :mod:`repro.baselines.dnnbuilder` — unfolded per-layer pipeline with
  two-level parallelism capped at ``InCh x OutCh`` per layer;
- :mod:`repro.baselines.hybriddnn` — folded single-engine design that
  scales by doubling the whole instance (coarse-grained);
- :mod:`repro.baselines.soc` — a mobile-SoC roofline (MAC array + cache-
  capacity-driven DDR traffic), standing in for the Snapdragon 865.
"""

from repro.baselines.base import BaselineDesign
from repro.baselines.dnnbuilder import DnnBuilderModel
from repro.baselines.hybriddnn import HybridDnnModel
from repro.baselines.soc import SNAPDRAGON_865, SocModel, SocSpec

__all__ = [
    "BaselineDesign",
    "DnnBuilderModel",
    "HybridDnnModel",
    "SNAPDRAGON_865",
    "SocModel",
    "SocSpec",
]
