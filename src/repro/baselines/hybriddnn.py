"""HybridDNN-style accelerator model (Ye et al., DAC 2020).

As characterized by the F-CAD paper (Sec. III):

- a *folded* architecture — one shared spatial/Winograd engine executes the
  layers sequentially, so the frame latency is the sum of per-layer times;
- *coarse-grained configuration* — the engine scales by doubling the whole
  instance (power-of-two MAC counts). Continuing to scale therefore needs a
  double-sized instance, and the BRAM cost of that instance is what blocks
  scheme 3 in Table II: "the coarse-grained configuration requires
  double-sized accelerator instance to continue scaling, but the BRAM
  budget is not enough" — HybridDNN generates the *same* accelerator on
  ZU9CG as on ZU17EG.

Per-layer time includes a pipeline-reconfiguration overhead and the weight
streaming of the folded engine (weights cannot stay resident because the
engine is time-shared), which is what keeps the measured efficiency in the
70 % range instead of the high 90s.
"""

from __future__ import annotations

from repro.baselines.base import BaselineDesign
from repro.construction.reorg import PipelinePlan, build_pipeline_plan
from repro.devices.budget import ResourceBudget
from repro.ir.graph import NetworkGraph
from repro.perf.analytical import efficiency
from repro.quant.schemes import QuantScheme
from repro.utils.units import GIGA

#: Cycles to drain/reconfigure the engine between layers.
LAYER_SWITCH_CYCLES = 12_000

#: Fraction of the MAC array doing useful work on an average layer: the
#: folded engine tiles every layer onto one fixed geometry, and edge tiles,
#: im2col setup and ramp-in/out idle the array part of the time. Matches
#: the ~70-78 % efficiency band the paper measures for HybridDNN.
ENGINE_UTILIZATION = 0.78

#: External memory bus width of the folded engine, bytes per cycle.
BUS_BYTES_PER_CYCLE = 16

#: BRAM cost model of one engine instance: line buffers, im2col buffers and
#: weight double-buffers all scale with the MAC array; the constant covers
#: the instruction/DMA infrastructure. Fitted to the paper's Table II
#: (P=512 -> 576 BRAM, P=1024 -> 1120 BRAM).
BRAM_PER_MAC = 1.0625
BRAM_BASE = 32


def _engine_bram(parallelism: int) -> int:
    return int(BRAM_PER_MAC * parallelism) + BRAM_BASE


class HybridDnnModel:
    """Design generator for the HybridDNN architecture template."""

    name = "HybridDNN"

    def __init__(self, frequency_mhz: float = 200.0) -> None:
        self.frequency_mhz = frequency_mhz

    def pick_parallelism(
        self, budget: ResourceBudget, quant: QuantScheme
    ) -> int:
        """Largest power-of-two engine that fits both DSP and BRAM budgets."""
        parallelism = 64
        while True:
            doubled = parallelism * 2
            dsp = doubled // quant.macs_per_multiplier
            if dsp > budget.compute or _engine_bram(doubled) > budget.memory:
                return parallelism
            parallelism = doubled

    def design(
        self,
        network: NetworkGraph | PipelinePlan,
        budget: ResourceBudget,
        quant: QuantScheme,
        target: str = "",
    ) -> BaselineDesign:
        """Size the folded engine for the budget and evaluate the network."""
        plan = (
            network
            if isinstance(network, PipelinePlan)
            else build_pipeline_plan(network)
        )
        stages = [planned.stage for planned in plan.all_stages()]
        parallelism = self.pick_parallelism(budget, quant)

        total_cycles = 0.0
        layer_latency_ms: dict[str, float] = {}
        for stage in stages:
            compute = stage.macs / (parallelism * ENGINE_UTILIZATION)
            weight_stream = (
                quant.weight_bytes(stage.weight_params + stage.bias_params)
                / BUS_BYTES_PER_CYCLE
            )
            # Weight streaming overlaps compute only partially in a folded
            # engine (the next layer's weights cannot prefetch while the
            # current layer still owns the buffers).
            cycles = max(compute, weight_stream) + 0.5 * min(
                compute, weight_stream
            )
            cycles += LAYER_SWITCH_CYCLES
            total_cycles += cycles
            layer_latency_ms[stage.name] = cycles / (self.frequency_mhz * 1e3)

        fps = self.frequency_mhz * 1e6 / total_cycles
        dsp = parallelism // quant.macs_per_multiplier
        gops = sum(stage.ops for stage in stages) / GIGA * fps
        return BaselineDesign(
            name=self.name,
            target=target,
            quant_name=quant.name,
            fps=fps,
            efficiency=efficiency(gops, quant.beta, dsp, self.frequency_mhz),
            dsp=dsp,
            bram=_engine_bram(parallelism),
            layer_latency_ms=layer_latency_ms,
            notes=f"folded engine, P={parallelism} MACs",
        )
