"""A miniature torch-style module API with an IR tracer.

The paper's flow "directly connects to popular machine learning frameworks
and takes the developed decoder models as inputs". This module provides that
ingestion path without a PyTorch dependency: users author models with
``Module``/``Sequential`` and layer objects whose constructors mirror
``torch.nn``, and :func:`trace` runs the model once on symbolic tensors to
record the IR graph.

Example::

    class TextureBranch(Module):
        def __init__(self):
            super().__init__()
            self.block = Sequential(
                Conv2d(7, 256, kernel_size=4, padding="same"),
                LeakyReLU(0.2),
                UpsamplingNearest2d(scale_factor=2),
            )

        def forward(self, x):
            return self.block(x)

    graph = trace(TextureBranch(), {"zv": TensorShape(7, 8, 8)})
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import layer as ir
from repro.ir.graph import NetworkGraph
from repro.ir.layer import BiasMode, TensorShape


@dataclass(frozen=True)
class TraceTensor:
    """A symbolic tensor flowing through a traced model."""

    node: str
    shape: TensorShape
    graph: NetworkGraph

    def reshape(self, channels: int, height: int, width: int) -> "TraceTensor":
        target = TensorShape(channels, height, width)
        name = _fresh_name(self.graph, "reshape")
        self.graph.add(name, ir.Reshape(target=target), (self.node,))
        return TraceTensor(node=name, shape=target, graph=self.graph)

    def flatten(self) -> "TraceTensor":
        name = _fresh_name(self.graph, "flatten")
        self.graph.add(name, ir.Flatten(), (self.node,))
        return TraceTensor(
            node=name,
            shape=TensorShape(self.shape.numel, 1, 1),
            graph=self.graph,
        )


def _fresh_name(graph: NetworkGraph, prefix: str) -> str:
    index = 1
    while f"{prefix}{index}" in graph:
        index += 1
    return f"{prefix}{index}"


def cat(tensors: list[TraceTensor]) -> TraceTensor:
    """Concatenate symbolic tensors along channels (``torch.cat`` analogue)."""
    if len(tensors) < 2:
        raise ValueError("cat needs at least two tensors")
    graph = tensors[0].graph
    layer = ir.Concat(num_inputs=len(tensors))
    name = _fresh_name(graph, "concat")
    graph.add(name, layer, tuple(t.node for t in tensors))
    shape = layer.infer_shape(tuple(t.shape for t in tensors))
    return TraceTensor(node=name, shape=shape, graph=graph)


class Module:
    """Base class for traceable models — subclass and define ``forward``."""

    def forward(self, *inputs: TraceTensor) -> TraceTensor:
        raise NotImplementedError

    def __call__(self, *inputs: TraceTensor) -> TraceTensor:
        return self.forward(*inputs)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = modules

    def forward(self, x: TraceTensor) -> TraceTensor:
        for module in self.modules:
            x = module(x)
        return x


class _LayerModule(Module):
    """A module that appends one IR layer when called."""

    prefix = "node"

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        raise NotImplementedError

    def forward(self, x: TraceTensor) -> TraceTensor:
        layer = self.build_layer(x.shape)
        name = _fresh_name(x.graph, self.prefix)
        x.graph.add(name, layer, (x.node,))
        shape = layer.infer_shape((x.shape,))
        return TraceTensor(node=name, shape=shape, graph=x.graph)


class Conv2d(_LayerModule):
    """Mirror of ``torch.nn.Conv2d`` plus the untied-bias extension."""

    prefix = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = "same",
        bias: bool | BiasMode = True,
    ) -> None:
        if isinstance(bias, bool):
            bias = BiasMode.TIED if bias else BiasMode.NONE
        self.args = dict(
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=kernel_size,
            stride=stride,
            padding=padding,
            bias=bias,
        )

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Conv2d(**self.args)


class Linear(_LayerModule):
    prefix = "fc"

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.bias = BiasMode.TIED if bias else BiasMode.NONE

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Linear(
            in_features=self.in_features,
            out_features=self.out_features,
            bias=self.bias,
        )


class ReLU(_LayerModule):
    prefix = "act"

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Activation(fn="relu")


class LeakyReLU(_LayerModule):
    prefix = "act"

    def __init__(self, negative_slope: float = 0.01) -> None:
        self.negative_slope = negative_slope

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Activation(fn="leaky_relu", negative_slope=self.negative_slope)


class Tanh(_LayerModule):
    prefix = "act"

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Activation(fn="tanh")


class UpsamplingNearest2d(_LayerModule):
    prefix = "up"

    def __init__(self, scale_factor: int = 2) -> None:
        self.scale_factor = scale_factor

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Upsample(scale=self.scale_factor)


class MaxPool2d(_LayerModule):
    prefix = "pool"

    def __init__(
        self,
        kernel_size: int,
        stride: int | None = None,
        padding: int | str = "valid",
    ) -> None:
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.MaxPool(
            kernel=self.kernel_size, stride=self.stride, padding=self.padding
        )


class Flatten(_LayerModule):
    prefix = "flatten"

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Flatten()


class Reshape(_LayerModule):
    prefix = "reshape"

    def __init__(self, channels: int, height: int, width: int) -> None:
        self.target = TensorShape(channels, height, width)

    def build_layer(self, in_shape: TensorShape) -> ir.Layer:
        return ir.Reshape(target=self.target)


class Concat(Module):
    """Concatenation as a module (multi-input)."""

    def forward(self, *inputs: TraceTensor) -> TraceTensor:
        return cat(list(inputs))


def trace(
    module: Module,
    input_shapes: dict[str, TensorShape],
    name: str = "traced",
) -> NetworkGraph:
    """Run ``module`` once on symbolic tensors and return the recorded graph.

    ``input_shapes`` maps input names to shapes; inputs are passed to
    ``module.forward`` in dict order.
    """
    graph = NetworkGraph(name)
    tensors = []
    for input_name, shape in input_shapes.items():
        graph.add(input_name, ir.Input(shape=shape))
        tensors.append(TraceTensor(node=input_name, shape=shape, graph=graph))
    module(*tensors)
    graph.validate()
    return graph
