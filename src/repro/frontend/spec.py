"""Declarative network descriptions.

A *spec* is a plain dict (usually loaded from JSON/YAML by the caller) that
lists nodes in order — convenient for configuration-driven experiments::

    spec = {
        "name": "tiny",
        "nodes": [
            {"name": "x", "op": "input", "shape": [3, 32, 32]},
            {"name": "c1", "op": "conv", "inputs": ["x"],
             "out_channels": 16, "kernel": 3},
            {"name": "a1", "op": "act", "inputs": ["c1"], "fn": "relu"},
        ],
    }
"""

from __future__ import annotations

from typing import Any

from repro.ir.graph import GraphError, NetworkGraph
from repro.ir.layer import (
    Activation,
    BiasMode,
    Concat,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool,
    Reshape,
    TensorShape,
    Upsample,
)


def _shape(raw: Any) -> TensorShape:
    c, h, w = raw
    return TensorShape(channels=c, height=h, width=w)


def _build_input(entry: dict[str, Any], graph: NetworkGraph) -> Input:
    return Input(shape=_shape(entry["shape"]))


def _build_conv(entry: dict[str, Any], graph: NetworkGraph) -> Conv2d:
    inputs = entry["inputs"]
    in_channels = entry.get("in_channels")
    if in_channels is None:
        in_channels = graph.infer_shapes()[inputs[0]].channels
    return Conv2d(
        in_channels=in_channels,
        out_channels=entry["out_channels"],
        kernel=entry["kernel"],
        stride=entry.get("stride", 1),
        padding=entry.get("padding", "same"),
        bias=BiasMode(entry.get("bias", "tied")),
    )


def _build_act(entry: dict[str, Any], graph: NetworkGraph) -> Activation:
    return Activation(
        fn=entry.get("fn", "relu"),
        negative_slope=entry.get("negative_slope", 0.2),
    )


def _build_upsample(entry: dict[str, Any], graph: NetworkGraph) -> Upsample:
    return Upsample(scale=entry.get("scale", 2))


def _build_pool(entry: dict[str, Any], graph: NetworkGraph) -> MaxPool:
    return MaxPool(
        kernel=entry.get("kernel", 2),
        stride=entry.get("stride"),
        padding=entry.get("padding", "valid"),
    )


def _build_linear(entry: dict[str, Any], graph: NetworkGraph) -> Linear:
    inputs = entry["inputs"]
    in_features = entry.get("in_features")
    if in_features is None:
        in_features = graph.infer_shapes()[inputs[0]].numel
    return Linear(
        in_features=in_features,
        out_features=entry["out_features"],
        bias=BiasMode(entry.get("bias", "tied")),
    )


def _build_reshape(entry: dict[str, Any], graph: NetworkGraph) -> Reshape:
    return Reshape(target=_shape(entry["shape"]))


def _build_flatten(entry: dict[str, Any], graph: NetworkGraph) -> Flatten:
    return Flatten()


def _build_concat(entry: dict[str, Any], graph: NetworkGraph) -> Concat:
    return Concat(num_inputs=len(entry["inputs"]))


_BUILDERS = {
    "input": _build_input,
    "conv": _build_conv,
    "act": _build_act,
    "upsample": _build_upsample,
    "pool": _build_pool,
    "linear": _build_linear,
    "reshape": _build_reshape,
    "flatten": _build_flatten,
    "concat": _build_concat,
}


def graph_from_spec(spec: dict[str, Any]) -> NetworkGraph:
    """Build a validated graph from a declarative spec dict."""
    graph = NetworkGraph(spec.get("name", "network"))
    for entry in spec["nodes"]:
        op = entry.get("op")
        if op not in _BUILDERS:
            known = ", ".join(sorted(_BUILDERS))
            raise GraphError(f"unknown op {op!r} in spec; known ops: {known}")
        layer = _BUILDERS[op](entry, graph)
        graph.add(entry["name"], layer, tuple(entry.get("inputs", ())))
    graph.validate()
    return graph
