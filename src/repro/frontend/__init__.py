"""Frontends that import models into the IR.

- :mod:`repro.frontend.torchlike` — a miniature ``nn.Module``-style API with
  a tracer, so decoders can be authored the way they are in popular ML
  frameworks and imported into F-CAD;
- :mod:`repro.frontend.spec` — a declarative dict/JSON network description.
"""

from repro.frontend.spec import graph_from_spec
from repro.frontend.torchlike import (
    Concat,
    Conv2d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Reshape,
    Sequential,
    Tanh,
    TraceTensor,
    UpsamplingNearest2d,
    trace,
)

__all__ = [
    "Concat",
    "Conv2d",
    "Flatten",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "Module",
    "ReLU",
    "Reshape",
    "Sequential",
    "Tanh",
    "TraceTensor",
    "UpsamplingNearest2d",
    "graph_from_spec",
    "trace",
]
