"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the framework's whole surface:

- ``models`` / ``devices``      — list what the zoo and device DB offer;
- ``profile <model>``           — the Analysis step's tables;
- ``explore <model>``           — run the F-CAD flow, optionally saving a
  markdown design report and the found configuration as JSON; with
  ``--sweep`` it explores a whole device/precision grid in one batch;
- ``simulate <model>``          — cycle-accurate validation of a saved (or
  freshly explored) configuration, with an optional utilization timeline;
- ``serve [model]``             — deploy simulated replicas of the
  explored design(s) and serve a multi-avatar decode workload on the
  coroutine scheduler or the event-heap engine (``--engine heap``, with
  ``--shape`` traffic and ``--autoscale``) (FIFO /
  deadline-EDF / fair batching) with latency/deadline SLO reporting;
  with ``--cluster`` it serves a heterogeneous replica-group cluster
  (deadline-aware routing, optional load shedding, in-process or
  socket-served replicas);
- ``experiment <name>``         — regenerate one of the paper's tables or
  figures (or the ablations).

``<model>`` is a zoo name (``repro models``) or a path to a network JSON
file produced by :func:`repro.ir.graph_to_json`.

Search commands accept ``--workers N`` to evaluate each DSE generation on
``N`` processes — results are bit-identical to the serial search at the
same seed, so parallelism is purely a wall-clock knob.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.analysis.analyzer import analyze_network
from repro.arch.serialize import config_from_json, config_to_json
from repro.devices.asic import AsicSpec
from repro.devices.fpga import get_device, list_devices
from repro.dse.objective import OBJECTIVES, RERANK_ORACLES
from repro.dse.surrogate import DEFAULT_MIN_SAMPLES, SURROGATE_MODES
from repro.dse.space import Customization
from repro.fcad.flow import FCad
from repro.fcad.report import render_markdown_report
from repro.ir.graph import NetworkGraph
from repro.ir.serialize import graph_from_json
from repro.models.zoo import get_model, list_models
from repro.quant.schemes import get_scheme
from repro.serving.policies import list_policies
from repro.serving.router import list_routers
from repro.serving.traffic import list_shapes
from repro.serving.transport import list_transports
from repro.sim.runner import simulate
from repro.sim.timeline import render_timeline


def _load_network(spec: str) -> NetworkGraph:
    """A zoo model name or a path to a serialized graph."""
    path = Path(spec)
    if path.suffix == ".json" and path.exists():
        return graph_from_json(path.read_text())
    return get_model(spec)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, with a friendly error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive number, with a friendly error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _parse_sweep_devices(text: str) -> list[str] | None:
    """Validate a ``--sweep`` device list; None (plus stderr) if malformed."""
    names = [name.strip() for name in text.split(",")]
    if not names or any(not name for name in names):
        print(
            f"error: --sweep expects a comma-separated device list, got "
            f"{text!r} (try: --sweep Z7045,ZU17EG,ZU9CG)",
            file=sys.stderr,
        )
        return None
    unknown = []
    for name in names:
        try:
            get_device(name)
        except KeyError:
            unknown.append(name)
    if unknown:
        known = ", ".join(d.name for d in list_devices())
        print(
            f"error: unknown device(s) in --sweep: {', '.join(unknown)}; "
            f"known devices: {known}",
            file=sys.stderr,
        )
        return None
    return names


def _parse_numbers(text: str, cast) -> tuple:
    return tuple(cast(part) for part in text.split(","))


def _parse_host_port(
    text: str, flag: str, allow_port_zero: bool = False
) -> tuple[str, int] | None:
    """Validate a ``HOST:PORT`` flag value; None (plus stderr) if malformed."""
    host, sep, port_text = text.rpartition(":")
    example = "127.0.0.1:7000" if not allow_port_zero else "127.0.0.1:0"
    if (
        not sep
        or not host
        or not port_text.isdigit()
        or int(port_text) > 65535
        or (int(port_text) == 0 and not allow_port_zero)
    ):
        port_rule = (
            "a port in 0..65535 (0 picks a free port)"
            if allow_port_zero
            else "a port in 1..65535"
        )
        print(
            f"error: {flag} expects HOST:PORT with {port_rule}, got "
            f"{text!r} (try: {flag} {example})",
            file=sys.stderr,
        )
        return None
    return host, int(port_text)


def _resolve_token(token: str, context: str) -> str | None:
    """Fleet connections are authenticated; resolve the shared token.

    ``--token`` wins; otherwise fall back to the ``REPRO_FLEET_TOKEN``
    environment variable (the same one ``remote:`` transports read), so
    one exported secret covers a whole fleet. Returns ``None`` (plus a
    friendly stderr message) when neither is set — callers fail fast
    instead of surfacing a raw auth error mid-connect.
    """
    import os

    from repro.serving.transport import REMOTE_TOKEN_ENV

    token = token or os.environ.get(REMOTE_TOKEN_ENV, "")
    if token:
        return token
    print(
        f"error: {context} needs a shared auth token; pass --token "
        f"<secret> or set {REMOTE_TOKEN_ENV} (the same secret on every "
        f"fleet member)",
        file=sys.stderr,
    )
    return None


def _parse_transport(text: str, token: str | None) -> str | None:
    """Validate ``--transport``; None (plus stderr) if malformed.

    Accepts the built-in transport names plus ``remote:HOST:PORT``, which
    additionally needs an auth token (``--transport-token`` or the
    ``REPRO_FLEET_TOKEN`` environment variable).
    """
    import os

    from repro.serving.transport import REMOTE_TOKEN_ENV, parse_remote_spec

    if text in list_transports():
        return text
    if text.startswith("remote:"):
        try:
            parse_remote_spec(text)
        except ValueError:
            print(
                f"error: --transport remote expects remote:HOST:PORT with "
                f"a port in 1..65535, got {text!r} "
                f"(try: --transport remote:127.0.0.1:7000)",
                file=sys.stderr,
            )
            return None
        if not token and not os.environ.get(REMOTE_TOKEN_ENV):
            print(
                f"error: --transport {text} needs an auth token; pass "
                f"--transport-token <secret> or set {REMOTE_TOKEN_ENV}",
                file=sys.stderr,
            )
            return None
        return text
    known = ", ".join([*list_transports(), "remote:HOST:PORT"])
    print(
        f"error: unknown transport {text!r}; known transports: {known}",
        file=sys.stderr,
    )
    return None


#: Design presets for ``repro serve --cluster``. Each preset explores its
#: own design point — the per-branch batch size is the paper's customization
#: knob that actually changes the architecture — and carries the serving
#: defaults that fit it (a latency tier batches eagerly under EDF; a
#: big-batch tier coalesces frames under FIFO). ``base`` uses the CLI's own
#: ``--batch``/``--policy``/``--batch-window-ms`` settings.
CLUSTER_DESIGNS = {
    "base": {"batch": None, "policy": None, "window": None},
    "latency": {"batch": 1, "policy": "edf", "window": 0.0},
    "throughput": {"batch": 4, "policy": "fifo", "window": 4.0},
}


def _parse_cluster_spec(text: str) -> list[tuple[str, int, str | None]] | None:
    """Validate ``--cluster design:replicas[:policy],...``; None if malformed."""
    usage = "(try: --cluster latency:1,throughput:3)"
    entries: list[tuple[str, int, str | None]] = []
    for part in text.split(","):
        fields = part.strip().split(":")
        if not fields or not fields[0] or len(fields) > 3:
            print(
                f"error: --cluster expects comma-separated "
                f"design:replicas[:policy] groups, got {text!r} {usage}",
                file=sys.stderr,
            )
            return None
        design = fields[0]
        if design not in CLUSTER_DESIGNS:
            known = ", ".join(sorted(CLUSTER_DESIGNS))
            print(
                f"error: unknown cluster design {design!r}; known designs: "
                f"{known}",
                file=sys.stderr,
            )
            return None
        replicas = 1
        if len(fields) >= 2:
            try:
                replicas = int(fields[1])
            except ValueError:
                replicas = 0
            if replicas < 1:
                print(
                    f"error: --cluster replica counts must be positive "
                    f"integers, got {fields[1]!r} in {part.strip()!r} {usage}",
                    file=sys.stderr,
                )
                return None
        policy = None
        if len(fields) == 3:
            policy = fields[2]
            if policy not in list_policies():
                known = ", ".join(list_policies())
                print(
                    f"error: unknown policy {policy!r} in --cluster group "
                    f"{part.strip()!r}; known policies: {known}",
                    file=sys.stderr,
                )
                return None
        entries.append((design, replicas, policy))
    return entries


def _customization(args: argparse.Namespace, num_branches: int) -> Customization:
    batches = (
        _parse_numbers(args.batch, int)
        if args.batch
        else tuple([1] * num_branches)
    )
    priorities = (
        _parse_numbers(args.priority, float)
        if args.priority
        else tuple([1.0] * num_branches)
    )
    return Customization(batch_sizes=batches, priorities=priorities)


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device", default="ZU9CG", help="FPGA name (see `devices`)")
    parser.add_argument("--quant", default="int8", choices=["int8", "int16"])
    parser.add_argument("--batch", help="per-branch batch sizes, e.g. 1,2,2")
    parser.add_argument("--priority", help="per-branch priorities, e.g. 1,1,2")
    parser.add_argument("--iterations", type=_positive_int, default=10)
    parser.add_argument("--population", type=_positive_int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="processes evaluating each DSE generation (1 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--asic-macs",
        type=int,
        help="target an ASIC with this many MAC units instead of an FPGA",
    )
    parser.add_argument("--asic-sram-kb", type=int, default=4096)
    parser.add_argument("--asic-bandwidth-gbps", type=float, default=25.6)


def _target(args: argparse.Namespace):
    if args.asic_macs:
        return AsicSpec(
            name="cli-asic",
            mac_units=args.asic_macs,
            onchip_buffer_kb=args.asic_sram_kb,
            bandwidth_gbps=args.asic_bandwidth_gbps,
        )
    return get_device(args.device)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_models(args: argparse.Namespace) -> int:
    """List every model in the zoo."""
    for name in list_models():
        print(name)
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    """List the FPGA device database."""
    for device in list_devices():
        print(
            f"{device.name:8s} {device.family:18s} {device.dsp:5d} DSP  "
            f"{device.bram_18k:5d} BRAM18K  {device.bandwidth_gbps:.1f} GB/s"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the Analysis step and print its tables."""
    network = _load_network(args.model)
    print(analyze_network(network).render())
    return 0


def _sweep_summary(results) -> str:
    rows = []
    for result in results:
        perf = result.dse.best_perf
        rows.append(
            [
                result.network_name,
                f"{result.budget.compute}dsp",
                result.quant.name,
                f"{perf.fps:.1f}",
                "yes" if perf.fps >= 90.0 else "no",
                f"{100 * perf.overall_efficiency:.1f}",
                f"{perf.total_dsp}",
                f"{perf.total_bram}",
                f"{result.dse.runtime_seconds:.1f}",
                f"{100 * result.dse.cache_hit_rate:.0f}",
            ]
        )
    from repro.utils.tables import render_table

    return render_table(
        [
            "model", "budget", "quant", "FPS", "VR", "eff %",
            "DSP", "BRAM", "DSE s", "cache %",
        ],
        rows,
        title="Batch sweep results",
    )


@contextmanager
def _search_profiler(enabled: bool, out: str | None = None):
    """cProfile the wrapped search and print the top-20 cumulative hotspots.

    This is how perf work on the DSE should start: measure first. The
    table makes it obvious whether time goes to Algorithm-2 solves, cache
    bookkeeping, or pool dispatch before anyone reaches for a fix.
    ``out`` additionally dumps the full raw :mod:`pstats` data to a file
    for offline digging (``python -m pstats <file>``, snakeviz, etc.).
    """
    if not enabled and out is None:
        yield
        return
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        if out is not None:
            stats.dump_stats(out)
            print(f"search profile written to {out}")
        if enabled:
            stats.sort_stats("cumulative").print_stats(20)
            print("\n--- search profile (top 20 by cumulative time) ---")
            print(stream.getvalue().rstrip())


def cmd_explore(args: argparse.Namespace) -> int:
    """Run the full F-CAD flow; optionally save config/report artifacts."""
    network = _load_network(args.model)
    customization = _customization(args, len(network.output_names()))
    cache = None
    if args.cache_file:
        from repro.dse.cache import FileEvalCache

        cache = FileEvalCache(args.cache_file)
        print(
            f"evaluation cache {args.cache_file}: "
            f"{len(cache)} entries warm"
        )
    try:
        if args.sweep is not None:
            from repro.fcad.flow import run_sweep, sweep_grid

            if args.asic_macs:
                print(
                    "error: --sweep takes FPGA device names and cannot be "
                    "combined with --asic-macs",
                    file=sys.stderr,
                )
                return 2
            devices = _parse_sweep_devices(args.sweep)
            if devices is None:
                return 2
            quants = (
                [q.strip() for q in args.sweep_quants.split(",")]
                if args.sweep_quants
                else [args.quant]
            )
            with _search_profiler(args.profile, args.profile_out):
                results = run_sweep(
                    sweep_grid(
                        networks=[network],
                        devices=devices,
                        quants=quants,
                        customization=customization,
                        alpha=args.alpha,
                    ),
                    iterations=args.iterations,
                    population=args.population,
                    seed=args.seed,
                    workers=args.workers,
                    cache=cache,
                    objective=args.objective,
                    rerank_oracle=args.rerank,
                    rerank_top_k=args.rerank_top_k,
                    surrogate=args.surrogate,
                    surrogate_min_samples=args.surrogate_min_samples,
                )
            print(_sweep_summary(results))
            stats = [
                r.dse.surrogate_stats
                for r in results
                if r.dse.surrogate_stats is not None
            ]
            if stats:
                print(
                    f"surrogate ({stats[0].mode}): "
                    f"{sum(s.pruned_candidates for s in stats)} candidates "
                    f"pruned ({sum(s.pruned_buckets for s in stats)} bucket "
                    f"solves skipped), "
                    f"{sum(s.false_prunes for s in stats)} false prunes "
                    f"across {len(stats)} searched cases"
                )
            if args.save_config or args.report:
                print(
                    "(--save-config/--report apply to single-case "
                    "explore only)"
                )
            return 0
        flow = FCad(
            network=network,
            device=_target(args),
            quant=args.quant,
            customization=customization,
            alpha=args.alpha,
        )
        with _search_profiler(args.profile, args.profile_out):
            result = flow.run(
                iterations=args.iterations,
                population=args.population,
                seed=args.seed,
                workers=args.workers,
                cache=cache,
                objective=args.objective,
                rerank_oracle=args.rerank,
                rerank_top_k=args.rerank_top_k,
                surrogate=args.surrogate,
                surrogate_min_samples=args.surrogate_min_samples,
            )
        print(result.render())
        dse = result.dse
        print(
            f"DSE cache: {dse.cache_hits}/{dse.cache_lookups} bucket hits "
            f"({100 * dse.bucket_hit_rate:.0f}%), "
            f"{dse.stage_hits}/{dse.stage_lookups} stage-memo hits "
            f"({100 * dse.stage_hit_rate:.0f}%), "
            f"{dse.evaluations} Algorithm-2 solves"
        )
        print(
            f"DSE phases: eval {dse.eval_seconds:.2f}s, cache "
            f"{dse.cache_seconds:.2f}s, pool overhead "
            f"{dse.overhead_seconds:.2f}s"
        )
        if dse.surrogate_stats is not None:
            ss = dse.surrogate_stats
            print(
                f"surrogate ({ss.mode}): {ss.pruned_candidates} candidates "
                f"pruned ({ss.pruned_buckets} bucket solves skipped, "
                f"{ss.solved_buckets} solved), {ss.predictions} predictions, "
                f"{ss.false_prunes}/{ss.audited} audited false prunes, "
                f"model {ss.model_samples} samples / {ss.refits} refits"
            )
        print(
            f"objective: {dse.objective}; oracle stages: "
            + "; ".join(
                f"{s.name} {s.invocations} invocations "
                f"({s.cache_hits} cache hits)"
                for s in dse.oracle_stats
            )
        )
        metrics = dse.best_metrics
        if metrics is not None and metrics.p99_ms is not None:
            print(
                f"selected design under the canned serving workload: "
                f"p99 {metrics.p99_ms:.2f} ms, deadline-miss "
                f"{100 * (metrics.deadline_miss_rate or 0.0):.1f}%, "
                f"throughput {metrics.throughput_fps:.1f} FPS"
            )
        if args.save_config:
            Path(args.save_config).write_text(
                config_to_json(result.dse.best_config)
            )
            print(f"\nconfiguration written to {args.save_config}")
        if args.report:
            Path(args.report).write_text(render_markdown_report(result))
            print(f"design report written to {args.report}")
        return 0
    finally:
        if cache is not None:
            persisted = cache.pending_writes
            cache.close()
            if persisted:
                print(
                    f"evaluation cache {args.cache_file}: "
                    f"{persisted} new entries persisted"
                )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Validate a configuration with the cycle-accurate simulator."""
    network = _load_network(args.model)
    from repro.construction.reorg import build_pipeline_plan

    plan = build_pipeline_plan(network)
    quant = get_scheme(args.quant)
    target = _target(args)
    if args.config:
        config = config_from_json(Path(args.config).read_text())
    else:
        result = FCad(
            network=network,
            device=target,
            quant=quant,
            customization=_customization(args, plan.num_branches),
        ).run(
            iterations=args.iterations,
            population=args.population,
            seed=args.seed,
            workers=args.workers,
        )
        config = result.dse.best_config
    report = simulate(
        plan=plan,
        config=config,
        quant=quant,
        bandwidth_gbps=target.budget().bandwidth_gbps,
        frequency_mhz=target.default_frequency_mhz,
        frames=args.frames,
        warmup=max(1, args.frames // 4),
    )
    for idx, fps in enumerate(report.branch_fps):
        print(f"Br.{idx + 1}: {fps:.1f} FPS (steady state)")
    print(f"end-to-end over {args.frames} frames: {report.end_to_end_fps:.1f} FPS")
    print(f"whole-run efficiency: {100 * report.efficiency:.1f}%")
    if args.timeline:
        print()
        print(render_timeline(report.stats, width=args.timeline_width))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Explore design(s), deploy replicas, serve a multi-avatar workload."""
    from repro.serving import report_to_json, serve_from_result

    # Validate every workload knob before the (expensive) design search.
    cluster_spec = None
    if args.cluster is not None:
        cluster_spec = _parse_cluster_spec(args.cluster)
        if cluster_spec is None:
            return 2
    if _parse_transport(args.transport, args.transport_token) is None:
        return 2
    if args.transport_token:
        import os

        from repro.serving.transport import REMOTE_TOKEN_ENV

        os.environ[REMOTE_TOKEN_ENV] = args.transport_token
    if args.transport_timeout is not None and args.transport == "inprocess":
        print(
            "error: --transport-timeout bounds a wire; it needs "
            "--transport socket or --transport remote:HOST:PORT",
            file=sys.stderr,
        )
        return 2
    chaos = None
    if args.chaos is not None:
        from repro.serving import ChaosPlan

        try:
            chaos = ChaosPlan.parse(args.chaos)
        except ValueError as exc:
            print(f"error: bad --chaos spec: {exc}", file=sys.stderr)
            return 2
    if args.max_retries is not None and args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    recovery = None
    if (
        chaos is not None
        or args.hedge
        or args.max_retries is not None
        or args.replace_after_ms is not None
    ):
        from repro.serving import RecoveryPolicy

        defaults = RecoveryPolicy()
        recovery = RecoveryPolicy(
            max_retries=(
                defaults.max_retries
                if args.max_retries is None
                else args.max_retries
            ),
            hedge=args.hedge,
            replace_after_ms=args.replace_after_ms,
        )
    tiers: tuple[float, ...] = ()
    if args.deadline_tiers is not None:
        try:
            tiers = _parse_numbers(args.deadline_tiers, float)
        except ValueError:
            print(
                f"error: --deadline-tiers expects comma-separated numbers, "
                f"got {args.deadline_tiers!r} (try: --deadline-tiers 25,100)",
                file=sys.stderr,
            )
            return 2
        if not tiers or any(tier <= 0 for tier in tiers):
            print(
                "error: --deadline-tiers budgets must all be positive",
                file=sys.stderr,
            )
            return 2
    frame_interval_ms = 1000.0 / args.avatar_fps
    if not 0 <= args.jitter_ms < frame_interval_ms:
        print(
            f"error: --jitter-ms must be in [0, {frame_interval_ms:.1f}) — "
            f"less than one frame interval at {args.avatar_fps:g} FPS",
            file=sys.stderr,
        )
        return 2
    if args.batch_window_ms < 0:
        print("error: --batch-window-ms must be >= 0", file=sys.stderr)
        return 2
    if args.sim_frames < 2:
        print(
            "error: --sim-frames must be >= 2 (fill vs steady state needs "
            "at least two simulated frames)",
            file=sys.stderr,
        )
        return 2
    if args.engine == "heap":
        if args.real_time:
            print(
                "error: --engine heap runs on simulated time only "
                "(drop --real-time)",
                file=sys.stderr,
            )
            return 2
        if args.transport != "inprocess":
            print(
                "error: --engine heap serves in-process replicas only "
                "(drop --transport)",
                file=sys.stderr,
            )
            return 2
    elif args.shape or args.autoscale:
        print(
            "error: --shape and --autoscale need --engine heap",
            file=sys.stderr,
        )
        return 2
    if args.shape and args.duration is None:
        print(
            "error: --shape sizes the session by time; add --duration",
            file=sys.stderr,
        )
        return 2
    if args.churn and args.shape != "steady":
        print(
            "error: --churn applies to --shape steady",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.churn <= 1.0:
        print("error: --churn must be in [0, 1]", file=sys.stderr)
        return 2

    frames_per_avatar = args.frames
    if args.duration is not None:
        from repro.serving.workload import frames_for_duration

        frames_per_avatar = frames_for_duration(
            args.duration, args.avatar_fps
        )

    network = _load_network(args.model)
    num_branches = len(network.output_names())

    if cluster_spec is None:
        result = FCad(
            network=network,
            device=_target(args),
            quant=args.quant,
            customization=_customization(args, num_branches),
        ).run(
            iterations=args.iterations,
            population=args.population,
            seed=args.seed,
            workers=args.workers,
        )
        profile = result.frame_latency_profile(frames=args.sim_frames)
        print(
            f"design: {result.fps:.1f} FPS steady decode rate; per replica: "
            f"first frame {profile.first_frame_ms:.2f} ms, then one per "
            f"{profile.steady_interval_ms:.2f} ms"
        )
        if args.engine == "heap":
            from repro.serving import pool_from_result, serve_trace

            trace = _heap_trace(args, tiers, frames_per_avatar)
            autoscale = _heap_autoscale(args)
            if args.shed or autoscale is not None:
                report = serve_trace(
                    result.serving_group(
                        replicas=args.replicas,
                        policy=args.policy,
                        batch_window_ms=args.batch_window_ms,
                        max_batch=args.max_batch,
                        profile=profile,
                    ),
                    trace,
                    admission=args.shed or None,
                    autoscale=autoscale,
                    chaos=chaos,
                    recovery=recovery,
                )
            else:
                report = serve_trace(
                    pool_from_result(
                        result,
                        replicas=args.replicas,
                        max_batch=args.max_batch,
                        profile=profile,
                    ),
                    trace,
                    policy=args.policy,
                    batch_window_ms=args.batch_window_ms,
                    max_batch=args.max_batch,
                    chaos=chaos,
                    recovery=recovery,
                )
        elif args.shed:
            # Admission control needs the cluster front door; a single
            # group of the explored design keeps the rest identical.
            from repro.serving import AvatarWorkload, serve_cluster

            report = serve_cluster(
                [
                    result.serving_group(
                        replicas=args.replicas,
                        policy=args.policy,
                        batch_window_ms=args.batch_window_ms,
                        max_batch=args.max_batch,
                        transport=_serve_transport(args),
                        profile=profile,
                    )
                ],
                AvatarWorkload(
                    avatars=args.avatars,
                    frames_per_avatar=frames_per_avatar,
                    frame_interval_ms=1000.0 / args.avatar_fps,
                    deadline_ms=args.deadline_ms,
                    deadline_tiers=tiers,
                    jitter_ms=args.jitter_ms,
                    seed=args.seed,
                ),
                admission=True,
                real_time=args.real_time,
                chaos=chaos,
                recovery=recovery,
            )
        else:
            report = serve_from_result(
                result,
                avatars=args.avatars,
                replicas=args.replicas,
                policy=args.policy,
                frames_per_avatar=frames_per_avatar,
                avatar_fps=args.avatar_fps,
                deadline_ms=args.deadline_ms,
                deadline_tiers=tiers,
                jitter_ms=args.jitter_ms,
                batch_window_ms=args.batch_window_ms,
                max_batch=args.max_batch,
                seed=args.seed,
                real_time=args.real_time,
                profile=profile,
                transport=_serve_transport(args),
                chaos=chaos,
                recovery=recovery,
            )
    else:
        report = _serve_cluster_session(
            args, network, num_branches, cluster_spec, tiers,
            frames_per_avatar, chaos, recovery,
        )
    print()
    print(report.render())
    if args.json:
        Path(args.json).write_text(report_to_json(report) + "\n")
        print(f"\nserving report written to {args.json}")
    return 0


def _serve_transport(args: argparse.Namespace):
    """The transport ``repro serve`` dispatches through.

    With ``--transport-timeout`` set this builds a fresh instance per
    call (each scheduler owns its wire — cluster groups must not share a
    socket); otherwise the name passes through and each scheduler builds
    its own default-timeout transport.
    """
    if args.transport_timeout is None:
        return args.transport
    from repro.serving import get_transport

    return get_transport(args.transport, timeout_s=args.transport_timeout)


def _heap_trace(args: argparse.Namespace, tiers, frames_per_avatar: int):
    """The request stream for a heap-engine session: shape or workload."""
    if args.shape:
        from repro.serving import make_trace

        params = {}
        if args.shape == "steady" and args.churn:
            params["churn"] = args.churn
        return make_trace(
            avatars=args.avatars,
            duration_s=args.duration,
            shape=args.shape,
            avatar_fps=args.avatar_fps,
            deadline_ms=args.deadline_ms,
            deadline_tiers=tiers,
            jitter_ms=args.jitter_ms,
            seed=args.seed,
            **params,
        )
    from repro.serving import AvatarWorkload

    return AvatarWorkload(
        avatars=args.avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / args.avatar_fps,
        deadline_ms=args.deadline_ms,
        deadline_tiers=tiers,
        jitter_ms=args.jitter_ms,
        seed=args.seed,
    )


def _heap_autoscale(args: argparse.Namespace):
    """The heap engine's autoscaling policy, or ``None`` when off."""
    if not args.autoscale:
        return None
    from repro.serving import AutoscalePolicy

    return AutoscalePolicy(
        warmup_ms=args.autoscale_warmup_ms,
        max_replicas=args.autoscale_max,
    )


def _serve_cluster_session(
    args: argparse.Namespace,
    network: NetworkGraph,
    num_branches: int,
    cluster_spec: list[tuple[str, int, str | None]],
    tiers: tuple[float, ...],
    frames_per_avatar: int,
    chaos=None,
    recovery=None,
):
    """Explore one design per cluster preset and serve the mixed cluster."""
    from repro.serving import AvatarWorkload, serve_cluster

    results = {}
    for design, _, _ in cluster_spec:
        if design in results:
            continue
        preset = CLUSTER_DESIGNS[design]
        if preset["batch"] is None:
            customization = _customization(args, num_branches)
        else:
            customization = Customization(
                batch_sizes=(preset["batch"],) * num_branches,
                priorities=(1.0,) * num_branches,
            )
        results[design] = FCad(
            network=network,
            device=_target(args),
            quant=args.quant,
            customization=customization,
        ).run(
            iterations=args.iterations,
            population=args.population,
            seed=args.seed,
            workers=args.workers,
        )
        print(
            f"design {design!r}: {results[design].fps:.1f} FPS steady "
            f"decode rate"
        )
    design_counts = {d: sum(1 for s in cluster_spec if s[0] == d) for d, _, _ in cluster_spec}
    groups = []
    for index, (design, replicas, policy) in enumerate(cluster_spec):
        preset = CLUSTER_DESIGNS[design]
        name = design if design_counts[design] == 1 else f"{design}{index}"
        groups.append(
            results[design].serving_group(
                name=name,
                replicas=replicas,
                policy=policy or preset["policy"] or args.policy,
                batch_window_ms=(
                    preset["window"]
                    if preset["window"] is not None
                    else args.batch_window_ms
                ),
                max_batch=args.max_batch,
                transport=_serve_transport(args),
                sim_frames=args.sim_frames,
            )
        )
    if args.engine == "heap":
        from repro.serving import serve_trace

        return serve_trace(
            groups,
            _heap_trace(args, tiers, frames_per_avatar),
            router=args.router,
            admission=args.shed or None,
            autoscale=_heap_autoscale(args),
            chaos=chaos,
            recovery=recovery,
        )
    workload = AvatarWorkload(
        avatars=args.avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / args.avatar_fps,
        deadline_ms=args.deadline_ms,
        deadline_tiers=tiers,
        jitter_ms=args.jitter_ms,
        seed=args.seed,
    )
    return serve_cluster(
        groups,
        workload,
        router=args.router,
        admission=args.shed or None,
        real_time=args.real_time,
        chaos=chaos,
        recovery=recovery,
    )


def cmd_fleet_coordinator(args: argparse.Namespace) -> int:
    """Shard a device sweep across a worker fleet; merge deterministically."""
    import hashlib
    import json as json_module

    from repro.dist.coordinator import FleetSpec, run_fleet_sweep
    from repro.dist.faults import FaultPlan
    from repro.fcad.flow import sweep_grid

    token = _resolve_token(args.token, "repro fleet coordinator")
    if token is None:
        return 2
    listen = _parse_host_port(args.listen, "--listen", allow_port_zero=True)
    if listen is None:
        return 2
    devices = _parse_sweep_devices(args.sweep)
    if devices is None:
        return 2
    worker_faults = tuple(args.worker_fault or ())
    for fault in worker_faults:
        try:
            FaultPlan.parse(fault)
        except ValueError as exc:
            print(f"error: bad --worker-fault spec: {exc}", file=sys.stderr)
            return 2
    quants = (
        [q.strip() for q in args.sweep_quants.split(",")]
        if args.sweep_quants
        else [args.quant]
    )
    network = _load_network(args.model)
    flows = sweep_grid(networks=[network], devices=devices, quants=quants)
    # sweep_grid iterates devices × quants in order; keep matching labels.
    labels = [(device, quant) for device in devices for quant in quants]
    engines = [flow.prepare()[2] for flow in flows]
    fleet = FleetSpec(
        workers=args.workers,
        host=listen[0],
        port=listen[1],
        token=token,
        lease_timeout_s=args.lease_timeout,
        checkpoint=args.checkpoint,
        timeout_s=args.timeout,
        worker_faults=worker_faults,
    )
    stats: dict[str, int] = {}
    results = run_fleet_sweep(
        engines,
        fleet,
        iterations=args.iterations,
        population=args.population,
        seed=args.seed,
        stats=stats,
    )
    cases = []
    for (device, quant), result in zip(labels, results):
        config_json = config_to_json(result.best_config)
        cases.append(
            {
                "device": device,
                "quant": quant,
                "best_fitness": result.best_fitness,
                "fps": result.best_perf.fps,
                "config_sha1": hashlib.sha1(
                    config_json.encode()
                ).hexdigest(),
                "history": list(result.history),
            }
        )
        print(
            f"{device:>10} {quant:>6}: fitness "
            f"{result.best_fitness:.4f}, {result.best_perf.fps:.1f} fps"
        )
    print(
        f"fleet: {stats['shards']} shards, {stats['workers']} workers, "
        f"{stats['leases']} leases ({stats['releases']} re-leased), "
        f"{stats['cache_entries']} cache entries shared, "
        f"{stats['resumed']} resumed from checkpoint"
    )
    if args.json:
        # Deliberately excludes every timing field: two runs of the same
        # sweep must produce byte-identical files (the CI gate cmp's them).
        Path(args.json).write_text(
            json_module.dumps({"cases": cases}, indent=2) + "\n"
        )
        print(f"sweep results written to {args.json}")
    return 0


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    """Join a coordinator and solve sweep shards until drained."""
    from repro.dist.worker import run_worker

    if not args.connect:
        print(
            "error: a worker needs its coordinator's address; pass "
            "--connect HOST:PORT (try: --connect 127.0.0.1:7000)",
            file=sys.stderr,
        )
        return 2
    target = _parse_host_port(args.connect, "--connect")
    if target is None:
        return 2
    token = _resolve_token(args.token, "repro fleet worker")
    if token is None:
        return 2
    return run_worker(target[0], target[1], token=token)


def cmd_fleet_replicas(args: argparse.Namespace) -> int:
    """Serve a persistent replica server for remote: transports."""
    from repro.dist.remote_transport import serve_replicas

    listen = _parse_host_port(args.listen, "--listen", allow_port_zero=True)
    if listen is None:
        return 2
    token = _resolve_token(args.token, "repro fleet replicas")
    if token is None:
        return 2
    try:
        return serve_replicas(listen[0], listen[1], token=token)
    except KeyboardInterrupt:
        return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Explore a design and emit the HLS project skeleton."""
    network = _load_network(args.model)
    flow = FCad(
        network=network,
        device=_target(args),
        quant=args.quant,
        customization=_customization(args, len(network.output_names())),
    )
    result = flow.run(
        iterations=args.iterations,
        population=args.population,
        seed=args.seed,
        workers=args.workers,
    )
    from repro.codegen.hls import generate_project

    written = generate_project(result.accelerator(), args.output)
    print(f"explored design: {result.fps:.1f} FPS, "
          f"{100 * result.efficiency:.1f}% efficiency")
    for path in written:
        print(f"  wrote {path}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one of the paper's tables/figures or an ablation."""
    from repro import experiments

    runners = {
        "table1": experiments.run_table1,
        "table2": experiments.run_table2,
        "fig3": experiments.run_fig3,
        "fig67": experiments.run_fig67,
        "table4": experiments.run_table4,
        "table5": experiments.run_table5,
        "convergence": experiments.run_convergence,
        "family": experiments.run_decoder_family,
        "energy": experiments.run_energy_study,
        "ablation-parallelism": experiments.run_ablation_parallelism,
        "ablation-search": experiments.run_ablation_search,
        "ablation-alpha": experiments.run_ablation_alpha,
        "ablation-batch": experiments.run_ablation_batch,
    }
    result = runners[args.name]()
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="F-CAD: explore hardware accelerators for codec avatar decoding",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list zoo models").set_defaults(func=cmd_models)
    sub.add_parser("devices", help="list FPGA devices").set_defaults(func=cmd_devices)

    p = sub.add_parser("profile", help="profile a network (Analysis step)")
    p.add_argument("model")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "explore",
        help="run the F-CAD flow (single case or batch sweep)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "parallel search and sweeps:\n"
            "  repro explore codec_avatar_decoder --workers 4\n"
            "      evaluate each DSE generation on 4 processes; the found\n"
            "      design is bit-identical to --workers 1 at the same seed\n"
            "  repro explore codec_avatar_decoder --sweep Z7045,ZU17EG,ZU9CG \\\n"
            "      --sweep-quants int8,int16 --workers 4\n"
            "      explore the whole device x precision grid in one batch;\n"
            "      all cases share one evaluation cache and duplicate cases\n"
            "      are searched only once\n"
            "objectives and staged re-ranking:\n"
            "  repro explore codec_avatar_decoder --objective slo \\\n"
            "      --rerank serving --rerank-top-k 4\n"
            "      score every candidate analytically, replay each\n"
            "      generation's top 4 through the serving layer, and pick\n"
            "      the design with the best p99/deadline-miss under load\n"
            "surrogate-accelerated search:\n"
            "  repro explore codec_avatar_decoder --cache-file evals.db \\\n"
            "      --surrogate prune\n"
            "      fit a cheap cost model on the warm cache and skip\n"
            "      Algorithm-2 solves for candidates it confidently rules\n"
            "      out; --surrogate verify only prunes trajectory-safe\n"
            "      candidates (final design identical to --surrogate off)"
        ),
    )
    p.add_argument("model")
    _add_target_args(p)
    p.add_argument("--save-config", help="write the found config JSON here")
    p.add_argument("--report", help="write a markdown design report here")
    p.add_argument(
        "--sweep",
        help="comma-separated device list: explore every device in one "
        "batch with a shared evaluation cache",
    )
    p.add_argument(
        "--sweep-quants",
        help="comma-separated quant schemes for --sweep (default: --quant)",
    )
    p.add_argument(
        "--cache-file",
        help="persist the evaluation cache to this SQLite file; a later "
        "explore pointed at the same file warm-starts from it (entries "
        "are objective-independent, so switching --objective keeps hits)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the search and print the top-20 cumulative hotspots",
    )
    p.add_argument(
        "--profile-out",
        metavar="PATH",
        help="dump the full raw pstats profile of the search to this file "
        "(works with or without --profile)",
    )
    p.add_argument(
        "--surrogate",
        default="off",
        choices=list(SURROGATE_MODES),
        help="learned cost-model filter on the eval path: 'prune' skips "
        "Algorithm-2 solves for candidates confidently below the "
        "incumbent best (fastest; swarm trajectory may drift within the "
        "audited margin), 'verify' prunes only trajectory-safe "
        "candidates so the final design is identical to 'off'",
    )
    p.add_argument(
        "--surrogate-min-samples",
        type=_positive_int,
        default=DEFAULT_MIN_SAMPLES,
        help="training-set size (cached bucket solves) the surrogate "
        "needs before it starts predicting; below it the filter "
        "passes everything through to the exact solver",
    )
    p.add_argument(
        "--objective",
        default="paper",
        choices=list(OBJECTIVES),
        help="fitness the search maximizes: the paper's Sec. VI-B1 "
        "weighted-FPS score, p99-under-load SLOs, or an equal blend",
    )
    p.add_argument(
        "--rerank",
        default="none",
        choices=list(RERANK_ORACLES),
        help="expensive oracle that re-measures each generation's "
        "analytical top-K candidates (cycle-accurate sim or a canned "
        "serving-workload replay) and selects the final design",
    )
    p.add_argument(
        "--rerank-top-k",
        type=_positive_int,
        default=4,
        help="candidates per generation the re-rank oracle re-measures",
    )
    p.add_argument(
        "--alpha",
        type=_positive_float,
        default=0.05,
        help="variance-penalty weight of the paper objective (and the "
        "SLO objective's analytical-stage proxy)",
    )
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("simulate", help="cycle-accurate validation")
    p.add_argument("model")
    _add_target_args(p)
    p.add_argument("--config", help="configuration JSON (default: explore first)")
    p.add_argument("--frames", type=int, default=8)
    p.add_argument("--timeline", action="store_true", help="print a Gantt timeline")
    p.add_argument("--timeline-width", type=int, default=72)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="serve a multi-avatar decode workload on simulated replicas",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "serving sessions:\n"
            "  repro serve --avatars 64 --replicas 4 --policy edf --seed 0\n"
            "      explore a design for the default decoder, deploy 4\n"
            "      simulated replicas, and serve 64 concurrent avatars under\n"
            "      earliest-deadline-first batching; runs on a virtual clock,\n"
            "      so the report is bit-identical across runs at one seed\n"
            "  repro serve --avatars 32 --replicas 2 --policy fair \\\n"
            "      --deadline-tiers 25,100 --json serving.json\n"
            "      mixed SLO tiers (speakers at 25 ms, listeners at 100 ms)\n"
            "      with per-avatar fairness; archive the SLO report as JSON\n"
            "heterogeneous clusters:\n"
            "  repro serve --cluster latency:1,throughput:3 \\\n"
            "      --router deadline --shed --deadline-tiers 20,60\n"
            "      explore a low-latency design (batch 1) and a big-batch\n"
            "      design (batch 4), deploy them as two replica groups,\n"
            "      route tight deadlines to the latency tier, and shed\n"
            "      requests that would miss their deadline anyway\n"
            "  repro serve --transport socket --avatars 8 --duration 1\n"
            "      serve ~1 second of traffic with the replicas hosted by\n"
            "      a subprocess behind a local socket\n"
            "chaos engineering (deterministic fault injection):\n"
            "  repro serve --replicas 4 --chaos die-at:0:200,die-at:1:400 \\\n"
            "      --max-retries 2 --replace-after-ms 500 --seed 0\n"
            "      kill two replicas mid-session; in-flight frames retry\n"
            "      within their deadline budget, cold replacements heal\n"
            "      capacity, and the report counts every fault — the same\n"
            "      seed reproduces the same faulty run bit for bit\n"
            "the event-heap engine (large sessions):\n"
            "  repro serve --engine heap --shape diurnal --avatars 100000 \\\n"
            "      --duration 60 --avatar-fps 1 --autoscale --shed\n"
            "      100k avatars joining and leaving over a diurnal cycle on\n"
            "      the vectorized event-heap engine, autoscaling the replica\n"
            "      fleet as concurrency rises and falls; same SLO report,\n"
            "      orders of magnitude more requests per second of wall time"
        ),
    )
    p.add_argument(
        "model",
        nargs="?",
        default="codec_avatar_decoder",
        help="zoo model or network JSON (default: codec_avatar_decoder)",
    )
    _add_target_args(p)
    # A serving demo needs a plausible design, not the paper-size search.
    p.set_defaults(iterations=4, population=24)
    p.add_argument(
        "--avatars", type=_positive_int, default=16,
        help="concurrent avatar streams (default 16)",
    )
    p.add_argument(
        "--replicas", type=_positive_int, default=1,
        help="accelerator replicas to deploy (default 1; ignored with "
        "--cluster, where each group sets its own count)",
    )
    p.add_argument(
        "--policy", default="fifo", choices=list_policies(),
        help="batch selection policy (default fifo)",
    )
    p.add_argument(
        "--cluster",
        help="serve a heterogeneous cluster instead of one pool: "
        "comma-separated design:replicas[:policy] groups, designs from "
        f"{{{', '.join(sorted(CLUSTER_DESIGNS))}}} "
        "(e.g. latency:1,throughput:3)",
    )
    p.add_argument(
        "--router", default="deadline", choices=list_routers(),
        help="request routing across --cluster groups (default deadline)",
    )
    p.add_argument(
        "--shed", action="store_true",
        help="enable admission control: bounded queues plus "
        "predicted-deadline-miss load shedding (tracked as the shed_rate "
        "SLO); works with --cluster or on a single pool",
    )
    p.add_argument(
        "--transport", default="inprocess",
        help="replica transport: in-process replicas (default), a "
        "socket-served subprocess (socket), or a persistent remote "
        "replica server (remote:HOST:PORT — see `repro fleet replicas`)",
    )
    p.add_argument(
        "--transport-token",
        help="shared auth secret for remote: transports (or set "
        "REPRO_FLEET_TOKEN)",
    )
    p.add_argument(
        "--transport-timeout", type=_positive_float, metavar="SECONDS",
        help="wire timeout for socket/remote transports: connection "
        "setup and each decode round-trip (default 30)",
    )
    p.add_argument(
        "--chaos", metavar="SPEC",
        help="deterministic fault plan: comma-separated clauses "
        "crash-at:REP:N (crash serving its Nth batch), die-at:REP:T "
        "(dead from T ms), stall:REP:N:D (Nth batch +D ms, then "
        "recovers), degrade:REP:N:M (xM latency from batch N); REP is "
        "a replica index, GROUP/INDEX with --cluster "
        "(see docs/serving.md)",
    )
    p.add_argument(
        "--max-retries", type=int, metavar="N",
        help="re-enqueue a frame whose replica died up to N times "
        "within its original deadline (default 2; 0 fails on first "
        "fault)",
    )
    p.add_argument(
        "--hedge", action="store_true",
        help="duplicate a batch predicted to miss its deadline onto a "
        "free replica; first response wins, both occupancies charged",
    )
    p.add_argument(
        "--replace-after-ms", type=_positive_float, metavar="MS",
        help="provision a cold replacement replica this long after one "
        "dies (reuses the autoscale warm-up path; default: capacity "
        "stays lost)",
    )
    p.add_argument(
        "--frames", type=_positive_int, default=30,
        help="frames per avatar (default 30)",
    )
    p.add_argument(
        "--duration", type=_positive_float,
        help="serve this many seconds of traffic per avatar instead of "
        "a fixed --frames count",
    )
    p.add_argument(
        "--avatar-fps", type=_positive_float, default=30.0,
        help="per-avatar frame rate (default 30)",
    )
    p.add_argument(
        "--deadline-ms", type=_positive_float, default=50.0,
        help="decode deadline per frame, ms after arrival (default 50)",
    )
    p.add_argument(
        "--deadline-tiers",
        help="comma-separated per-avatar deadline budgets assigned "
        "round-robin, e.g. 25,100 (overrides --deadline-ms)",
    )
    p.add_argument(
        "--jitter-ms", type=float, default=0.0,
        help="uniform arrival jitter per frame, +/- ms (default 0)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long a freed replica waits for co-arriving frames",
    )
    p.add_argument(
        "--max-batch", type=_positive_int,
        help="cap frames per dispatched batch (default: replica capacity)",
    )
    p.add_argument(
        "--sim-frames", type=_positive_int, default=8,
        help="cycle-accurate frames sampled for the latency model",
    )
    p.add_argument(
        "--real-time", action="store_true",
        help="run on the wall clock instead of the virtual clock",
    )
    p.add_argument(
        "--engine", default="async", choices=("async", "heap"),
        help="serving engine: the per-avatar coroutine scheduler (async, "
        "default) or the vectorized event-heap engine (heap) for large "
        "sessions — same semantics, same report",
    )
    p.add_argument(
        "--shape", choices=list_shapes(),
        help="generate traffic from a named shape with session churn "
        "instead of steady per-avatar streams (heap engine; needs "
        "--duration)",
    )
    p.add_argument(
        "--churn", type=float, default=0.0,
        help="fraction of avatars that join late / leave early "
        "(--shape steady only, default 0)",
    )
    p.add_argument(
        "--autoscale", action="store_true",
        help="autoscale each replica group from its offered load (heap "
        "engine); --replicas and group counts become initial fleets",
    )
    p.add_argument(
        "--autoscale-max", type=_positive_int, default=64,
        help="autoscaling replica cap per group (default 64)",
    )
    p.add_argument(
        "--autoscale-warmup-ms", type=_positive_float, default=2000.0,
        help="provisioning delay before a scaled-up replica can serve; "
        "it then starts cold (default 2000 ms)",
    )
    p.add_argument("--json", help="write the serving report JSON here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="distributed runtime: sweep coordinator, workers, replica "
        "servers",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "a sharded sweep on one machine (spawns 2 local workers):\n"
            "  repro fleet coordinator codec_avatar_decoder \\\n"
            "      --sweep Z7045,ZU9CG --workers 2 --token secret\n"
            "the same sweep across machines:\n"
            "  repro fleet coordinator ... --listen 0.0.0.0:7000 \\\n"
            "      --workers 0 --token secret        # on the coordinator\n"
            "  repro fleet worker --connect coord:7000 --token secret\n"
            "serving against a persistent replica host:\n"
            "  repro fleet replicas --listen 0.0.0.0:7100 --token secret\n"
            "  repro serve --transport remote:replicahost:7100 \\\n"
            "      --transport-token secret\n"
            "results are bit-identical to the serial/in-process runs at "
            "the same seed\n(see docs/distributed.md)"
        ),
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    c = fleet_sub.add_parser(
        "coordinator",
        help="shard a device sweep across workers and merge the results",
    )
    c.add_argument(
        "model",
        nargs="?",
        default="codec_avatar_decoder",
        help="zoo model or network JSON (default: codec_avatar_decoder)",
    )
    c.add_argument(
        "--sweep", required=True,
        help="comma-separated device list, e.g. Z7045,ZU9CG",
    )
    c.add_argument(
        "--sweep-quants",
        help="comma-separated precisions to cross with --sweep",
    )
    c.add_argument("--quant", default="int8", choices=["int8", "int16"])
    c.add_argument("--iterations", type=_positive_int, default=10)
    c.add_argument("--population", type=_positive_int, default=80)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--listen", default="127.0.0.1:0",
        help="coordinator bind address (default 127.0.0.1:0 = loopback, "
        "free port)",
    )
    c.add_argument(
        "--token", default="",
        help="shared auth secret workers must present",
    )
    c.add_argument(
        "--workers", type=int, default=2,
        help="local worker processes to spawn (0 = workers join from "
        "elsewhere; default 2)",
    )
    c.add_argument(
        "--lease-timeout", type=_positive_float, default=15.0,
        help="seconds without a heartbeat before a shard is re-leased "
        "(default 15)",
    )
    c.add_argument(
        "--checkpoint",
        help="progress file: a restarted coordinator resumes from it "
        "without re-solving finished shards",
    )
    c.add_argument(
        "--timeout", type=_positive_float, default=600.0,
        help="wall-time ceiling for the whole sweep (default 600 s)",
    )
    c.add_argument(
        "--worker-fault", action="append", metavar="SPEC",
        help="(test hook) fault plan for the Nth spawned worker, e.g. "
        "die-after-leases:1; repeat per worker",
    )
    c.add_argument("--json", help="write deterministic sweep results here")
    c.set_defaults(func=cmd_fleet_coordinator)

    w = fleet_sub.add_parser(
        "worker", help="join a coordinator and solve sweep shards"
    )
    w.add_argument(
        "--connect", help="coordinator address, HOST:PORT",
    )
    w.add_argument(
        "--token", default="",
        help="shared auth secret (must match the coordinator's)",
    )
    w.set_defaults(func=cmd_fleet_worker)

    r = fleet_sub.add_parser(
        "replicas",
        help="serve a persistent replica server for remote: transports",
    )
    r.add_argument(
        "--listen", default="127.0.0.1:0",
        help="bind address (default 127.0.0.1:0; the bound port is "
        "printed on stdout)",
    )
    r.add_argument(
        "--token", default="",
        help="shared auth secret remote transports must present",
    )
    r.set_defaults(func=cmd_fleet_replicas)

    p = sub.add_parser("generate", help="explore, then emit an HLS project")
    p.add_argument("model")
    _add_target_args(p)
    p.add_argument("--output", default="fcad_design", help="output directory")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument(
        "name",
        choices=[
            "table1", "table2", "fig3", "fig67", "table4", "table5",
            "convergence", "family", "energy", "ablation-parallelism",
            "ablation-search", "ablation-alpha", "ablation-batch",
        ],
    )
    p.set_defaults(func=cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
