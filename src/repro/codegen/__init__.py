"""HLS code generation from explored accelerator configurations."""

from repro.codegen.hls import (
    generate_project,
    generate_top_source,
    generate_unit_source,
)

__all__ = [
    "generate_project",
    "generate_top_source",
    "generate_unit_source",
]
