"""Quantization schemes and their hardware cost factors.

The paper's efficiency metric (Eq. 3) divides achieved GOP/s by
``beta x #multipliers x FREQ`` where ``beta`` is "the number of operations
handled by one multiplier in one clock cycle". On Xilinx DSP48 slices:

- 16-bit operands: one MAC per DSP per cycle  -> beta = 2 (mul + add);
- 8-bit operands: two MACs packed per DSP     -> beta = 4.

These two values reproduce the paper's published efficiency numbers exactly
(e.g. HybridDNN scheme 2: 13.1 GOP x 22.0 FPS / (2 x 1024 x 0.2 GHz) = 70.4%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuantScheme:
    """Fixed-point quantization of weights and activations."""

    name: str
    weight_bits: int
    activation_bits: int

    def __post_init__(self) -> None:
        if self.weight_bits <= 0 or self.activation_bits <= 0:
            raise ValueError(f"bit widths must be positive: {self}")

    @property
    def macs_per_multiplier(self) -> int:
        """MACs one DSP/MAC unit sustains per cycle (2 when 8-bit packs)."""
        if self.weight_bits <= 8 and self.activation_bits <= 8:
            return 2
        return 1

    @property
    def beta(self) -> int:
        """Operations per multiplier per cycle — Eq. 3's beta."""
        return 2 * self.macs_per_multiplier

    def weight_bytes(self, count: float) -> float:
        """Bytes occupied by ``count`` weights under this scheme."""
        return count * self.weight_bits / 8.0

    def activation_bytes(self, count: float) -> float:
        """Bytes occupied by ``count`` activations under this scheme."""
        return count * self.activation_bits / 8.0


INT8 = QuantScheme(name="int8", weight_bits=8, activation_bits=8)
INT16 = QuantScheme(name="int16", weight_bits=16, activation_bits=16)

_SCHEMES = {scheme.name: scheme for scheme in (INT8, INT16)}


def get_scheme(name: str) -> QuantScheme:
    """Look up a scheme by name (``"int8"`` or ``"int16"``)."""
    try:
        return _SCHEMES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_SCHEMES))
        raise KeyError(f"unknown scheme {name!r}; known schemes: {known}") from None
