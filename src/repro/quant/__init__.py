"""Quantization schemes and tensor quantizers."""

from repro.quant.quantize import (
    QuantizedTensor,
    dequantize,
    quantize_tensor,
    quantization_error,
)
from repro.quant.schemes import INT8, INT16, QuantScheme, get_scheme

__all__ = [
    "INT8",
    "INT16",
    "QuantScheme",
    "QuantizedTensor",
    "dequantize",
    "get_scheme",
    "quantization_error",
    "quantize_tensor",
]
