"""Symmetric per-tensor quantization for the functional runtime.

F-CAD's design-space exploration only needs bit *widths*; actual value
quantization lives here so the runtime can demonstrate 8-/16-bit inference
on the decoder (and so tests can bound the quantization error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.schemes import QuantScheme


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer values plus the scale that maps them back to reals."""

    values: np.ndarray
    scale: float
    bits: int

    def dequantized(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale


def quantize_tensor(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetric mid-rise quantization of ``x`` to ``bits`` signed integers.

    The scale maps the largest absolute value onto the extreme code, so the
    roundtrip error of any element is bounded by ``scale / 2``.
    """
    if bits < 2:
        raise ValueError(f"need at least 2 bits, got {bits}")
    x = np.asarray(x, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    values = np.clip(np.round(x / scale), -qmax - 1, qmax)
    return QuantizedTensor(values=values.astype(np.int64), scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Map quantized values back to reals."""
    return q.dequantized()


def quantization_error(x: np.ndarray, scheme: QuantScheme) -> float:
    """Max absolute roundtrip error of ``x`` under ``scheme``'s weight width."""
    q = quantize_tensor(x, scheme.weight_bits)
    return float(np.max(np.abs(q.dequantized() - np.asarray(x, dtype=np.float64))))
