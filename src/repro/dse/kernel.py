"""Batched Algorithm 2: one vectorized pass over a generation of budgets.

The scalar solver (:func:`repro.dse.inbranch.optimize_branch`) walks two
loops per budget bucket: a halving loop that shrinks per-stage parallelism
targets until the requested replicas fit, and a growth loop that doubles
the bottleneck stage while they still do. Both loops only ever visit
states on a fixed per-stage *chain*: ``GetPF`` realizes any scalar target
by walking the same deterministic doubling sequence from ``(1, 1, 1)``, so
every configuration Algorithm 2 can produce for a stage is one of the
``O(log max_parallelism)`` states on that chain, and realizing a target is
a ``searchsorted`` over the chain's (strictly increasing) pf products.

That observation turns the per-bucket Python loops into array passes over
all N unique buckets of a PSO generation at once:

- **ladder** — per-stage chains are enumerated once per branch
  (:class:`StageChain`, struct-of-arrays: configs, pf products, latency,
  DSP, BRAM) and the halving loop becomes a synchronized rung descent:
  each rung realizes every active bucket's targets with one
  ``searchsorted`` per stage, reduces resource sums and the bottleneck
  latency across stages, and retires buckets whose replica count fits
  (or whose targets hit all-ones).
- **growth** — the bottleneck-doubling walk is independent of the budget
  except for *where it stops*, so the walk from each distinct halving
  end-state is traced once (:meth:`BranchLadder.growth_path`), storing the
  trial resource sums per step; each bucket then just finds the first step
  its budget cannot pay for. Buckets landing on the same rung pay for the
  walk once per table lifetime.
- **measure** — final ``(batch, chain-state)`` pairs repeat heavily across
  buckets, and :func:`~repro.perf.estimator.evaluate_branch` is a pure
  function of them, so solutions are memoized per pair.

Every arithmetic step reproduces the scalar solver's exact float64
operation order (same products, same divisions, same truncations), so the
kernel is **bit-identical** to calling ``optimize_branch`` per bucket —
the repo-wide determinism guarantee — while removing the per-bucket
Python interpretation that dominated ``eval_seconds``.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.config import BranchConfig, StageConfig
from repro.devices.budget import ResourceBudget
from repro.dse.inbranch import (
    BW_PLANNING_MARGIN,
    BranchEvalTable,
    BranchSolution,
)
from repro.perf.estimator import evaluate_branch

#: Clip for the bandwidth-quotient term before int64 conversion. Any true
#: quotient above this is irrelevant: the final replica count is the min
#: over three terms and is compared against batch targets orders of
#: magnitude smaller, so clipping here can never change a solution.
_INT_CLIP = float(2**62)


@dataclass
class KernelTimings:
    """Where the batched solve spent its time, by phase."""

    ladder_seconds: float = 0.0
    growth_seconds: float = 0.0
    measure_seconds: float = 0.0

    def add(self, other: "KernelTimings") -> None:
        self.ladder_seconds += other.ladder_seconds
        self.growth_seconds += other.growth_seconds
        self.measure_seconds += other.measure_seconds


class StageChain:
    """One stage's full ``GetPF`` doubling chain, as struct-of-arrays.

    ``configs[i]`` is the i-th state of the deterministic doubling walk
    from ``(1, 1, 1)``; ``prods`` its (strictly increasing) pf products;
    ``lat`` / ``dsp`` / ``bram`` its memoized per-stage evaluation. A
    scalar target ``t`` realizes as the first state with ``prods >= t``
    (after the ``max_pf`` clamp ``GetPF`` applies), or the last state when
    the chain saturates below ``t`` — exactly ``GetPF``'s return value.
    """

    __slots__ = (
        "configs",
        "prods",
        "lat",
        "dsp",
        "bram",
        "prods_list",
        "lat_list",
        "dsp_list",
        "bram_list",
        "max_pf",
        "last",
    )

    def __init__(
        self, table: BranchEvalTable, idx: int, max_pf: int | None
    ) -> None:
        stage = table.stages[idx]
        h_cap = (
            stage.h_max
            if table.max_h is None
            else min(stage.h_max, table.max_h)
        )
        cpf, kpf, h = 1, 1, 1
        configs: list[StageConfig] = []
        while True:
            configs.append(StageConfig(cpf=cpf, kpf=kpf, h=h))
            # The same move GetPF makes: double the smaller channel factor
            # first, fall back to H-partitioning, snap to dimension caps.
            if cpf < stage.cpf_max and (cpf <= kpf or kpf >= stage.kpf_max):
                cpf = min(cpf * 2, stage.cpf_max)
            elif kpf < stage.kpf_max:
                kpf = min(kpf * 2, stage.kpf_max)
            elif h < h_cap:
                h = min(h * 2, h_cap)
            else:
                break
        # Route per-state evaluations through the table's shared memo so
        # scalar and batched solves feed the same tables and counters.
        evals = [table.stage_eval(idx, cfg) for cfg in configs]
        self.configs = tuple(configs)
        self.prods_list = [cfg.cpf * cfg.kpf * cfg.h for cfg in configs]
        self.lat_list = [e[0] for e in evals]
        self.dsp_list = [e[1] for e in evals]
        self.bram_list = [e[2] for e in evals]
        self.prods = np.array(self.prods_list, dtype=np.int64)
        self.lat = np.array(self.lat_list, dtype=np.int64)
        self.dsp = np.array(self.dsp_list, dtype=np.int64)
        self.bram = np.array(self.bram_list, dtype=np.int64)
        self.max_pf = max_pf
        self.last = len(configs) - 1

    def indices_for(self, targets: np.ndarray) -> np.ndarray:
        """Chain indices GetPF would return for an array of targets."""
        if self.max_pf is not None:
            targets = np.minimum(targets, self.max_pf)
        idx = np.searchsorted(self.prods, targets, side="left")
        return np.minimum(idx, self.last)

    def index_for(self, target: int) -> int:
        """Chain index GetPF would return for one scalar target."""
        if self.max_pf is not None:
            target = min(target, self.max_pf)
        return min(bisect_left(self.prods_list, target), self.last)


@dataclass(frozen=True)
class GrowthPath:
    """The budget-independent bottleneck-doubling walk from one state.

    ``states[s]`` is the per-stage chain-index tuple after applying ``s``
    doubling steps (``states[0]`` is the start); step ``s`` costs
    ``trial_c[s]`` DSPs / ``trial_m[s]`` BRAMs and leaves the pipeline's
    bottleneck latency at ``trial_maxlat[s]``. A bucket applies the
    longest prefix of steps its budget still pays for.
    """

    states: tuple[tuple[int, ...], ...]
    trial_c: np.ndarray
    trial_m: np.ndarray
    trial_maxlat: np.ndarray


class BranchLadder:
    """Precomputed batched-solve state for one :class:`BranchEvalTable`.

    Built lazily (``table.ladder()``) because only the batched kernel
    needs it; holds the per-stage chains plus two memo tables keyed by
    chain state: growth paths and measured solutions.
    """

    def __init__(self, table: BranchEvalTable) -> None:
        self.table = table
        self.chains = [
            StageChain(table, idx, table.max_pf)
            for idx in range(len(table.stages))
        ]
        self._paths: dict[tuple[int, ...], GrowthPath] = {}
        self._solutions: dict[
            tuple[int, int, tuple[int, ...]], BranchSolution
        ] = {}

    def growth_path(self, start: tuple[int, ...]) -> GrowthPath:
        """The doubling walk from ``start``, traced once and memoized."""
        path = self._paths.get(start)
        if path is None:
            path = self._trace_growth(start)
            self._paths[start] = path
        return path

    def _trace_growth(self, start: tuple[int, ...]) -> GrowthPath:
        chains = self.chains
        state = list(start)
        lats = [chains[k].lat_list[j] for k, j in enumerate(state)]
        c_sum = sum(chains[k].dsp_list[j] for k, j in enumerate(state))
        m_sum = sum(chains[k].bram_list[j] for k, j in enumerate(state))
        states = [tuple(state)]
        trial_c: list[int] = []
        trial_m: list[int] = []
        trial_maxlat: list[int] = []
        while True:
            # First maximum, matching the scalar bottleneck scan.
            b = max(range(len(lats)), key=lats.__getitem__)
            chain = chains[b]
            j = state[b]
            grown = chain.index_for(2 * chain.prods_list[j])
            if grown == j:
                break  # saturated: no parallelism left in this stage
            c_sum += chain.dsp_list[grown] - chain.dsp_list[j]
            m_sum += chain.bram_list[grown] - chain.bram_list[j]
            lats[b] = chain.lat_list[grown]
            state[b] = grown
            trial_c.append(c_sum)
            trial_m.append(m_sum)
            trial_maxlat.append(max(lats))
            states.append(tuple(state))
        return GrowthPath(
            states=tuple(states),
            trial_c=np.array(trial_c, dtype=np.int64),
            trial_m=np.array(trial_m, dtype=np.int64),
            trial_maxlat=np.array(trial_maxlat, dtype=np.int64),
        )

    def solution(
        self, batch: int, state: tuple[int, ...], batch_target: int
    ) -> BranchSolution:
        """Measure (or recall) the solution for one final kernel state."""
        key = (batch, batch_target, state)
        sol = self._solutions.get(key)
        if sol is None:
            table = self.table
            config = BranchConfig(
                batch_size=batch,
                stages=tuple(
                    chain.configs[j]
                    for chain, j in zip(self.chains, state)
                ),
            )
            perf = evaluate_branch(
                table.pipeline, config, table.quant, table.frequency_mhz
            )
            sol = BranchSolution(
                config=config,
                perf=perf,
                meets_batch_target=batch >= batch_target,
            )
            self._solutions[key] = sol
        return sol


def _replicas_supported(
    c_sum: np.ndarray,
    m_sum: np.ndarray,
    maxlat: np.ndarray,
    compute: np.ndarray,
    memory: np.ndarray,
    bw_margin: np.ndarray,
    batch_target: int,
    dram_bytes: float,
    freq_hz: float,
) -> np.ndarray:
    """Vectorized ``min(C/Σc, M/Σm, BW/Σbw)``, bit-matching the scalar.

    Broadcasts: the resource-sum triple and the budget triple may differ
    in shape (e.g. ``(steps,)`` sums against ``(buckets, 1)`` budgets).
    Zero ``c_sum`` / ``m_sum`` / ``bw_replica`` fall back to
    ``batch_target`` exactly like the scalar solver: an unconsumed
    resource can never be the limiter.
    """
    fps_single = freq_hz / maxlat
    bw_replica = dram_bytes * fps_single / 1e9
    bt = np.int64(batch_target)
    comp_term = np.where(
        c_sum > 0, compute // np.maximum(c_sum, 1), bt
    )
    mem_term = np.where(m_sum > 0, memory // np.maximum(m_sum, 1), bt)
    # floor == int() truncation here (the quotient is non-negative); the
    # clip guards the int64 conversion and is proven irrelevant to the
    # min (see _INT_CLIP).
    quotient = np.floor(
        bw_margin / np.where(bw_replica > 0, bw_replica, 1.0)
    )
    bw_term = np.where(
        bw_replica > 0,
        np.minimum(quotient, _INT_CLIP).astype(np.int64),
        bt,
    )
    return np.minimum(np.minimum(comp_term, mem_term), bw_term)


def solve_buckets(
    table: BranchEvalTable,
    rds: Sequence[ResourceBudget],
    batch_target: int,
    timings: KernelTimings | None = None,
) -> list[BranchSolution]:
    """Solve Algorithm 2 for N budget buckets of one branch, batched.

    Returns one :class:`BranchSolution` per budget, in input order,
    bit-identical to ``optimize_branch(pipeline, rd, batch_target, ...)``
    per bucket. ``timings`` (optional) accumulates the per-phase wall
    time split the benchmarks record.
    """
    n = len(rds)
    if n == 0:
        return []
    started = time.perf_counter()
    ladder = table.ladder()
    chains = ladder.chains
    num_stages = len(chains)

    compute = np.array([rd.compute for rd in rds], dtype=np.int64)
    memory = np.array([rd.memory for rd in rds], dtype=np.int64)
    bw_margin = (
        np.array([rd.bandwidth_gbps for rd in rds], dtype=np.float64)
        * BW_PLANNING_MARGIN
    )
    bw_bytes = bw_margin * 1e9
    freq_hz = table.frequency_mhz * 1e6
    dram_bytes = table.dram_bytes

    # Lines 8-12: optimistic targets from the allocated bandwidth. The
    # ratio is computed in Python float exactly as the scalar does, so
    # ceil(scale * ratio) reproduces its rounding bit for bit.
    if table.norm_bw > 0:
        scale = bw_bytes / table.norm_bw
    else:
        scale = np.zeros(n, dtype=np.float64)
    targets = np.empty((num_stages, n), dtype=np.int64)
    for k in range(num_stages):
        ratio = table.ops[k] / table.op_min
        t = np.ceil(scale * ratio)
        t = np.minimum(
            np.maximum(t, 1.0), float(table.max_parallelism[k])
        )
        targets[k] = t.astype(np.int64)

    # Halving phase as a synchronized rung descent: all still-active
    # buckets realize their targets, measure, and either retire (replicas
    # fit, or targets bottomed out at all-ones) or halve and descend.
    final_idx = np.zeros((num_stages, n), dtype=np.int64)
    batch = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    # Memo-traffic accounting: the ladder serves every realization and
    # stage evaluation the scalar loop would have looked up, so the same
    # lookup counts are credited to the table as hits (2 per stage per
    # rung per active bucket — one GetPF, one stage eval).
    memo_served = 0
    while True:
        cols = np.flatnonzero(active)
        memo_served += 2 * num_stages * len(cols)
        t_act = targets[:, cols]
        j_act = np.empty_like(t_act)
        c_sum = np.zeros(len(cols), dtype=np.int64)
        m_sum = np.zeros(len(cols), dtype=np.int64)
        maxlat = np.zeros(len(cols), dtype=np.int64)
        for k, chain in enumerate(chains):
            jk = chain.indices_for(t_act[k])
            j_act[k] = jk
            c_sum += chain.dsp[jk]
            m_sum += chain.bram[jk]
            np.maximum(maxlat, chain.lat[jk], out=maxlat)
        supported = _replicas_supported(
            c_sum,
            m_sum,
            maxlat,
            compute[cols],
            memory[cols],
            bw_margin[cols],
            batch_target,
            dram_bytes,
            freq_hz,
        )
        met = supported >= batch_target
        bottomed = (t_act <= 1).all(axis=0)
        finished = met | bottomed  # "fits" wins when both hold
        if finished.any():
            done = cols[finished]
            final_idx[:, done] = j_act[:, finished]
            batch[done] = np.where(
                met[finished],
                np.int64(batch_target),
                np.maximum(supported[finished], 0),
            )
            active[done] = False
        if not active.any():
            break
        rest = cols[~finished]
        targets[:, rest] = np.maximum(1, targets[:, rest] >> 1)
    if timings is not None:
        now = time.perf_counter()
        timings.ladder_seconds += now - started
        started = now

    # Growth phase: group buckets by halving end-state, trace each
    # state's doubling walk once, and stop each bucket at the first step
    # its budget cannot pay for.
    states: list[tuple[int, ...]] = [
        tuple(int(final_idx[k, i]) for k in range(num_stages))
        for i in range(n)
    ]
    groups: dict[tuple[int, ...], list[int]] = {}
    for i in range(n):
        if batch[i] >= 1:
            groups.setdefault(states[i], []).append(i)
    for start, members in groups.items():
        path = ladder.growth_path(start)
        steps = len(path.trial_c)
        if steps == 0:
            # Immediately saturated: end state == start state. The scalar
            # loop still paid one realize lookup to learn that.
            memo_served += len(members)
            continue
        rows = np.array(members, dtype=np.intp)
        supported = _replicas_supported(
            path.trial_c,
            path.trial_m,
            path.trial_maxlat,
            compute[rows][:, None],
            memory[rows][:, None],
            bw_margin[rows][:, None],
            batch_target,
            dram_bytes,
            freq_hz,
        )
        stop = supported < batch[rows][:, None]
        has_stop = stop.any(axis=1)
        first_stop = np.where(has_stop, np.argmax(stop, axis=1), steps)
        # Scalar equivalence: each applied step costs 3 lookups (realize
        # grown + eval old + eval new); a budget-stopped walk pays all 3
        # on the refused step, a saturated one pays 1 (realize only).
        memo_served += int(
            (3 * first_stop + np.where(has_stop, 3, 1)).sum()
        )
        for g, i in enumerate(members):
            states[i] = path.states[int(first_stop[g])]
    if timings is not None:
        now = time.perf_counter()
        timings.growth_seconds += now - started
        started = now

    # Measure phase: distinct (batch, state) pairs only.
    solutions = [
        ladder.solution(int(batch[i]), states[i], batch_target)
        for i in range(n)
    ]
    table.credit_memo(memo_served, memo_served)
    if timings is not None:
        timings.measure_seconds += time.perf_counter() - started
    return solutions


__all__ = [
    "BranchLadder",
    "GrowthPath",
    "KernelTimings",
    "StageChain",
    "solve_buckets",
]
