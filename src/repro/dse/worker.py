"""Pure, picklable candidate evaluation for the cross-branch search.

Algorithm 1 spends essentially all of its time completing resource
distributions into configurations (Algorithm 2) and scoring them. That
work is a pure function of an :class:`EvalSpec` (the frozen problem
statement: plan, budget, customization, quantization, frequency, alpha)
and a candidate position, which makes it trivially parallel: serial
searches call :func:`evaluate_candidate` inline, parallel searches fan the
population of one generation out over a process pool via
:func:`candidate_runner` and join at a per-generation barrier.

Both paths run the identical arithmetic on the identical inputs, so a
parallel search is bit-identical to a serial one at the same seed — the
particle-update order in the parent is fixed, and candidate evaluation
consumes no randomness.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterator, Sequence

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import EvalCache, LocalEvalCache, SharedEvalCache
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchSolution, optimize_branch
from repro.dse.space import Customization
from repro.quant.schemes import QuantScheme

#: Quantization grid for candidate evaluation: per-branch budgets are
#: snapped DOWN to this grid before Algorithm 2 runs, so every budget in a
#: bucket evaluates to the exact same solution. That makes the evaluation a
#: pure function of the bucket — which is what lets the cache (and the
#: cross-process shared cache, with its benign last-writer-wins races) be a
#: transparent memo that can never change search results.
_COMPUTE_GRID = 4
_MEMORY_GRID = 4
_BANDWIDTH_GRID = 0.05

#: Fitness penalty per branch that cannot honour its requested batch size.
INFEASIBILITY_PENALTY = 1e6


@dataclass(frozen=True)
class EvalSpec:
    """Everything needed to score a candidate, as one picklable bundle."""

    plan: PipelinePlan
    budget: ResourceBudget
    customization: Customization
    quant: QuantScheme
    frequency_mhz: float = 200.0
    alpha: float = 0.05

    @cached_property
    def digest(self) -> str:
        """Stable fingerprint of the spec (namespaces shared-cache keys)."""
        blob = pickle.dumps(
            (
                self.plan,
                self.budget,
                self.customization,
                self.quant,
                self.frequency_mhz,
                self.alpha,
            )
        )
        return hashlib.sha1(blob).hexdigest()


@dataclass(frozen=True)
class CandidateEval:
    """Score and per-branch solutions for one candidate, with cache stats."""

    score: float
    solutions: tuple[BranchSolution, ...]
    evaluations: int
    cache_hits: int


def quantize_rd(rd: ResourceBudget) -> tuple[int, int, int]:
    return (
        rd.compute // _COMPUTE_GRID,
        rd.memory // _MEMORY_GRID,
        int(rd.bandwidth_gbps / _BANDWIDTH_GRID),
    )


def canonical_rd(bucket: tuple[int, int, int]) -> ResourceBudget:
    """The single budget every member of a quantization bucket evaluates as.

    Snapping down (floor) keeps the canonical budget conservative: a
    solution sized for it always fits the raw budget it stands in for.
    """
    compute, memory, bandwidth = bucket
    return ResourceBudget(
        compute=compute * _COMPUTE_GRID,
        memory=memory * _MEMORY_GRID,
        bandwidth_gbps=bandwidth * _BANDWIDTH_GRID,
    )


def split_budget(
    spec: EvalSpec, position: Sequence[float]
) -> list[ResourceBudget]:
    """Turn a 3xB fraction vector into absolute per-branch budgets."""
    B = spec.plan.num_branches
    compute = position[0:B]
    memory = position[B : 2 * B]
    bandwidth = position[2 * B : 3 * B]
    return [
        ResourceBudget(
            compute=int(spec.budget.compute * compute[j]),
            memory=int(spec.budget.memory * memory[j]),
            bandwidth_gbps=spec.budget.bandwidth_gbps * bandwidth[j],
        )
        for j in range(B)
    ]


def evaluate_candidate(
    spec: EvalSpec, position: Sequence[float], cache: EvalCache
) -> CandidateEval:
    """Complete a distribution into configs and compute its fitness."""
    distributions = split_budget(spec, position)
    solutions: list[BranchSolution] = []
    evaluations = 0
    cache_hits = 0
    for branch, rd in enumerate(distributions):
        bucket = quantize_rd(rd)
        key = (spec.digest, branch, bucket)
        solution = cache.get(key)
        if solution is None:
            # Evaluate the bucket's canonical budget, not the raw one: the
            # solution is then a pure function of the key, so a cache hit
            # (local, shared, or racing with another process) is always
            # bit-identical to recomputing.
            solution = optimize_branch(
                spec.plan.branches[branch],
                canonical_rd(bucket),
                spec.customization.batch_sizes[branch],
                spec.quant,
                spec.frequency_mhz,
                max_h=spec.customization.max_h,
                max_pf=spec.customization.max_pf,
            )
            cache.put(key, solution)
            evaluations += 1
        else:
            cache_hits += 1
        solutions.append(solution)
    fps = [s.fps for s in solutions]
    score = fitness_score(fps, spec.customization.priorities, spec.alpha)
    # A distribution that cannot honour the requested batch sizes is
    # strictly worse than any that can.
    shortfall = sum(1 for s in solutions if not s.meets_batch_target)
    score -= INFEASIBILITY_PENALTY * shortfall
    return CandidateEval(
        score=score,
        solutions=tuple(solutions),
        evaluations=evaluations,
        cache_hits=cache_hits,
    )


# ---------------------------------------------------------------------------
# process-pool plumbing
# ---------------------------------------------------------------------------
_WORKER_SPEC: EvalSpec | None = None
_WORKER_CACHE: EvalCache | None = None


def _init_worker(spec: EvalSpec, cache: EvalCache) -> None:
    global _WORKER_SPEC, _WORKER_CACHE
    _WORKER_SPEC = spec
    _WORKER_CACHE = cache


def _run_candidate(position: tuple[float, ...]) -> CandidateEval:
    assert _WORKER_SPEC is not None and _WORKER_CACHE is not None
    return evaluate_candidate(_WORKER_SPEC, position, _WORKER_CACHE)


# ---------------------------------------------------------------------------
# sweep-lifetime pool: one set of worker processes for a whole batch
# ---------------------------------------------------------------------------
def _spec_cache_key(digest: str) -> tuple[str, str]:
    """Shared-cache slot a sweep pool publishes each EvalSpec under.

    The reserved ``"__spec__"`` namespace can never collide with
    evaluation entries, whose keys are ``(digest, branch, bucket)``.
    """
    return ("__spec__", digest)


def is_spec_cache_key(key: object) -> bool:
    """True for pool bookkeeping entries (skip these when draining)."""
    return (
        isinstance(key, tuple) and len(key) == 2 and key[0] == "__spec__"
    )


_POOL_CACHE: EvalCache | None = None
_POOL_SPECS: dict[str, EvalSpec] = {}


def _init_pool_worker(cache: EvalCache) -> None:
    global _POOL_CACHE
    _POOL_CACHE = cache
    _POOL_SPECS.clear()


def _run_pooled_candidate(
    task: tuple[str, tuple[float, ...]],
) -> CandidateEval:
    digest, position = task
    assert _POOL_CACHE is not None
    spec = _POOL_SPECS.get(digest)
    if spec is None:
        spec = _POOL_CACHE.get(_spec_cache_key(digest))
        assert spec is not None, f"spec {digest} was never registered"
        _POOL_SPECS[digest] = spec
    return evaluate_candidate(spec, position, _POOL_CACHE)


class SweepWorkerPool:
    """A process pool that outlives one search and serves a whole sweep.

    ``candidate_runner`` forks (and tears down) a fresh pool per search,
    which is the right shape for a single exploration but wastes startup
    on every case of a batch sweep. This pool is created once per sweep:
    tasks are ``(spec digest, position)`` pairs, each worker resolves the
    digest to the full :class:`EvalSpec` through the shared cache exactly
    once and memoizes it for the rest of the sweep, so dispatching case
    #37 costs the same as case #1.

    Evaluation stays the same pure function either way, so results are
    bit-identical to per-search pools and to serial evaluation.
    """

    def __init__(self, workers: int, cache: SharedEvalCache) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if not isinstance(cache, SharedEvalCache):
            raise TypeError("a sweep pool needs a cross-process cache")
        self.workers = workers
        self.cache = cache
        self._registered: set[str] = set()
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(),
            initializer=_init_pool_worker,
            initargs=(cache,),
        )

    def register(self, spec: EvalSpec) -> None:
        """Publish a spec so workers can resolve its digest (idempotent)."""
        if spec.digest not in self._registered:
            self.cache.put(_spec_cache_key(spec.digest), spec)
            self._registered.add(spec.digest)

    @property
    def specs_registered(self) -> int:
        return len(self._registered)

    def run(
        self, spec: EvalSpec, positions: Sequence[Sequence[float]]
    ) -> list[CandidateEval]:
        """Evaluate one generation of candidates for ``spec``, in order."""
        assert self._pool is not None, "pool is closed"
        self.register(spec)
        tasks = [(spec.digest, tuple(pos)) for pos in positions]
        chunksize = max(1, len(tasks) // (self.workers * 4))
        return list(
            self._pool.map(_run_pooled_candidate, tasks, chunksize=chunksize)
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        # Leave no bookkeeping behind: the cache may outlive this pool
        # (a caller keeps it warm across sweeps) and must then hold only
        # genuine evaluation entries.
        for digest in self._registered:
            self.cache.discard(_spec_cache_key(digest))
        self._registered.clear()

    def __enter__(self) -> "SweepWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


BatchRunner = Callable[[Sequence[Sequence[float]]], list[CandidateEval]]


@contextmanager
def candidate_runner(
    spec: EvalSpec,
    cache: EvalCache,
    workers: int = 1,
    pool: SweepWorkerPool | None = None,
) -> Iterator[BatchRunner]:
    """Yield a batch evaluator: serial inline, a process pool, or a sweep pool.

    The yielded callable evaluates one generation's positions and returns
    results in submission order — calling it IS the per-generation barrier.
    When ``workers > 1`` and the caller's cache is process-local, a shared
    cache is stood up for the pool's lifetime, seeded from the local cache,
    and drained back into it afterwards so the caller stays warm. A live
    :class:`SweepWorkerPool` takes precedence over both: the search borrows
    it and leaves its lifetime to the sweep that owns it.
    """
    if pool is not None:
        def run_pooled(positions: Sequence[Sequence[float]]) -> list[CandidateEval]:
            return pool.run(spec, positions)

        yield run_pooled
        return

    if workers <= 1:
        def run_serial(positions: Sequence[Sequence[float]]) -> list[CandidateEval]:
            return [evaluate_candidate(spec, pos, cache) for pos in positions]

        yield run_serial
        return

    if isinstance(cache, SharedEvalCache):
        shared, owned = cache, False
    else:
        shared, owned = SharedEvalCache(), True
        shared.preload(cache.items())
    try:
        mp_context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(spec, shared),
        ) as pool:
            def run_parallel(
                positions: Sequence[Sequence[float]],
            ) -> list[CandidateEval]:
                positions = [tuple(pos) for pos in positions]
                chunksize = max(1, len(positions) // (workers * 4))
                return list(
                    pool.map(_run_candidate, positions, chunksize=chunksize)
                )

            yield run_parallel
    finally:
        if owned:
            for key, value in shared.items():
                cache.put(key, value)
            shared.close()


__all__ = [
    "CandidateEval",
    "EvalSpec",
    "INFEASIBILITY_PENALTY",
    "LocalEvalCache",
    "SweepWorkerPool",
    "candidate_runner",
    "canonical_rd",
    "evaluate_candidate",
    "quantize_rd",
    "split_budget",
]
