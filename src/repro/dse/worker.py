"""Pure, picklable candidate evaluation for the cross-branch search.

Algorithm 1 spends essentially all of its time completing resource
distributions into configurations (Algorithm 2) and scoring them. That
work is a pure function of an :class:`EvalSpec` (the frozen problem
statement: plan, budget, customization, quantization, frequency, alpha)
and a candidate position, which makes it trivially parallel: serial
searches call :func:`evaluate_candidate` inline, parallel searches fan the
population of one generation out over a process pool via
:func:`candidate_runner` and join at a per-generation barrier.

Both paths run the identical arithmetic on the identical inputs, so a
parallel search is bit-identical to a serial one at the same seed — the
particle-update order in the parent is fixed, and candidate evaluation
consumes no randomness.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterator, Sequence

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import EvalCache, LocalEvalCache, SharedEvalCache
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchSolution, optimize_branch
from repro.dse.space import Customization
from repro.quant.schemes import QuantScheme

#: Quantization grid for candidate evaluation: per-branch budgets are
#: snapped DOWN to this grid before Algorithm 2 runs, so every budget in a
#: bucket evaluates to the exact same solution. That makes the evaluation a
#: pure function of the bucket — which is what lets the cache (and the
#: cross-process shared cache, with its benign last-writer-wins races) be a
#: transparent memo that can never change search results.
_COMPUTE_GRID = 4
_MEMORY_GRID = 4
_BANDWIDTH_GRID = 0.05

#: Fitness penalty per branch that cannot honour its requested batch size.
INFEASIBILITY_PENALTY = 1e6


@dataclass(frozen=True)
class EvalSpec:
    """Everything needed to score a candidate, as one picklable bundle."""

    plan: PipelinePlan
    budget: ResourceBudget
    customization: Customization
    quant: QuantScheme
    frequency_mhz: float = 200.0
    alpha: float = 0.05

    @cached_property
    def digest(self) -> str:
        """Stable fingerprint of the spec (namespaces shared-cache keys)."""
        blob = pickle.dumps(
            (
                self.plan,
                self.budget,
                self.customization,
                self.quant,
                self.frequency_mhz,
                self.alpha,
            )
        )
        return hashlib.sha1(blob).hexdigest()


@dataclass(frozen=True)
class CandidateEval:
    """Score and per-branch solutions for one candidate, with cache stats."""

    score: float
    solutions: tuple[BranchSolution, ...]
    evaluations: int
    cache_hits: int


def quantize_rd(rd: ResourceBudget) -> tuple[int, int, int]:
    return (
        rd.compute // _COMPUTE_GRID,
        rd.memory // _MEMORY_GRID,
        int(rd.bandwidth_gbps / _BANDWIDTH_GRID),
    )


def canonical_rd(bucket: tuple[int, int, int]) -> ResourceBudget:
    """The single budget every member of a quantization bucket evaluates as.

    Snapping down (floor) keeps the canonical budget conservative: a
    solution sized for it always fits the raw budget it stands in for.
    """
    compute, memory, bandwidth = bucket
    return ResourceBudget(
        compute=compute * _COMPUTE_GRID,
        memory=memory * _MEMORY_GRID,
        bandwidth_gbps=bandwidth * _BANDWIDTH_GRID,
    )


def split_budget(
    spec: EvalSpec, position: Sequence[float]
) -> list[ResourceBudget]:
    """Turn a 3xB fraction vector into absolute per-branch budgets."""
    B = spec.plan.num_branches
    compute = position[0:B]
    memory = position[B : 2 * B]
    bandwidth = position[2 * B : 3 * B]
    return [
        ResourceBudget(
            compute=int(spec.budget.compute * compute[j]),
            memory=int(spec.budget.memory * memory[j]),
            bandwidth_gbps=spec.budget.bandwidth_gbps * bandwidth[j],
        )
        for j in range(B)
    ]


def evaluate_candidate(
    spec: EvalSpec, position: Sequence[float], cache: EvalCache
) -> CandidateEval:
    """Complete a distribution into configs and compute its fitness."""
    distributions = split_budget(spec, position)
    solutions: list[BranchSolution] = []
    evaluations = 0
    cache_hits = 0
    for branch, rd in enumerate(distributions):
        bucket = quantize_rd(rd)
        key = (spec.digest, branch, bucket)
        solution = cache.get(key)
        if solution is None:
            # Evaluate the bucket's canonical budget, not the raw one: the
            # solution is then a pure function of the key, so a cache hit
            # (local, shared, or racing with another process) is always
            # bit-identical to recomputing.
            solution = optimize_branch(
                spec.plan.branches[branch],
                canonical_rd(bucket),
                spec.customization.batch_sizes[branch],
                spec.quant,
                spec.frequency_mhz,
                max_h=spec.customization.max_h,
                max_pf=spec.customization.max_pf,
            )
            cache.put(key, solution)
            evaluations += 1
        else:
            cache_hits += 1
        solutions.append(solution)
    fps = [s.fps for s in solutions]
    score = fitness_score(fps, spec.customization.priorities, spec.alpha)
    # A distribution that cannot honour the requested batch sizes is
    # strictly worse than any that can.
    shortfall = sum(1 for s in solutions if not s.meets_batch_target)
    score -= INFEASIBILITY_PENALTY * shortfall
    return CandidateEval(
        score=score,
        solutions=tuple(solutions),
        evaluations=evaluations,
        cache_hits=cache_hits,
    )


# ---------------------------------------------------------------------------
# process-pool plumbing
# ---------------------------------------------------------------------------
_WORKER_SPEC: EvalSpec | None = None
_WORKER_CACHE: EvalCache | None = None


def _init_worker(spec: EvalSpec, cache: EvalCache) -> None:
    global _WORKER_SPEC, _WORKER_CACHE
    _WORKER_SPEC = spec
    _WORKER_CACHE = cache


def _run_candidate(position: tuple[float, ...]) -> CandidateEval:
    assert _WORKER_SPEC is not None and _WORKER_CACHE is not None
    return evaluate_candidate(_WORKER_SPEC, position, _WORKER_CACHE)


BatchRunner = Callable[[Sequence[Sequence[float]]], list[CandidateEval]]


@contextmanager
def candidate_runner(
    spec: EvalSpec, cache: EvalCache, workers: int = 1
) -> Iterator[BatchRunner]:
    """Yield a batch evaluator: serial inline, or a process pool.

    The yielded callable evaluates one generation's positions and returns
    results in submission order — calling it IS the per-generation barrier.
    When ``workers > 1`` and the caller's cache is process-local, a shared
    cache is stood up for the pool's lifetime, seeded from the local cache,
    and drained back into it afterwards so the caller stays warm.
    """
    if workers <= 1:
        def run_serial(positions: Sequence[Sequence[float]]) -> list[CandidateEval]:
            return [evaluate_candidate(spec, pos, cache) for pos in positions]

        yield run_serial
        return

    if isinstance(cache, SharedEvalCache):
        shared, owned = cache, False
    else:
        shared, owned = SharedEvalCache(), True
        shared.preload(cache.items())
    try:
        mp_context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(spec, shared),
        ) as pool:
            def run_parallel(
                positions: Sequence[Sequence[float]],
            ) -> list[CandidateEval]:
                positions = [tuple(pos) for pos in positions]
                chunksize = max(1, len(positions) // (workers * 4))
                return list(
                    pool.map(_run_candidate, positions, chunksize=chunksize)
                )

            yield run_parallel
    finally:
        if owned:
            for key, value in shared.items():
                cache.put(key, value)
            shared.close()


__all__ = [
    "CandidateEval",
    "EvalSpec",
    "INFEASIBILITY_PENALTY",
    "LocalEvalCache",
    "candidate_runner",
    "canonical_rd",
    "evaluate_candidate",
    "quantize_rd",
    "split_budget",
]
