"""The candidate-evaluation data path of the cross-branch search.

Algorithm 1 spends essentially all of its time completing resource
distributions into configurations (Algorithm 2). That work is a pure
function of an :class:`EvalSpec` (the frozen problem statement: plan,
budget, customization, quantization, frequency) and a candidate position,
memoized under keys of ``(spec digest, branch index, quantized budget
bucket)``. Scoring is *not* part of the cached work: the cache stores
objective-independent metrics (Algorithm-2 solutions), and the parent
applies the :class:`~repro.dse.objective.Objective` to the rehydrated
metrics — so a warm cache keeps hitting after the caller switches
objectives, and workers never need to know what "good" means.

The data path is built to move as little as possible between processes:

1. **Generation-level dedup** — before a generation is evaluated, the
   parent quantizes every candidate position to its cache buckets and
   keeps only the *unique, unseen* ``(branch, bucket)`` subproblems. PSO
   populations re-visit buckets constantly (frozen particles, converged
   swarms, overlapping sweeps), and every revisit is settled in the
   parent for the price of a dict lookup.
2. **Zero-IPC parallelism** — the surviving subproblems are chunked over
   a process pool; each worker solves its chunk through a per-process
   :class:`~repro.dse.cache.DeltaEvalCache` and returns the delta (the
   ``(key, solution)`` entries plus solve-time and memo statistics). The
   parent folds deltas into the authoritative cache at the generation
   barrier. No ``multiprocessing.Manager`` sits on the hot path — the
   old shared-dict cache paid an IPC round-trip per lookup, which made
   4-worker searches slower than serial.
3. **Rehydration** — the parent reassembles every candidate's solutions
   from the cache in submission order and scores them inline (the
   fitness arithmetic is trivial next to Algorithm 2).

Both serial and parallel paths run the identical arithmetic on the
identical inputs through :class:`GenerationEvaluator`, so a parallel
search is bit-identical to a serial one at the same seed — the particle
update order in the parent is fixed and candidate evaluation consumes no
randomness.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import (
    DeltaEvalCache,
    EvalCache,
    LocalEvalCache,
    put_entries,
)
from repro.dse.kernel import KernelTimings, solve_buckets
from repro.dse.objective import (
    INFEASIBILITY_PENALTY,
    BranchMetrics,
    Objective,
    PaperObjective,
    metrics_from_solutions,
    penalized_score,
)
from repro.dse.inbranch import (
    BranchEvalTable,
    BranchSolution,
    optimize_branch,
    stage_memo_stats,
)
from repro.dse.space import Customization
from repro.quant.schemes import QuantScheme

if TYPE_CHECKING:
    # The surrogate layer imports this module for keys and specs; the
    # runtime dependency points only that way (the evaluator takes an
    # already-built filter), so the import here is type-only.
    from repro.dse.surrogate import SurrogateFilter

#: Quantization grid for candidate evaluation: per-branch budgets are
#: snapped DOWN to this grid before Algorithm 2 runs, so every budget in a
#: bucket evaluates to the exact same solution. That makes the evaluation a
#: pure function of the bucket — which is what lets any cache backend be a
#: transparent memo that can never change search results.
_COMPUTE_GRID = 4
_MEMORY_GRID = 4
_BANDWIDTH_GRID = 0.05

#: A cache key: (spec digest, branch index, quantized budget bucket).
EvalKey = tuple[str, int, tuple[int, int, int]]


@dataclass(frozen=True)
class EvalSpec:
    """The frozen evaluation *problem*, as one picklable bundle.

    Deliberately objective-free: the spec (and therefore its digest, which
    namespaces every cache key) describes only what is being evaluated —
    plan, budget, customization, quantization, frequency. How candidates
    are *scored* lives in the parent-side
    :class:`~repro.dse.objective.Objective`, so switching objectives never
    invalidates a warm cache.
    """

    plan: PipelinePlan
    budget: ResourceBudget
    customization: Customization
    quant: QuantScheme
    frequency_mhz: float = 200.0

    @cached_property
    def digest(self) -> str:
        """Stable fingerprint of the spec (namespaces shared-cache keys)."""
        blob = pickle.dumps(
            (
                self.plan,
                self.budget,
                self.customization,
                self.quant,
                self.frequency_mhz,
            )
        )
        return hashlib.sha1(blob).hexdigest()


@dataclass(frozen=True)
class CandidateEval:
    """Metrics, score, and solutions for one candidate, with cache stats.

    ``metrics`` is the oracle-layer record (objective-independent);
    ``score`` is the parent-applied objective over those metrics, kept
    alongside so the PSO loop does not re-score per comparison.
    """

    score: float
    metrics: BranchMetrics
    solutions: tuple[BranchSolution, ...]
    evaluations: int
    cache_hits: int
    #: True when the surrogate filter skipped this candidate's solves:
    #: ``score`` / ``metrics`` are then *predictions* (bounded below the
    #: candidate's best-update thresholds) and ``solutions`` is empty.
    pruned: bool = False


def quantize_rd(rd: ResourceBudget) -> tuple[int, int, int]:
    return (
        rd.compute // _COMPUTE_GRID,
        rd.memory // _MEMORY_GRID,
        int(rd.bandwidth_gbps / _BANDWIDTH_GRID),
    )


def canonical_rd(bucket: tuple[int, int, int]) -> ResourceBudget:
    """The single budget every member of a quantization bucket evaluates as.

    Snapping down (floor) keeps the canonical budget conservative: a
    solution sized for it always fits the raw budget it stands in for.
    """
    compute, memory, bandwidth = bucket
    return ResourceBudget(
        compute=compute * _COMPUTE_GRID,
        memory=memory * _MEMORY_GRID,
        bandwidth_gbps=bandwidth * _BANDWIDTH_GRID,
    )


def split_budget(
    spec: EvalSpec, position: Sequence[float]
) -> list[ResourceBudget]:
    """Turn a 3xB fraction vector into absolute per-branch budgets."""
    B = spec.plan.num_branches
    compute = position[0:B]
    memory = position[B : 2 * B]
    bandwidth = position[2 * B : 3 * B]
    return [
        ResourceBudget(
            compute=int(spec.budget.compute * compute[j]),
            memory=int(spec.budget.memory * memory[j]),
            bandwidth_gbps=spec.budget.bandwidth_gbps * bandwidth[j],
        )
        for j in range(B)
    ]


def candidate_keys(spec: EvalSpec, position: Sequence[float]) -> list[EvalKey]:
    """The per-branch cache keys one candidate position resolves to."""
    return [
        (spec.digest, branch, quantize_rd(rd))
        for branch, rd in enumerate(split_budget(spec, position))
    ]


def rerank_key(
    spec: EvalSpec, oracle_key: str, position: Sequence[float]
) -> tuple:
    """Cache key for one candidate's expensive (re-rank) oracle metrics.

    Unlike the per-branch analytical entries, expensive metrics depend on
    which oracle produced them, so the oracle identity is folded into the
    key. The candidate is identified by its quantized bucket vector — every
    position in the same buckets completes to the same configuration, so
    its replay/simulation is the same measurement.
    """
    buckets = tuple(
        quantize_rd(rd) for rd in split_budget(spec, position)
    )
    return (spec.digest, "rerank", oracle_key, buckets)


# ---------------------------------------------------------------------------
# per-process state: Algorithm-2 tables and the worker-side L1
# ---------------------------------------------------------------------------
#: Branch tables are expensive to warm (their memo dicts are the hot-path
#: optimization) but tiny, so they are kept per process keyed by
#: (spec digest, branch). Forked workers inherit the parent's warm tables
#: for free. The cap only guards pathological sweeps over thousands of
#: distinct specs in one long-lived process.
_TABLES: dict[tuple[str, int], BranchEvalTable] = {}
_TABLES_CAP = 512

#: Worker-side L1 of solved buckets. The parent's generation dedup means a
#: well-behaved driver never sends the same key twice, so this is a cheap
#: safety net for custom drivers — and the base the per-chunk delta cache
#: overlays.
_WORKER_L1 = LocalEvalCache()
_WORKER_L1_CAP = 200_000


def clear_process_caches() -> None:
    """Drop this process's warm tables and solved-bucket L1.

    Benchmark / test hygiene only: back-to-back measured runs in one
    process (e.g. the serial-vs-parallel bench) would otherwise leak the
    first run's warm Algorithm-2 tables into the second — via plain
    module state in the parent and via fork inheritance in its workers —
    and blur the comparison.
    """
    _TABLES.clear()
    _WORKER_L1.clear()
    _SPEC_BLOBS.clear()
    _POOL_SPECS.clear()


def branch_table(spec: EvalSpec, branch: int) -> BranchEvalTable:
    """The process-local Algorithm-2 table for one branch of a spec."""
    key = (spec.digest, branch)
    table = _TABLES.get(key)
    if table is None:
        if len(_TABLES) >= _TABLES_CAP:
            _TABLES.clear()
        table = BranchEvalTable(
            spec.plan.branches[branch],
            spec.quant,
            spec.frequency_mhz,
            max_h=spec.customization.max_h,
            max_pf=spec.customization.max_pf,
        )
        _TABLES[key] = table
    return table


def solve_bucket(spec: EvalSpec, branch: int, bucket: tuple[int, int, int]) -> BranchSolution:
    """Run Algorithm 2 for one ``(branch, bucket)`` subproblem (pure)."""
    return optimize_branch(
        spec.plan.branches[branch],
        canonical_rd(bucket),
        spec.customization.batch_sizes[branch],
        spec.quant,
        spec.frequency_mhz,
        max_h=spec.customization.max_h,
        max_pf=spec.customization.max_pf,
        table=branch_table(spec, branch),
    )


def solve_key_batch(
    spec: EvalSpec,
    keys: Sequence[EvalKey],
    timings: KernelTimings | None = None,
) -> dict[EvalKey, BranchSolution]:
    """Solve a batch of cache keys through the batched Algorithm-2 kernel.

    Groups the keys by branch and hands each branch's budget buckets to
    :func:`repro.dse.kernel.solve_buckets` as one vectorized pass — the
    hot path of every generation. Bit-identical to calling
    :func:`solve_bucket` per key (the kernel's core guarantee), just
    without the per-bucket Python loops. Duplicate keys are tolerated and
    resolve to one mapping entry.
    """
    by_branch: dict[int, list[EvalKey]] = {}
    for key in keys:
        by_branch.setdefault(key[1], []).append(key)
    solved: dict[EvalKey, BranchSolution] = {}
    for branch in sorted(by_branch):
        branch_keys = by_branch[branch]
        solutions = solve_buckets(
            branch_table(spec, branch),
            [canonical_rd(key[2]) for key in branch_keys],
            spec.customization.batch_sizes[branch],
            timings,
        )
        solved.update(zip(branch_keys, solutions))
    return solved


def evaluate_candidate(
    spec: EvalSpec,
    position: Sequence[float],
    cache: EvalCache,
    objective: Objective | None = None,
) -> CandidateEval:
    """Complete a distribution into configs, derive metrics, and score them.

    The single-candidate entry point (kept for direct callers and tests);
    searches go through :class:`GenerationEvaluator`, which batches the
    same arithmetic with generation-level dedup. ``objective`` defaults to
    the paper's Sec. VI-B1 fitness.
    """
    if objective is None:
        objective = PaperObjective()
    solutions: list[BranchSolution] = []
    evaluations = 0
    cache_hits = 0
    for key in candidate_keys(spec, position):
        solution = cache.get(key)
        if solution is None:
            solution = solve_bucket(spec, key[1], key[2])
            cache.put(key, solution)
            evaluations += 1
        else:
            cache_hits += 1
        solutions.append(solution)
    metrics = metrics_from_solutions(solutions)
    return CandidateEval(
        score=penalized_score(
            objective, metrics, spec.customization.priorities
        ),
        metrics=metrics,
        solutions=tuple(solutions),
        evaluations=evaluations,
        cache_hits=cache_hits,
    )


# ---------------------------------------------------------------------------
# worker protocol: chunks of subproblems in, deltas out
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkResult:
    """One worker's answer for a chunk: the cache delta plus statistics.

    ``solve_seconds`` is CPU time (scheduling-robust); the kernel phase
    split (``ladder`` / ``growth`` / ``measure``) is wall time from the
    batched solver, attributing *where* inside Algorithm 2 the solve time
    went rather than re-measuring its total.
    """

    entries: tuple[tuple[EvalKey, BranchSolution], ...]
    solve_seconds: float
    stage_hits: int
    stage_lookups: int
    ladder_seconds: float = 0.0
    growth_seconds: float = 0.0
    measure_seconds: float = 0.0


def solve_chunk(spec: EvalSpec, keys: Sequence[EvalKey]) -> ChunkResult:
    """Solve a chunk of ``(branch, bucket)`` subproblems, returning deltas.

    Runs in the worker process. The chunk's unseen keys are solved in one
    batched-kernel pass per branch through a :class:`DeltaEvalCache` over
    the process-local L1, so repeated keys (possible only with custom
    drivers — the engine dedups) cost nothing, and every requested key
    comes back in ``entries`` either way.
    """
    hits_before, lookups_before = stage_memo_stats()
    # CPU time, not wall: on an oversubscribed machine a worker's wall
    # clock includes time it spent scheduled out, which would overstate
    # the solve cost by the contention factor.
    started = time.process_time()
    kernel_timings = KernelTimings()
    delta = DeltaEvalCache(_WORKER_L1)
    todo = []
    todo_set = set()
    for key in keys:
        if key not in todo_set and delta.get(key) is None:
            todo_set.add(key)
            todo.append(key)
    if todo:
        solved = solve_key_batch(spec, todo, kernel_timings)
        put_entries(delta, [(key, solved[key]) for key in todo])
    entries = [(key, delta.get(key)) for key in keys]
    if len(_WORKER_L1) >= _WORKER_L1_CAP:
        _WORKER_L1.clear()
    delta.merge()
    hits_after, lookups_after = stage_memo_stats()
    return ChunkResult(
        entries=tuple(entries),
        solve_seconds=time.process_time() - started,
        stage_hits=hits_after - hits_before,
        stage_lookups=lookups_after - lookups_before,
        ladder_seconds=kernel_timings.ladder_seconds,
        growth_seconds=kernel_timings.growth_seconds,
        measure_seconds=kernel_timings.measure_seconds,
    )


# Chunk transport is kept lean: the parent pickles each spec once (memo
# below), workers unpickle each digest once (memo below), and keys travel
# as bare (branch, bucket) pairs — the 40-char digest they share rides
# along once per chunk instead of once per key.
_SPEC_BLOBS: dict[str, bytes] = {}
_POOL_SPECS: dict[str, EvalSpec] = {}

#: (digest, pickled spec, per-key (branch, bucket) pairs)
ChunkTask = tuple[str, bytes, tuple[tuple[int, tuple[int, int, int]], ...]]


def _spec_blob(spec: EvalSpec) -> bytes:
    blob = _SPEC_BLOBS.get(spec.digest)
    if blob is None:
        if len(_SPEC_BLOBS) >= _TABLES_CAP:
            _SPEC_BLOBS.clear()
        blob = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        _SPEC_BLOBS[spec.digest] = blob
    return blob


def _run_chunk(task: ChunkTask) -> ChunkResult:
    digest, blob, pairs = task
    spec = _POOL_SPECS.get(digest)
    if spec is None:
        if len(_POOL_SPECS) >= _TABLES_CAP:
            _POOL_SPECS.clear()
        spec = pickle.loads(blob)
        _POOL_SPECS[digest] = spec
    keys = [(digest, branch, bucket) for branch, bucket in pairs]
    return solve_chunk(spec, keys)


def _chunk_tasks(
    spec: EvalSpec, keys: Sequence[EvalKey], workers: int
) -> list[ChunkTask]:
    """Split the generation's unique subproblems into pool-sized tasks."""
    pairs = [(key[1], key[2]) for key in keys]
    chunks = max(1, min(len(pairs), workers * 2))
    size = -(-len(pairs) // chunks)
    blob = _spec_blob(spec)
    return [
        (spec.digest, blob, tuple(pairs[i : i + size]))
        for i in range(0, len(pairs), size)
    ]


# ---------------------------------------------------------------------------
# the per-generation evaluator (serial and parallel share it)
# ---------------------------------------------------------------------------
@dataclass
class EvalTimings:
    """Where one search's candidate-evaluation time went.

    ``eval_seconds`` is aggregate Algorithm-2 solve CPU time, summed
    across workers for parallel runs (serial runs measure the same loop
    inline, where CPU and wall coincide). ``cache_seconds`` is the
    parent-side bucketing / dedup / fold / rehydration cost.
    ``overhead_seconds`` is everything else a dispatched generation
    cost: pickling, scheduling, result transport, and core contention —
    the dispatch wall minus the solve time's ideal share per worker,
    clamped at zero.

    The ``ladder`` / ``growth`` / ``measure`` fields split the batched
    kernel's share of ``eval_seconds`` by Algorithm-2 phase (rung
    descent, bottleneck doubling, final branch measurement). They are
    wall-clock inside the solving process, so under heavy core
    contention their sum can drift from the CPU-time ``eval_seconds``;
    they attribute where the solve went, they do not re-measure it.
    """

    eval_seconds: float = 0.0
    cache_seconds: float = 0.0
    overhead_seconds: float = 0.0
    ladder_seconds: float = 0.0
    growth_seconds: float = 0.0
    measure_seconds: float = 0.0

    def add(self, other: "EvalTimings") -> None:
        self.eval_seconds += other.eval_seconds
        self.cache_seconds += other.cache_seconds
        self.overhead_seconds += other.overhead_seconds
        self.ladder_seconds += other.ladder_seconds
        self.growth_seconds += other.growth_seconds
        self.measure_seconds += other.measure_seconds


#: A submit callback ships unique unseen keys to workers and returns their
#: chunk results; ``None`` means solve inline (serial).
SubmitFn = Callable[[Sequence[EvalKey]], "list[ChunkResult]"]


class GenerationEvaluator:
    """Evaluate one generation of candidates with generation-level dedup.

    Calling the evaluator IS the per-generation barrier: it returns one
    :class:`CandidateEval` per position, in submission order, after every
    unique unseen subproblem of the generation has been solved and folded
    into the authoritative cache.

    The evaluator produces *metrics* from the cache and applies the
    objective parent-side during rehydration — workers only ever solve
    buckets, so cached entries stay objective-independent.

    Accounting matches the per-candidate serial loop bit for bit: the
    first candidate to reference a new bucket is charged the evaluation,
    every later reference in the generation counts as a cache hit.
    """

    def __init__(
        self,
        spec: EvalSpec,
        cache: EvalCache,
        submit: SubmitFn | None = None,
        workers: int = 1,
        objective: Objective | None = None,
        surrogate: "SurrogateFilter | None" = None,
    ) -> None:
        self.spec = spec
        self.cache = cache
        self.workers = max(1, workers)
        self.objective = objective if objective is not None else PaperObjective()
        self.surrogate = surrogate
        self._submit = submit
        self.timings = EvalTimings()
        self.stage_hits = 0
        self.stage_lookups = 0

    def _solve_inline(
        self, todo: Sequence[EvalKey]
    ) -> dict[EvalKey, BranchSolution]:
        hits_before, lookups_before = stage_memo_stats()
        started = time.perf_counter()
        kernel_timings = KernelTimings()
        solved = solve_key_batch(self.spec, todo, kernel_timings)
        put_entries(self.cache, [(key, solved[key]) for key in todo])
        self.timings.eval_seconds += time.perf_counter() - started
        self.timings.ladder_seconds += kernel_timings.ladder_seconds
        self.timings.growth_seconds += kernel_timings.growth_seconds
        self.timings.measure_seconds += kernel_timings.measure_seconds
        hits_after, lookups_after = stage_memo_stats()
        self.stage_hits += hits_after - hits_before
        self.stage_lookups += lookups_after - lookups_before
        return solved

    def _solve_pooled(
        self, todo: Sequence[EvalKey]
    ) -> dict[EvalKey, BranchSolution]:
        dispatched = time.perf_counter()
        results = self._submit(todo)
        dispatch_wall = time.perf_counter() - dispatched
        solve_seconds = 0.0
        solved: dict[EvalKey, BranchSolution] = {}
        fold: list[tuple[EvalKey, BranchSolution]] = []
        for result in results:
            fold.extend(result.entries)
            solve_seconds += result.solve_seconds
            self.stage_hits += result.stage_hits
            self.stage_lookups += result.stage_lookups
            self.timings.ladder_seconds += result.ladder_seconds
            self.timings.growth_seconds += result.growth_seconds
            self.timings.measure_seconds += result.measure_seconds
        put_entries(self.cache, fold)
        solved.update(fold)
        self.timings.eval_seconds += solve_seconds
        self.timings.overhead_seconds += max(
            0.0, dispatch_wall - solve_seconds / self.workers
        )
        return solved

    def __call__(
        self,
        positions: Sequence[Sequence[float]],
        thresholds: Sequence[float] | None = None,
    ) -> list[CandidateEval]:
        """Evaluate one generation; optionally prune against ``thresholds``.

        ``thresholds[i]`` is the lowest score that could still matter for
        candidate ``i`` — ``min(particle best, global best + tolerance)``
        at dispatch time (see
        :meth:`~repro.dse.crossbranch.CrossBranchOptimizer.search`). When
        a surrogate filter is attached and thresholds are given, the
        filter may skip solving candidates whose calibrated score bound
        falls below their threshold: their unseen buckets never reach
        Algorithm 2. Without a filter (or thresholds), the path is the
        historical one, bit for bit.
        """
        bucket_started = time.perf_counter()
        keys_per_candidate = [
            candidate_keys(self.spec, position) for position in positions
        ]

        pruned: dict[int, "object"] = {}
        predictions: dict[int, "object"] = {}
        if self.surrogate is not None and thresholds is not None:
            self.surrogate.prepare()
            if self.surrogate.ready():
                predictions = self.surrogate.predict_candidates(
                    keys_per_candidate, self.cache
                )
                for i, prediction in predictions.items():
                    verdict = self.surrogate.decide(prediction, thresholds[i])
                    if verdict is not None:
                        pruned[i] = verdict

        todo: list[EvalKey] = []
        todo_set: set[EvalKey] = set()
        for i, keys in enumerate(keys_per_candidate):
            if i in pruned:
                continue
            for key in keys:
                if key not in todo_set and self.cache.get(key) is None:
                    todo_set.add(key)
                    todo.append(key)
        if self.surrogate is not None:
            # The buckets pruning actually saved: unseen, and referenced
            # by no surviving candidate this generation.
            skipped: set[EvalKey] = set()
            for i in pruned:
                for key in keys_per_candidate[i]:
                    if key not in todo_set and self.cache.get(key) is None:
                        skipped.add(key)
            self.surrogate.note_generation(len(skipped), len(todo))
        self.timings.cache_seconds += time.perf_counter() - bucket_started

        if todo:
            # Tiny generations are not worth a round-trip to the pool.
            if self._submit is None or len(todo) < self.workers:
                solved = self._solve_inline(todo)
            else:
                solved = self._solve_pooled(todo)
            if self.surrogate is not None:
                # Solutions feed the model straight from the solve batch
                # (no cache round-trip), in dedup order as before.
                self.surrogate.record_solutions(
                    [(key[1], key[2], solved[key]) for key in todo]
                )

        rehydrate_started = time.perf_counter()
        out: list[CandidateEval] = []
        claimed: set[EvalKey] = set()
        for i, keys in enumerate(keys_per_candidate):
            verdict = pruned.get(i)
            if verdict is not None:
                out.append(
                    CandidateEval(
                        score=verdict.score,
                        metrics=verdict.metrics,
                        solutions=(),
                        evaluations=0,
                        cache_hits=0,
                        pruned=True,
                    )
                )
                continue
            solutions = []
            evaluations = 0
            cache_hits = 0
            for key in keys:
                if key in todo_set and key not in claimed:
                    claimed.add(key)
                    evaluations += 1
                else:
                    cache_hits += 1
                solution = self.cache.get(key)
                assert solution is not None, f"bucket never solved: {key}"
                solutions.append(solution)
            metrics = metrics_from_solutions(solutions)
            score = penalized_score(
                self.objective, metrics, self.spec.customization.priorities
            )
            prediction = predictions.get(i)
            if prediction is not None:
                # Predicted, then solved anyway: the exact score is a
                # free residual observation that tightens (or widens)
                # the filter's safety margin.
                self.surrogate.observe(prediction, score)
            out.append(
                CandidateEval(
                    score=score,
                    metrics=metrics,
                    solutions=tuple(solutions),
                    evaluations=evaluations,
                    cache_hits=cache_hits,
                )
            )
        self.timings.cache_seconds += time.perf_counter() - rehydrate_started
        return out


# ---------------------------------------------------------------------------
# pools
# ---------------------------------------------------------------------------
class SweepWorkerPool:
    """A process pool that outlives one search and serves a whole sweep.

    ``candidate_runner`` forks (and tears down) a fresh pool per search,
    which is the right shape for a single exploration but wastes startup
    on every case of a batch sweep. This pool is created once per sweep
    and fed chunks of ``(branch, bucket)`` subproblems; workers memoize
    each spec's Algorithm-2 tables by digest, so dispatching case #37
    costs the same as case #1 — no shared cache, no spec registration,
    no bookkeeping entries to clean up.

    Evaluation stays the same pure function either way, so results are
    bit-identical to per-search pools and to serial evaluation.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(),
        )

    def solve(
        self, spec: EvalSpec, keys: Sequence[EvalKey]
    ) -> list[ChunkResult]:
        """Solve one generation's unique subproblems, chunked over workers."""
        assert self._pool is not None, "pool is closed"
        tasks = _chunk_tasks(spec, keys, self.workers)
        return list(self._pool.map(_run_chunk, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def candidate_runner(
    spec: EvalSpec,
    cache: EvalCache,
    workers: int = 1,
    pool: SweepWorkerPool | None = None,
    objective: Objective | None = None,
    surrogate: "SurrogateFilter | None" = None,
) -> Iterator[GenerationEvaluator]:
    """Yield the generation evaluator for one search.

    The yielded callable evaluates one generation's positions and returns
    results in submission order — calling it IS the per-generation
    barrier. ``cache`` is the authoritative store in every mode (local,
    file-backed, or Manager — the parent is its only writer during the
    search, so no promotion or drain-back dance is needed). ``workers >
    1`` forks a pool for the search's lifetime; a live
    :class:`SweepWorkerPool` takes precedence, and its lifetime belongs
    to the sweep that owns it. ``surrogate`` attaches a pre-solve filter
    (:class:`~repro.dse.surrogate.SurrogateFilter`) that the evaluator
    consults when the caller passes per-candidate thresholds.
    """
    if pool is not None:
        yield GenerationEvaluator(
            spec,
            cache,
            submit=lambda keys: pool.solve(spec, keys),
            workers=pool.workers,
            objective=objective,
            surrogate=surrogate,
        )
        return

    if workers <= 1:
        yield GenerationEvaluator(
            spec, cache, objective=objective, surrogate=surrogate
        )
        return

    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context(),
    ) as executor:

        def submit(keys: Sequence[EvalKey]) -> list[ChunkResult]:
            tasks = _chunk_tasks(spec, keys, workers)
            return list(executor.map(_run_chunk, tasks))

        yield GenerationEvaluator(
            spec,
            cache,
            submit=submit,
            workers=workers,
            objective=objective,
            surrogate=surrogate,
        )


__all__ = [
    "CandidateEval",
    "ChunkResult",
    "EvalKey",
    "EvalSpec",
    "EvalTimings",
    "GenerationEvaluator",
    "INFEASIBILITY_PENALTY",
    "SweepWorkerPool",
    "branch_table",
    "candidate_keys",
    "candidate_runner",
    "canonical_rd",
    "evaluate_candidate",
    "quantize_rd",
    "rerank_key",
    "solve_bucket",
    "solve_chunk",
    "solve_key_batch",
    "split_budget",
]
