"""Evaluation-cache backends for the DSE.

Algorithm 2 is a pure function of ``(branch, resource distribution,
customization, quantization, frequency)``, so its solutions can be memoized
aggressively. All backends share one small mapping interface
(``get`` / ``put`` / ``items`` / ``len``) and hold two kinds of entries,
both built in :mod:`repro.dse.worker`:

- **analytical solutions** under ``(spec digest, branch index, quantized
  budget bucket)`` — per-branch Algorithm-2 results. These are *metrics*,
  not scores: the objective is applied parent-side after rehydration, so
  the entries are valid under every objective and a warm cache keeps
  hitting when the caller switches from the paper fitness to an SLO one.
  The spec digest (which deliberately excludes the objective) namespaces
  entries, so one cache can safely serve a whole sweep of different
  models, budgets, and precisions at once.
- **re-rank metrics** under ``(spec digest, "rerank", oracle key,
  bucket vector)`` — whole-candidate
  :class:`~repro.dse.objective.BranchMetrics` from an expensive oracle
  (cycle-accurate sim, serving replay). Only these keys fold in the
  oracle identity: expensive measurements depend on which oracle took
  them, while the analytical entries are the same for every oracle stack.

Backends, in the order a search should prefer them:

- :class:`LocalEvalCache` — a plain dict. The default, and since the
  parallel data path went zero-IPC (the parent deduplicates each
  generation against this authoritative store and workers return their
  solutions as deltas) it serves parallel searches too: worker processes
  never touch the parent's cache directly.
- :class:`FileEvalCache` — a SQLite-backed append-log that persists across
  runs and processes. Warm-starting a search from a previous run's file is
  free, and the file is the seam for sharding one sweep across machines
  (each machine appends its deltas; a merge is a plain ``put`` loop).
- :class:`SharedEvalCache` — the legacy ``multiprocessing.Manager`` dict.
  Every ``get``/``put`` is an IPC round-trip to the manager process, which
  made 4-worker searches *slower* than serial; it remains only as a
  compatibility fallback for callers that genuinely need one live mapping
  visible from several processes at once.
- :class:`DeltaEvalCache` — an overlay recording new entries on top of any
  read-only base. Workers evaluate through one of these so a chunk's new
  solutions come back as an explicit delta (``new_entries``) that the
  parent folds into the authoritative store at the generation barrier.

Because cached values are deterministic pure-function results, a cache hit
is bit-identical to recomputation — sharing, persisting, or merging caches
never changes search results, only how fast they arrive.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sqlite3
from typing import Any, Hashable, Iterable, Iterator, Protocol


class EvalCache(Protocol):
    """What the evaluator and the pool plumbing need from a cache."""

    def get(self, key: Hashable) -> Any | None: ...

    def put(self, key: Hashable, value: Any) -> None: ...

    def put_many(
        self, entries: Iterable[tuple[Hashable, Any]]
    ) -> None: ...

    def items(self) -> Iterable[tuple[Hashable, Any]]: ...

    def __len__(self) -> int: ...


def put_entries(
    cache: EvalCache, entries: Iterable[tuple[Hashable, Any]]
) -> None:
    """Bulk-insert entries, tolerating caches without ``put_many``.

    The batched kernel produces whole generations of solutions at once;
    every in-tree backend takes them in one :meth:`put_many` call, while
    duck-typed caches from external drivers fall back to per-entry
    ``put`` with identical results.
    """
    put_many = getattr(cache, "put_many", None)
    if put_many is not None:
        put_many(entries)
        return
    for key, value in entries:
        cache.put(key, value)


class LocalEvalCache:
    """A plain in-process memoization table."""

    def __init__(self) -> None:
        self._store: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any | None:
        return self._store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        self._store[key] = value

    def put_many(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        self._store.update(entries)

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return self._store.items()

    def harvest(self, digest: str) -> list[tuple[int, tuple[int, int, int], Any]]:
        """One spec's entries as surrogate training rows (sorted)."""
        return harvest_entries(self, digest)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)


class DeltaEvalCache:
    """An overlay that records every new entry on top of a base cache.

    Reads fall through to the base; writes land only in the overlay. The
    overlay is the *delta*: everything this cache learned that the base
    did not already know. Workers evaluate a chunk through one of these
    and ship ``new_entries()`` back, so the parent can fold exactly the
    new solutions into the authoritative store without any shared state.
    """

    def __init__(self, base: EvalCache | None = None) -> None:
        self.base: EvalCache = base if base is not None else LocalEvalCache()
        self._delta: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any | None:
        value = self._delta.get(key)
        if value is None:
            value = self.base.get(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._delta[key] = value

    def put_many(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        self._delta.update(entries)

    def new_entries(self) -> list[tuple[Hashable, Any]]:
        """The delta: entries put here that the base never saw."""
        return list(self._delta.items())

    def merge(self) -> int:
        """Fold the delta into the base and reset; returns entries merged."""
        merged = len(self._delta)
        for key, value in self._delta.items():
            self.base.put(key, value)
        self._delta.clear()
        return merged

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        seen = set()
        for key, value in self._delta.items():
            seen.add(key)
            yield key, value
        for key, value in self.base.items():
            if key not in seen:
                yield key, value

    def harvest(self, digest: str) -> list[tuple[int, tuple[int, int, int], Any]]:
        """One spec's entries (delta over base) as sorted training rows."""
        return harvest_entries(self, digest)

    def __len__(self) -> int:
        return len(self._delta) + sum(
            1 for key, _ in self.base.items() if key not in self._delta
        )


class FileEvalCache:
    """A persistent cache backed by a SQLite append-log.

    The whole table is loaded into a dict at open, so every ``get`` is a
    plain dict lookup — the file is touched only at open and at
    :meth:`flush` (which appends the entries written since the last
    flush). Keys and values are pickled; values are pure-function results,
    so merging files from different runs or machines is always safe.

    This backend is what makes warm starts and cross-machine sharding
    work: run a sweep once, and every later run (or every other shard
    pointed at a copy of the file) starts with all of its solutions
    already solved.

    **Crash consistency.** Each :meth:`flush` appends the whole dirty set
    in a single SQLite transaction (the ``with self._conn`` block), and
    SQLite's journal makes that transaction atomic: a process killed
    mid-flush leaves the file holding either *all* of that flush's
    entries or *none* of them — never a torn batch, never a corrupt
    database. On reopen the partial transaction is rolled back
    automatically and every entry from earlier flushes is intact. Since
    entries are pure-function results, losing an unflushed batch costs
    recomputation only; it can never change a search result. This is the
    property the fleet runtime leans on when a worker dies mid-sweep
    (:mod:`repro.dist`), and ``tests/test_dist.py`` kills a flushing
    process on purpose to hold it.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._store: dict[Hashable, Any] = {}
        self._dirty: dict[Hashable, Any] = {}
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS eval_cache "
            "(key BLOB PRIMARY KEY, value BLOB)"
        )
        self._conn.commit()
        for key_blob, value_blob in self._conn.execute(
            "SELECT key, value FROM eval_cache"
        ):
            self._store[pickle.loads(key_blob)] = pickle.loads(value_blob)

    def get(self, key: Hashable) -> Any | None:
        return self._store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        # Overwrites are dirty too: last writer wins across reopen, not
        # just in memory (merging a corrected shard file must stick).
        self._dirty[key] = value
        self._store[key] = value

    def put_many(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        for key, value in entries:
            self._dirty[key] = value
            self._store[key] = value

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return self._store.items()

    def harvest(self, digest: str) -> list[tuple[int, tuple[int, int, int], Any]]:
        """One spec's persisted entries as sorted training rows.

        Because the file is the training set, a warm start warms the
        surrogate *model* along with the solution memo — no separate
        model artifact to version or ship.
        """
        return harvest_entries(self, digest)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def pending_writes(self) -> int:
        """Entries not yet appended to the file."""
        return len(self._dirty)

    def flush(self) -> int:
        """Append unsaved entries to the file; returns how many."""
        if not self._dirty:
            return 0
        rows = [
            (
                pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL),
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            )
            for key, value in self._dirty.items()
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO eval_cache (key, value) "
                "VALUES (?, ?)",
                rows,
            )
        flushed = len(self._dirty)
        self._dirty.clear()
        return flushed

    def close(self) -> None:
        if self._conn is not None:
            self.flush()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FileEvalCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SharedEvalCache:
    """Compatibility fallback: a cache backed by a ``Manager`` dict.

    Every lookup or store is an IPC round-trip to the manager process, so
    this backend should never sit on a search's hot path — the zero-IPC
    data path (parent-side dedup + worker deltas) replaced it there. It
    remains for callers that need one live mapping genuinely shared
    between processes, e.g. ad-hoc cross-process coordination outside the
    engine's own pools.

    The instance is picklable: workers receive the dict *proxy* (which
    reconnects to the manager server) plus a fresh empty L1. The manager
    process itself lives in — and is shut down by — the creating process;
    call :meth:`close` (or use the instance as a context manager) when
    done. Entries are immutable results of a deterministic function, so
    the L1 can never go stale in a way that changes results.
    """

    def __init__(self) -> None:
        self._manager: multiprocessing.managers.SyncManager | None = (
            multiprocessing.Manager()
        )
        self._store = self._manager.dict()
        self._l1: dict[Hashable, Any] = {}
        self._undrained: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any | None:
        value = self._l1.get(key)
        if value is None:
            value = self._store.get(key)
            if value is not None:
                self._l1[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._l1[key] = value
        self._store[key] = value
        self._undrained[key] = value

    def put_many(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        # One proxy round-trip per entry either way (Manager dicts have no
        # efficient bulk update through the proxy's update() that avoids
        # re-sending the whole mapping), so this is put() in a loop.
        for key, value in entries:
            self.put(key, value)

    def preload(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        """Seed the shared store (e.g. from a warm local cache).

        Preloaded entries are by definition already known to the caller,
        so they are excluded from :meth:`drain_new`.
        """
        for key, value in entries:
            self._l1[key] = value
            self._store[key] = value

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return self._store.items()

    def drain_new(self) -> list[tuple[Hashable, Any]]:
        """Entries put through *this* handle since the last drain.

        Unlike :meth:`items`, this never round-trips the proxy: the owner
        side tracks its own writes, so draining a warm cache back into a
        local one costs nothing per already-drained entry. Preloaded
        entries are not "new". An owner that never drains merely keeps
        one extra dict slot per entry (the same references the L1 already
        holds), bounded by the cache size.
        """
        drained = list(self._undrained.items())
        self._undrained.clear()
        return drained

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        """Shut down the manager process (owner side only)."""
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def __enter__(self) -> "SharedEvalCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Workers get the reconnectable proxy, never the manager or the L1.
    def __getstate__(self) -> dict[str, Any]:
        return {"store": self._store}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._manager = None
        self._store = state["store"]
        self._l1 = {}
        self._undrained = {}


# ---------------------------------------------------------------------------
# surrogate training harvest
# ---------------------------------------------------------------------------
def harvest_entries(
    cache: EvalCache, digest: str
) -> list[tuple[int, tuple[int, int, int], Any]]:
    """One spec's analytical entries as sorted surrogate training rows.

    Filters the cache down to the ``(digest, branch index, bucket)``
    analytical keys of one problem spec — re-rank entries (their second
    element is the string ``"rerank"``) and other specs' entries are
    skipped — and returns ``(branch, bucket, solution)`` rows sorted by
    ``(branch, bucket)``. The sort makes the harvest order a pure
    function of the cache's *contents*: training a model from a file
    cache, from the same entries held locally, or from a merged shard
    file yields the identical model.

    Works on every backend through the shared ``items()`` interface, so
    a persistent :class:`FileEvalCache` warm-starts the surrogate model
    exactly as it warm-starts the solution memo — for free, from the
    same file.
    """
    rows = [
        (key[1], key[2], value)
        for key, value in cache.items()
        if isinstance(key, tuple)
        and len(key) == 3
        and key[0] == digest
        and isinstance(key[1], int)
    ]
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


#: Backend names accepted by :func:`make_cache` (and the CLI).
CACHE_BACKENDS = ("local", "file", "manager")


def make_cache(backend: str = "local", path: str | None = None) -> EvalCache:
    """Build an evaluation cache by backend name.

    - ``"local"`` — :class:`LocalEvalCache`; right for everything that
      runs inside one engine process (serial *and* parallel searches).
    - ``"file"`` — :class:`FileEvalCache` at ``path``; persists across
      runs, required for warm starts and cross-machine sharding.
    - ``"manager"`` — :class:`SharedEvalCache`; compatibility fallback,
      pays one IPC round-trip per lookup.
    """
    if backend == "local":
        return LocalEvalCache()
    if backend == "file":
        if not path:
            raise ValueError("the file backend needs a path")
        return FileEvalCache(path)
    if backend == "manager":
        return SharedEvalCache()
    raise ValueError(
        f"unknown cache backend {backend!r}; pick one of {CACHE_BACKENDS}"
    )


__all__ = [
    "CACHE_BACKENDS",
    "DeltaEvalCache",
    "EvalCache",
    "FileEvalCache",
    "LocalEvalCache",
    "SharedEvalCache",
    "harvest_entries",
    "make_cache",
    "put_entries",
]
