"""Evaluation caches for the DSE (in-process and cross-process).

Algorithm 2 is a pure function of ``(branch, resource distribution,
customization, quantization, frequency)``, so its solutions can be memoized
aggressively. Two implementations share one small mapping interface
(``get`` / ``put`` / ``items`` / ``len``):

- :class:`LocalEvalCache` — a plain dict, used by serial searches;
- :class:`SharedEvalCache` — a ``multiprocessing.Manager`` dict visible to
  every worker process of a parallel search (or to every search of a batch
  sweep), fronted by a per-process L1 dict so hot keys cost one IPC
  round-trip at most once per process.

Cache keys are ``(spec digest, branch index, quantized budget bucket)``
(built in :func:`repro.dse.worker.evaluate_candidate`); the spec digest
namespaces entries, so one shared cache can safely serve a whole sweep of
different models, budgets, and precisions at once.

Because cached values are deterministic pure-function results, a cache hit
is bit-identical to recomputation — sharing a cache never changes search
results, only how fast they arrive.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Hashable, Iterable, Protocol


class EvalCache(Protocol):
    """What the evaluator and the pool plumbing need from a cache."""

    def get(self, key: Hashable) -> Any | None: ...

    def put(self, key: Hashable, value: Any) -> None: ...

    def items(self) -> Iterable[tuple[Hashable, Any]]: ...

    def __len__(self) -> int: ...


class LocalEvalCache:
    """A plain in-process memoization table."""

    def __init__(self) -> None:
        self._store: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any | None:
        return self._store.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        self._store[key] = value

    def discard(self, key: Hashable) -> None:
        self._store.pop(key, None)

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return self._store.items()

    def __len__(self) -> int:
        return len(self._store)


class SharedEvalCache:
    """A cross-process cache backed by a ``Manager`` dict.

    The instance is picklable: workers receive the dict *proxy* (which
    reconnects to the manager server) plus a fresh empty L1. The manager
    process itself lives in — and is shut down by — the creating process;
    call :meth:`close` (or use the instance as a context manager) when the
    search or sweep is done.

    Entries are immutable results of a deterministic function, so the L1
    can never go stale in a way that changes results: any value cached
    under a key equals what every other process would compute for it.
    """

    def __init__(self) -> None:
        self._manager: multiprocessing.managers.SyncManager | None = (
            multiprocessing.Manager()
        )
        self._store = self._manager.dict()
        self._l1: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any | None:
        value = self._l1.get(key)
        if value is None:
            value = self._store.get(key)
            if value is not None:
                self._l1[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._l1[key] = value
        self._store[key] = value

    def discard(self, key: Hashable) -> None:
        self._l1.pop(key, None)
        self._store.pop(key, None)

    def preload(self, entries: Iterable[tuple[Hashable, Any]]) -> None:
        """Seed the shared store (e.g. from a warm local cache)."""
        for key, value in entries:
            self.put(key, value)

    def items(self) -> Iterable[tuple[Hashable, Any]]:
        return self._store.items()

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        """Shut down the manager process (owner side only)."""
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def __enter__(self) -> "SharedEvalCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Workers get the reconnectable proxy, never the manager or the L1.
    def __getstate__(self) -> dict[str, Any]:
        return {"store": self._store}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._manager = None
        self._store = state["store"]
        self._l1 = {}
