"""The DSE engine facade (paper Fig. 4, Optimization step).

Single searches run Algorithm 1 serially or over a process pool
(``workers``); :meth:`DseEngine.search_many` batches whole sweeps — a
decoder family, a device grid, a seed study — through one shared
evaluation cache with identical cases deduplicated outright.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import EvalCache, LocalEvalCache
from repro.dse.crossbranch import CrossBranchOptimizer
from repro.dse.result import DseResult
from repro.dse.space import Customization
from repro.dse.worker import EvalSpec, SweepWorkerPool
from repro.perf.estimator import evaluate
from repro.quant.schemes import QuantScheme
from repro.utils.rng import seed_fingerprint


class DseEngine:
    """Two-step DSE: cross-branch stochastic + in-branch greedy search."""

    def __init__(
        self,
        plan: PipelinePlan,
        budget: ResourceBudget,
        customization: Customization | None = None,
        quant: QuantScheme | None = None,
        frequency_mhz: float = 200.0,
        alpha: float = 0.05,
    ) -> None:
        if quant is None:
            raise ValueError("a quantization scheme is required")
        if customization is None:
            customization = Customization.uniform(plan.num_branches)
        self.plan = plan
        self.budget = budget
        self.customization = customization
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.alpha = alpha

    @property
    def spec(self) -> EvalSpec:
        """The frozen evaluation problem this engine searches."""
        return EvalSpec(
            plan=self.plan,
            budget=self.budget,
            customization=self.customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
            alpha=self.alpha,
        )

    def search(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        heuristic_seed: bool = True,
        workers: int = 1,
        cache: EvalCache | None = None,
        pool: SweepWorkerPool | None = None,
    ) -> DseResult:
        """Run Algorithm 1 (which invokes Algorithm 2 per candidate).

        The paper's default search size is N = 20 iterations over a
        population of P = 200 resource distributions. ``workers > 1``
        evaluates each generation on a process pool — same best design,
        bit for bit, as the serial search at the same seed. ``cache``
        lets several searches share one evaluation cache and ``pool``
        lets them share one long-lived set of worker processes (see
        :meth:`search_many`, which wires up both).
        """
        optimizer = CrossBranchOptimizer(
            plan=self.plan,
            budget=self.budget,
            customization=self.customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
            alpha=self.alpha,
            cache=cache,
        )
        started = time.perf_counter()
        fitness, config, history, convergence = optimizer.search(
            iterations=iterations,
            population=population,
            seed=seed,
            heuristic_seed=heuristic_seed,
            workers=workers,
            pool=pool,
        )
        runtime = time.perf_counter() - started
        perf = evaluate(self.plan, config, self.quant, self.frequency_mhz)
        timings = optimizer.eval_timings
        return DseResult(
            best_config=config,
            best_perf=perf,
            best_fitness=fitness,
            history=tuple(history),
            convergence_iteration=convergence,
            runtime_seconds=runtime,
            evaluations=optimizer.evaluations,
            cache_hits=optimizer.cache_hits,
            workers=max(1, workers),
            stage_hits=optimizer.stage_hits,
            stage_lookups=optimizer.stage_lookups,
            eval_seconds=timings.eval_seconds,
            cache_seconds=timings.cache_seconds,
            overhead_seconds=timings.overhead_seconds,
        )

    @staticmethod
    def search_many(
        engines: Sequence["DseEngine"],
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        seeds: Sequence[int | random.Random | None] | None = None,
        heuristic_seed: bool = True,
        workers: int = 1,
        cache: EvalCache | None = None,
    ) -> tuple[DseResult, ...]:
        """Run a batch of searches with shared caching and deduplication.

        All searches draw from one evaluation cache, so a sweep over
        overlapping problems (same decoder on several devices, several
        seeds on one device, repeated cases in a grid) never re-solves an
        in-branch subproblem it has seen before. Cases whose problem spec,
        search size, and (fingerprintable) seed coincide are solved once
        and share the same :class:`DseResult` object.

        ``seeds`` gives each case its own seed (e.g. a convergence study);
        by default every case uses ``seed``, which is what makes duplicate
        grid cases dedupable. Results are returned in input order.

        ``cache`` may be any backend — the caller's warm
        :class:`~repro.dse.cache.LocalEvalCache`, a persistent
        :class:`~repro.dse.cache.FileEvalCache` — and is used as-is: the
        sweep's parent process is its only writer (workers ship deltas
        home), so nothing needs to be promoted to a shared store or
        drained back afterwards. File-backed caches are flushed when the
        sweep finishes.

        Parallel sweeps (``workers > 1``) evaluate every case on **one**
        long-lived :class:`~repro.dse.worker.SweepWorkerPool`: workers are
        forked once and reused across the whole sweep — no per-case pool
        startup. Evaluation is the same pure function, so the results are
        still bit-identical to serial runs.
        """
        engines = list(engines)
        if seeds is None:
            seeds = [seed] * len(engines)
        elif len(seeds) != len(engines):
            raise ValueError(
                f"got {len(seeds)} seeds for {len(engines)} engines"
            )
        if cache is None:
            cache = LocalEvalCache()
        pool: SweepWorkerPool | None = None
        try:
            if workers > 1:
                pool = SweepWorkerPool(workers)
            solved: dict[tuple, DseResult] = {}
            results: list[DseResult] = []
            for engine, case_seed in zip(engines, seeds):
                fingerprint = seed_fingerprint(case_seed)
                key = None
                if fingerprint is not None:
                    key = (
                        engine.spec.digest,
                        iterations,
                        population,
                        fingerprint,
                        heuristic_seed,
                    )
                    if key in solved:
                        results.append(solved[key])
                        continue
                result = engine.search(
                    iterations=iterations,
                    population=population,
                    seed=case_seed,
                    heuristic_seed=heuristic_seed,
                    workers=workers,
                    cache=cache,
                    pool=pool,
                )
                if key is not None:
                    solved[key] = result
                results.append(result)
            return tuple(results)
        finally:
            if pool is not None:
                pool.close()
            flush = getattr(cache, "flush", None)
            if callable(flush):
                flush()
