"""The DSE engine facade (paper Fig. 4, Optimization step).

Single searches run Algorithm 1 serially or over a process pool
(``workers``); :meth:`DseEngine.search_many` batches whole sweeps — a
decoder family, a device grid, a seed study — through one shared
evaluation cache with identical cases deduplicated outright.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import EvalCache, LocalEvalCache
from repro.dse.crossbranch import CrossBranchOptimizer
from repro.dse.objective import (
    MetricsOracle,
    Objective,
    OracleStats,
    resolve_objective,
    resolve_oracle,
)
from repro.dse.result import DseResult
from repro.dse.space import Customization
from repro.dse.surrogate import DEFAULT_MIN_SAMPLES, resolve_surrogate_mode
from repro.dse.worker import EvalSpec, SweepWorkerPool
from repro.perf.estimator import evaluate
from repro.quant.schemes import QuantScheme
from repro.utils.rng import seed_fingerprint


class DseEngine:
    """Two-step DSE: cross-branch stochastic + in-branch greedy search.

    ``objective`` / ``rerank_oracle`` / ``rerank_top_k`` configure the
    metrics → objective pipeline (see :mod:`repro.dse.objective`): what
    fitness the search maximizes, and whether an expensive oracle re-ranks
    the analytical top-K per generation. Both accept instances or CLI
    names; :meth:`search` can override them per run.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        budget: ResourceBudget,
        customization: Customization | None = None,
        quant: QuantScheme | None = None,
        frequency_mhz: float = 200.0,
        alpha: float = 0.05,
        objective: Objective | str | None = None,
        rerank_oracle: MetricsOracle | str | None = None,
        rerank_top_k: int = 4,
        surrogate: str = "off",
        surrogate_min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        if quant is None:
            raise ValueError("a quantization scheme is required")
        if customization is None:
            customization = Customization.uniform(plan.num_branches)
        self.plan = plan
        self.budget = budget
        self.customization = customization
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.alpha = alpha
        self.objective = objective
        self.rerank_oracle = rerank_oracle
        self.rerank_top_k = rerank_top_k
        self.surrogate = resolve_surrogate_mode(surrogate)
        self.surrogate_min_samples = surrogate_min_samples

    @property
    def spec(self) -> EvalSpec:
        """The frozen evaluation problem this engine searches.

        Objective-free by design: the digest namespaces cache entries,
        and cached Algorithm-2 solutions are valid under every objective.
        """
        return EvalSpec(
            plan=self.plan,
            budget=self.budget,
            customization=self.customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
        )

    def resolved_objective(
        self, objective: Objective | str | None = None
    ) -> Objective:
        """The objective a search would use (run override > engine > paper)."""
        return resolve_objective(
            objective if objective is not None else self.objective,
            alpha=self.alpha,
        )

    def search(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        heuristic_seed: bool = True,
        workers: int = 1,
        cache: EvalCache | None = None,
        pool: SweepWorkerPool | None = None,
        objective: Objective | str | None = None,
        rerank_oracle: MetricsOracle | str | None = None,
        rerank_top_k: int | None = None,
        surrogate: str | None = None,
        surrogate_min_samples: int | None = None,
    ) -> DseResult:
        """Run Algorithm 1 (which invokes Algorithm 2 per candidate).

        The paper's default search size is N = 20 iterations over a
        population of P = 200 resource distributions. ``workers > 1``
        evaluates each generation on a process pool — same best design,
        bit for bit, as the serial search at the same seed. ``cache``
        lets several searches share one evaluation cache and ``pool``
        lets them share one long-lived set of worker processes (see
        :meth:`search_many`, which wires up both).

        ``objective`` / ``rerank_oracle`` / ``rerank_top_k`` override the
        engine-level objective configuration for this run. With the
        default paper objective and no re-rank oracle the result is
        bit-identical to the historical search at the same seed.

        ``surrogate`` selects the pre-solve filter mode (``"off"`` /
        ``"prune"`` / ``"verify"``, see :mod:`repro.dse.surrogate`);
        ``surrogate_min_samples`` is the training-set size below which
        the filter never prunes. ``"off"`` (the default) bypasses the
        filter entirely — bit-identical to the historical search.
        """
        resolved = self.resolved_objective(objective)
        oracle = resolve_oracle(
            rerank_oracle if rerank_oracle is not None else self.rerank_oracle
        )
        top_k = rerank_top_k if rerank_top_k is not None else self.rerank_top_k
        surrogate_mode = resolve_surrogate_mode(
            surrogate if surrogate is not None else self.surrogate
        )
        min_samples = (
            surrogate_min_samples
            if surrogate_min_samples is not None
            else self.surrogate_min_samples
        )
        optimizer = CrossBranchOptimizer(
            plan=self.plan,
            budget=self.budget,
            customization=self.customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
            alpha=self.alpha,
            cache=cache,
            objective=resolved,
            rerank_oracle=oracle,
            rerank_top_k=top_k,
            surrogate=surrogate_mode,
            surrogate_min_samples=min_samples,
        )
        started = time.perf_counter()
        fitness, config, history, convergence = optimizer.search(
            iterations=iterations,
            population=population,
            seed=seed,
            heuristic_seed=heuristic_seed,
            workers=workers,
            pool=pool,
        )
        runtime = time.perf_counter() - started
        perf = evaluate(self.plan, config, self.quant, self.frequency_mhz)
        timings = optimizer.eval_timings
        oracle_stats = [
            OracleStats(
                name="analytical",
                invocations=optimizer.evaluations,
                cache_hits=optimizer.cache_hits,
            )
        ]
        if oracle is not None:
            oracle_stats.append(
                OracleStats(
                    name=oracle.name,
                    invocations=optimizer.oracle_invocations,
                    cache_hits=optimizer.oracle_cache_hits,
                )
            )
        return DseResult(
            best_config=config,
            best_perf=perf,
            best_fitness=fitness,
            history=tuple(history),
            convergence_iteration=convergence,
            runtime_seconds=runtime,
            evaluations=optimizer.evaluations,
            cache_hits=optimizer.cache_hits,
            workers=max(1, workers),
            stage_hits=optimizer.stage_hits,
            stage_lookups=optimizer.stage_lookups,
            eval_seconds=timings.eval_seconds,
            cache_seconds=timings.cache_seconds,
            overhead_seconds=timings.overhead_seconds,
            ladder_seconds=timings.ladder_seconds,
            growth_seconds=timings.growth_seconds,
            measure_seconds=timings.measure_seconds,
            objective=resolved.key,
            oracle_stats=tuple(oracle_stats),
            best_metrics=optimizer.best_metrics,
            surrogate_stats=optimizer.surrogate_stats,
        )

    @staticmethod
    def search_many(
        engines: Sequence["DseEngine"],
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        seeds: Sequence[int | random.Random | None] | None = None,
        heuristic_seed: bool = True,
        workers: int = 1,
        cache: EvalCache | None = None,
        objective: Objective | str | None = None,
        rerank_oracle: MetricsOracle | str | None = None,
        rerank_top_k: int | None = None,
        surrogate: str | None = None,
        surrogate_min_samples: int | None = None,
        fleet: "object | None" = None,
    ) -> tuple[DseResult, ...]:
        """Run a batch of searches with shared caching and deduplication.

        All searches draw from one evaluation cache, so a sweep over
        overlapping problems (same decoder on several devices, several
        seeds on one device, repeated cases in a grid) never re-solves an
        in-branch subproblem it has seen before. Cases whose problem spec,
        *objective configuration*, search size, and (fingerprintable) seed
        coincide are solved once and share the same :class:`DseResult`
        object — the objective is part of the dedup key because the spec
        digest deliberately excludes it.

        ``objective`` / ``rerank_oracle`` / ``rerank_top_k`` apply to every
        case (each engine's own configuration is used where they are left
        ``None``).

        ``seeds`` gives each case its own seed (e.g. a convergence study);
        by default every case uses ``seed``, which is what makes duplicate
        grid cases dedupable. Results are returned in input order.

        ``cache`` may be any backend — the caller's warm
        :class:`~repro.dse.cache.LocalEvalCache`, a persistent
        :class:`~repro.dse.cache.FileEvalCache` — and is used as-is: the
        sweep's parent process is its only writer (workers ship deltas
        home), so nothing needs to be promoted to a shared store or
        drained back afterwards. File-backed caches are flushed when the
        sweep finishes.

        Parallel sweeps (``workers > 1``) evaluate every case on **one**
        long-lived :class:`~repro.dse.worker.SweepWorkerPool`: workers are
        forked once and reused across the whole sweep — no per-case pool
        startup. Evaluation is the same pure function, so the results are
        still bit-identical to serial runs.

        ``fleet`` (a :class:`~repro.dist.coordinator.FleetSpec`) runs the
        sweep across worker *processes* — spawned locally or joined over
        the network — via :func:`~repro.dist.coordinator.run_fleet_sweep`:
        same dedup, same per-case results bit for bit, with ``cache``
        warmed from the fleet's pooled entries. ``workers`` is ignored in
        fleet mode (each shard runs serially on its worker).
        """
        if fleet is not None:
            if surrogate is not None and resolve_surrogate_mode(surrogate) != "off":
                # Fleet shards run each case through their own engine
                # config; a sweep-level surrogate override has no seat on
                # the wire protocol (and pruning across shard-local
                # caches would not reproduce the single-process model).
                raise ValueError(
                    "surrogate override is not supported in fleet mode; "
                    "configure surrogate on the engines or run locally"
                )
            from repro.dist.coordinator import run_fleet_sweep

            return run_fleet_sweep(
                engines,
                fleet,
                iterations=iterations,
                population=population,
                seed=seed,
                seeds=seeds,
                heuristic_seed=heuristic_seed,
                cache=cache,
                objective=objective,
                rerank_oracle=rerank_oracle,
                rerank_top_k=rerank_top_k,
            )
        engines = list(engines)
        if seeds is None:
            seeds = [seed] * len(engines)
        elif len(seeds) != len(engines):
            raise ValueError(
                f"got {len(seeds)} seeds for {len(engines)} engines"
            )
        if cache is None:
            cache = LocalEvalCache()
        pool: SweepWorkerPool | None = None
        try:
            if workers > 1:
                pool = SweepWorkerPool(workers)
            solved: dict[tuple, DseResult] = {}
            results: list[DseResult] = []
            for engine, case_seed in zip(engines, seeds):
                fingerprint = seed_fingerprint(case_seed)
                case_objective = engine.resolved_objective(objective)
                case_oracle = resolve_oracle(
                    rerank_oracle
                    if rerank_oracle is not None
                    else engine.rerank_oracle
                )
                case_top_k = (
                    rerank_top_k
                    if rerank_top_k is not None
                    else engine.rerank_top_k
                )
                case_surrogate = resolve_surrogate_mode(
                    surrogate if surrogate is not None else engine.surrogate
                )
                case_min_samples = (
                    surrogate_min_samples
                    if surrogate_min_samples is not None
                    else engine.surrogate_min_samples
                )
                key = None
                if fingerprint is not None:
                    key = (
                        engine.spec.digest,
                        iterations,
                        population,
                        fingerprint,
                        heuristic_seed,
                        case_objective.key,
                        case_oracle.key if case_oracle is not None else None,
                        case_top_k if case_oracle is not None else None,
                        case_surrogate,
                        # min_samples only matters when the filter is on.
                        case_min_samples if case_surrogate != "off" else None,
                    )
                    if key in solved:
                        results.append(solved[key])
                        continue
                result = engine.search(
                    iterations=iterations,
                    population=population,
                    seed=case_seed,
                    heuristic_seed=heuristic_seed,
                    workers=workers,
                    cache=cache,
                    pool=pool,
                    objective=case_objective,
                    # A resolved "no oracle" must be passed explicitly:
                    # a bare None would read as "no override" and fall
                    # back to the engine's own oracle, desynchronizing
                    # the search from the dedup key above.
                    rerank_oracle=case_oracle if case_oracle is not None else "none",
                    rerank_top_k=case_top_k,
                    surrogate=case_surrogate,
                    surrogate_min_samples=case_min_samples,
                )
                if key is not None:
                    solved[key] = result
                results.append(result)
            return tuple(results)
        finally:
            if pool is not None:
                pool.close()
            flush = getattr(cache, "flush", None)
            if callable(flush):
                flush()
