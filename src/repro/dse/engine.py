"""The DSE engine facade (paper Fig. 4, Optimization step)."""

from __future__ import annotations

import random
import time

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.crossbranch import CrossBranchOptimizer
from repro.dse.result import DseResult
from repro.dse.space import Customization
from repro.perf.estimator import evaluate
from repro.quant.schemes import QuantScheme


class DseEngine:
    """Two-step DSE: cross-branch stochastic + in-branch greedy search."""

    def __init__(
        self,
        plan: PipelinePlan,
        budget: ResourceBudget,
        customization: Customization | None = None,
        quant: QuantScheme | None = None,
        frequency_mhz: float = 200.0,
        alpha: float = 0.05,
    ) -> None:
        if quant is None:
            raise ValueError("a quantization scheme is required")
        if customization is None:
            customization = Customization.uniform(plan.num_branches)
        self.plan = plan
        self.budget = budget
        self.customization = customization
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.alpha = alpha

    def search(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        heuristic_seed: bool = True,
    ) -> DseResult:
        """Run Algorithm 1 (which invokes Algorithm 2 per candidate).

        The paper's default search size is N = 20 iterations over a
        population of P = 200 resource distributions.
        """
        optimizer = CrossBranchOptimizer(
            plan=self.plan,
            budget=self.budget,
            customization=self.customization,
            quant=self.quant,
            frequency_mhz=self.frequency_mhz,
            alpha=self.alpha,
        )
        started = time.perf_counter()
        fitness, config, history, convergence = optimizer.search(
            iterations=iterations,
            population=population,
            seed=seed,
            heuristic_seed=heuristic_seed,
        )
        runtime = time.perf_counter() - started
        perf = evaluate(self.plan, config, self.quant, self.frequency_mhz)
        return DseResult(
            best_config=config,
            best_perf=perf,
            best_fitness=fitness,
            history=tuple(history),
            convergence_iteration=convergence,
            runtime_seconds=runtime,
            evaluations=optimizer.evaluations,
            cache_hits=optimizer.cache_hits,
        )
