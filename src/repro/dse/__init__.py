"""Multi-branch design space exploration (paper Sec. VI)."""

from repro.dse.cache import (
    CACHE_BACKENDS,
    DeltaEvalCache,
    EvalCache,
    FileEvalCache,
    LocalEvalCache,
    SharedEvalCache,
    make_cache,
)
from repro.dse.crossbranch import CrossBranchOptimizer, Particle
from repro.dse.engine import DseEngine
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchEvalTable, BranchSolution, optimize_branch
from repro.dse.objective import (
    OBJECTIVES,
    RERANK_ORACLES,
    AnalyticalOracle,
    BranchMetrics,
    CompositeObjective,
    MetricsOracle,
    Objective,
    OracleStats,
    PaperObjective,
    ServingOracle,
    SimOracle,
    SloObjective,
    make_objective,
    make_oracle,
    metrics_from_solutions,
)
from repro.dse.result import DseResult
from repro.dse.space import Customization, DesignSpace, get_pf
from repro.dse.worker import (
    CandidateEval,
    EvalSpec,
    GenerationEvaluator,
    SweepWorkerPool,
    evaluate_candidate,
)

__all__ = [
    "AnalyticalOracle",
    "BranchEvalTable",
    "BranchMetrics",
    "BranchSolution",
    "CACHE_BACKENDS",
    "CandidateEval",
    "CompositeObjective",
    "CrossBranchOptimizer",
    "Customization",
    "DeltaEvalCache",
    "DesignSpace",
    "DseEngine",
    "DseResult",
    "EvalCache",
    "EvalSpec",
    "FileEvalCache",
    "GenerationEvaluator",
    "LocalEvalCache",
    "MetricsOracle",
    "OBJECTIVES",
    "Objective",
    "OracleStats",
    "PaperObjective",
    "Particle",
    "RERANK_ORACLES",
    "ServingOracle",
    "SharedEvalCache",
    "SimOracle",
    "SloObjective",
    "SweepWorkerPool",
    "evaluate_candidate",
    "fitness_score",
    "get_pf",
    "make_cache",
    "make_objective",
    "make_oracle",
    "metrics_from_solutions",
    "optimize_branch",
]
