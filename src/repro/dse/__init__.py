"""Multi-branch design space exploration (paper Sec. VI)."""

from repro.dse.cache import (
    CACHE_BACKENDS,
    DeltaEvalCache,
    EvalCache,
    FileEvalCache,
    LocalEvalCache,
    SharedEvalCache,
    make_cache,
)
from repro.dse.crossbranch import CrossBranchOptimizer, Particle
from repro.dse.engine import DseEngine
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchEvalTable, BranchSolution, optimize_branch
from repro.dse.result import DseResult
from repro.dse.space import Customization, DesignSpace, get_pf
from repro.dse.worker import (
    CandidateEval,
    EvalSpec,
    GenerationEvaluator,
    SweepWorkerPool,
    evaluate_candidate,
)

__all__ = [
    "BranchEvalTable",
    "BranchSolution",
    "CACHE_BACKENDS",
    "CandidateEval",
    "CrossBranchOptimizer",
    "Customization",
    "DeltaEvalCache",
    "DesignSpace",
    "DseEngine",
    "DseResult",
    "EvalCache",
    "EvalSpec",
    "FileEvalCache",
    "GenerationEvaluator",
    "LocalEvalCache",
    "Particle",
    "SharedEvalCache",
    "SweepWorkerPool",
    "evaluate_candidate",
    "fitness_score",
    "get_pf",
    "make_cache",
    "optimize_branch",
]
