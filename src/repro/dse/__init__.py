"""Multi-branch design space exploration (paper Sec. VI)."""

from repro.dse.cache import EvalCache, LocalEvalCache, SharedEvalCache
from repro.dse.crossbranch import CrossBranchOptimizer, Particle
from repro.dse.engine import DseEngine
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchSolution, optimize_branch
from repro.dse.result import DseResult
from repro.dse.space import Customization, DesignSpace, get_pf
from repro.dse.worker import (
    CandidateEval,
    EvalSpec,
    SweepWorkerPool,
    evaluate_candidate,
)

__all__ = [
    "BranchSolution",
    "CandidateEval",
    "CrossBranchOptimizer",
    "Customization",
    "DesignSpace",
    "DseEngine",
    "DseResult",
    "EvalCache",
    "EvalSpec",
    "LocalEvalCache",
    "Particle",
    "SharedEvalCache",
    "SweepWorkerPool",
    "evaluate_candidate",
    "fitness_score",
    "get_pf",
    "optimize_branch",
]
