"""In-branch greedy optimization — the paper's Algorithm 2.

Given one branch pipeline and a resource distribution ``rd = {C, M, BW}``:

1. compute per-stage compute demands ``op_k`` and data-reuse statistics
   (``GetReuse``), and derive *optimistic* parallelism targets proportional
   to ``op_k`` — this load-balances the pipeline, which maximizes Eq. 5's
   throughput since the slowest stage sets the beat;
2. realize the targets as ``(cpf, kpf, h)`` triples via ``GetPF``;
3. compute the replica count the distribution supports
   (``batchsize = min(C/Σc, M/Σm, BW/Σbw)``); while it falls short of the
   requested batch size, halve all targets (a smaller pipeline fits more
   replicas) and retry — the greedy search converges when the parallelism
   stops growing.

The DSE calls this function hundreds of thousands of times per search, so
everything that does not depend on the resource distribution is hoisted
into a :class:`BranchEvalTable` built once per branch: the per-stage
reuse/DRAM-byte statistics and the ``norm_bw`` normalization are plain
precomputed constants, and ``GetPF`` realizations plus per-stage
latency/resource evaluations are memoized — profiled runs show those inner
calls are 84–99.7 % redundant across candidates, because the halving
ladder and the growth phase revisit the same ``(stage, config)`` points
for almost every distribution.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.config import BranchConfig, StageConfig
from repro.construction.reorg import BranchPipeline
from repro.devices.budget import ResourceBudget
from repro.dse.space import get_pf
from repro.perf.analytical import stage_latency_cycles
from repro.perf.estimator import BranchPerf, evaluate_branch
from repro.perf.resources import stage_resources, stage_stream_bytes
from repro.quant.schemes import QuantScheme

if TYPE_CHECKING:
    from repro.dse.kernel import BranchLadder

#: Planning margin on external bandwidth: designs are sized against 90 % of
#: the nominal budget because sustained DDR throughput never reaches peak
#: (the cycle-accurate simulator models ~93 % efficiency).
BW_PLANNING_MARGIN = 0.90

# Stage-memo accounting is *per table* (each BranchEvalTable counts its own
# lookups and hits), aggregated at snapshot time: the process-wide totals
# are the sum over live tables plus the counts retired by tables that have
# been garbage-collected. That keeps :func:`stage_memo_stats` monotone
# non-decreasing — the property the workers' delta-shipping relies on —
# without any mutable module globals on the solve hot path.
_LIVE_TABLES: "weakref.WeakSet[BranchEvalTable]" = weakref.WeakSet()
_RETIRED_COUNTS = [0, 0]  # [hits, lookups] from collected tables


def _retire_counters(counters: list[int]) -> None:
    _RETIRED_COUNTS[0] += counters[0]
    _RETIRED_COUNTS[1] += counters[1]


def stage_memo_stats() -> tuple[int, int]:
    """(hits, lookups) served by stage-level memo tables so far.

    Snapshot before/after a batch of work to attribute the delta (workers
    do exactly that and ship the delta home per chunk). The totals only
    ever grow: live tables are summed directly, and a table's final counts
    are folded into the retired accumulator when it is collected.
    """
    hits, lookups = _RETIRED_COUNTS
    for table in list(_LIVE_TABLES):
        hits += table._counters[0]
        lookups += table._counters[1]
    return hits, lookups


@dataclass(frozen=True)
class BranchSolution:
    """Best configuration Algorithm 2 found for one resource distribution.

    This is the objective-independent unit the evaluation cache stores:
    a pure function of the problem spec and the budget bucket, with no
    fitness baked in. The parent derives a candidate's
    :class:`~repro.dse.objective.BranchMetrics` from its per-branch
    solutions (``fps``, ``meets_batch_target``) and scores those with
    whatever objective is configured — which is why cached solutions stay
    valid across objective switches.
    """

    config: BranchConfig
    perf: BranchPerf
    meets_batch_target: bool

    @property
    def fps(self) -> float:
        return self.perf.fps


def _stage_dram_bytes(stage, quant: QuantScheme, is_terminal: bool) -> float:
    """Per-frame external-memory bytes a stage moves at full speed."""
    bytes_per_frame = stage_stream_bytes(stage, quant)
    bytes_per_frame += quant.activation_bytes(stage.external_input_elements)
    if is_terminal:
        bytes_per_frame += quant.activation_bytes(stage.output_elements)
    return bytes_per_frame


def _stage_reuse(stage, quant: QuantScheme, is_terminal: bool) -> float:
    """GetReuse: external bytes moved per op — the data-reuse statistic.

    A stage with high reuse (many ops per byte) leaves bandwidth for the
    rest of the pipeline; a low-reuse stage (streamed weights, untied
    biases) is the one that exhausts ``BW`` first.
    """
    return _stage_dram_bytes(stage, quant, is_terminal) / max(1, stage.ops)


class BranchEvalTable:
    """Everything Algorithm 2 needs about one branch, computed once.

    Holds the distribution-independent constants (per-stage ops, the
    reuse-weighted bandwidth normalization, total DRAM bytes, parallelism
    caps) plus two memo tables over the distribution-dependent inner
    steps:

    - ``realize(idx, target)`` — ``GetPF`` for stage ``idx``;
    - ``stage_eval(idx, cfg)`` — ``(latency cycles, DSP, BRAM)`` of stage
      ``idx`` under ``cfg``.

    Memoized values are exact (the memo key is the full input), so routing
    Algorithm 2 through a table is bit-identical to recomputing — it only
    removes the redundant arithmetic, which dominates the search's wall
    time.
    """

    def __init__(
        self,
        pipeline: BranchPipeline,
        quant: QuantScheme,
        frequency_mhz: float = 200.0,
        max_h: int | None = None,
        max_pf: int | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.max_h = max_h
        self.max_pf = max_pf
        stages = [planned.stage for planned in pipeline.stages]
        self.stages = stages
        self.ops = [max(1, stage.ops) for stage in stages]
        self.op_min = min(self.ops)
        last = len(stages) - 1
        # Lines 8-12 of the paper: with every stage at
        # pf_k = S x (op_k / op_min) the pipeline is load-balanced and
        # consumes norm_bw x S bytes/s.
        self.norm_bw = sum(
            (op / self.op_min) * _stage_reuse(stage, quant, idx == last)
            for idx, (op, stage) in enumerate(zip(self.ops, stages))
        ) * (frequency_mhz * 1e6)
        self.dram_bytes = sum(
            _stage_dram_bytes(stage, quant, idx == last)
            for idx, stage in enumerate(stages)
        )
        self.max_parallelism = [stage.max_parallelism for stage in stages]
        self._realize: list[dict[int, StageConfig]] = [{} for _ in stages]
        self._stage_eval: list[dict[StageConfig, tuple[int, int, int]]] = [
            {} for _ in stages
        ]
        # Per-table memo accounting ([hits, lookups]); aggregated across
        # tables by stage_memo_stats(). The finalizer keeps the list (not
        # the table) alive, so a collected table's counts retire exactly
        # once.
        self._counters = [0, 0]
        self._ladder: "BranchLadder | None" = None
        _LIVE_TABLES.add(self)
        weakref.finalize(self, _retire_counters, self._counters)

    @property
    def stage_hits(self) -> int:
        """Memoized inner-step lookups this table served without recompute."""
        return self._counters[0]

    @property
    def stage_lookups(self) -> int:
        """Memoized inner-step lookups this table has seen."""
        return self._counters[1]

    def ladder(self) -> "BranchLadder":
        """The branch's precomputed halving/growth ladder (built lazily).

        The batched kernel (:mod:`repro.dse.kernel`) solves whole
        generations of budget buckets against this struct-of-arrays view
        of the GetPF chains; the scalar path never needs it.
        """
        if self._ladder is None:
            from repro.dse.kernel import BranchLadder

            self._ladder = BranchLadder(self)
        return self._ladder

    def credit_memo(self, hits: int, lookups: int) -> None:
        """Fold externally served memo traffic into this table's counters.

        The batched kernel serves realizations and stage evaluations from
        its precomputed ladder instead of these memo dicts; it reports
        that traffic here (as hits — the ladder is a warm memo by
        construction) so ``stage_memo_stats()`` keeps describing the
        evaluation path's memo activity regardless of which solver ran.
        """
        self._counters[0] += hits
        self._counters[1] += lookups

    def realize(self, idx: int, target: int) -> StageConfig:
        """GetPF for stage ``idx``, memoized per parallelism target."""
        counters = self._counters
        counters[1] += 1
        memo = self._realize[idx]
        cfg = memo.get(target)
        if cfg is None:
            cfg = get_pf(
                self.stages[idx], target, max_h=self.max_h, max_pf=self.max_pf
            )
            memo[target] = cfg
        else:
            counters[0] += 1
        return cfg

    def stage_eval(self, idx: int, cfg: StageConfig) -> tuple[int, int, int]:
        """(latency cycles, DSP, BRAM) of stage ``idx`` under ``cfg``."""
        counters = self._counters
        counters[1] += 1
        memo = self._stage_eval[idx]
        entry = memo.get(cfg)
        if entry is None:
            resources = stage_resources(self.stages[idx], cfg, self.quant)
            entry = (
                stage_latency_cycles(self.stages[idx], cfg),
                resources.dsp,
                resources.bram,
            )
            memo[cfg] = entry
        else:
            counters[0] += 1
        return entry


def optimize_branch(
    pipeline: BranchPipeline,
    rd: ResourceBudget,
    batch_target: int,
    quant: QuantScheme,
    frequency_mhz: float = 200.0,
    max_h: int | None = None,
    max_pf: int | None = None,
    table: BranchEvalTable | None = None,
) -> BranchSolution:
    """Algorithm 2: the best branch configuration under ``rd``.

    ``max_h`` / ``max_pf`` apply the customization's maximum-parallelism
    constraints per stage (``max_h = 1`` degrades the architecture to
    two-level parallelism). Pass a prebuilt ``table`` (matching the other
    arguments) to amortize the branch constants across many calls — the
    DSE keeps one table per ``(spec, branch)`` per process.
    """
    if table is None:
        table = BranchEvalTable(
            pipeline, quant, frequency_mhz, max_h=max_h, max_pf=max_pf
        )

    # Lines 8-12: optimistic parallelism targets from the allocated
    # bandwidth, proportional to each stage's compute demand; exhausting
    # the allocation gives the largest (most optimistic) scale.
    bw_bytes_per_s = rd.bandwidth_gbps * BW_PLANNING_MARGIN * 1e9
    if table.norm_bw > 0 and bw_bytes_per_s > 0:
        scale = bw_bytes_per_s / table.norm_bw
    else:
        scale = 0.0
    pf_targets = [
        max(1, math.ceil(scale * (op / table.op_min))) for op in table.ops
    ]
    # Never ask for more than the architecture can provide.
    pf_targets = [
        min(target, cap)
        for target, cap in zip(pf_targets, table.max_parallelism)
    ]

    def replicas_supported(
        c_sum: int, m_sum: int, latencies: list[int]
    ) -> int:
        """Lines 16-18: batchsize = min(C/Σc, M/Σm, BW/Σbw).

        A zero ``c_sum`` / ``m_sum`` / ``bw_replica`` means the pipeline
        consumes none of that resource (e.g. a quantization that maps all
        MACs to LUTs uses zero DSPs), so that resource can never be the
        limiter: its term falls back to ``batch_target``, the largest
        replica count the search ever asks for, leaving the decision to
        the resources the pipeline does consume.
        """
        fps_single = frequency_mhz * 1e6 / max(latencies)
        bw_replica = table.dram_bytes * fps_single / 1e9
        return min(
            rd.compute // c_sum if c_sum else batch_target,
            rd.memory // m_sum if m_sum else batch_target,
            int(rd.bandwidth_gbps * BW_PLANNING_MARGIN / bw_replica)
            if bw_replica > 0
            else batch_target,
        )

    def measure(configs: list[StageConfig]) -> tuple[int, int, list[int]]:
        c_sum = 0
        m_sum = 0
        latencies = []
        for idx, cfg in enumerate(configs):
            latency, dsp, bram = table.stage_eval(idx, cfg)
            c_sum += dsp
            m_sum += bram
            latencies.append(latency)
        return c_sum, m_sum, latencies

    # Lines 13-24: greedy shrink until the requested replicas fit.
    while True:
        configs = [
            table.realize(idx, target)
            for idx, target in enumerate(pf_targets)
        ]
        c_sum, m_sum, latencies = measure(configs)
        batch = replicas_supported(c_sum, m_sum, latencies)
        if batch >= batch_target:
            batch = batch_target
            break
        if all(target <= 1 for target in pf_targets):
            batch = max(0, batch)
            break
        pf_targets = [max(1, target // 2) for target in pf_targets]

    # Growth phase: the halving above lands on a power-of-two ladder, which
    # can leave up to half the distribution unused. Keep doubling the
    # *bottleneck* stage (the only move that improves Eq. 5) while the
    # requested replicas still fit; converge "once the parallelism fails to
    # grow". Only the bottleneck's contribution changes per step, so the
    # resource sums and the latency list are updated incrementally.
    if batch >= 1:
        while True:
            # Single-pass argmax (first maximum, like list.index(max(...))
            # but without scanning the list twice).
            bottleneck = max(range(len(latencies)), key=latencies.__getitem__)
            current = configs[bottleneck]
            grown = table.realize(bottleneck, current.pf * 2)
            if grown == current:
                break  # saturated: no parallelism left in this stage
            old_latency, old_dsp, old_bram = table.stage_eval(
                bottleneck, current
            )
            new_latency, new_dsp, new_bram = table.stage_eval(
                bottleneck, grown
            )
            trial_c = c_sum - old_dsp + new_dsp
            trial_m = m_sum - old_bram + new_bram
            trial_latencies = list(latencies)
            trial_latencies[bottleneck] = new_latency
            if replicas_supported(trial_c, trial_m, trial_latencies) < batch:
                break  # the distribution cannot pay for more parallelism
            configs[bottleneck] = grown
            c_sum, m_sum, latencies = trial_c, trial_m, trial_latencies

    config = BranchConfig(batch_size=batch, stages=tuple(configs))
    perf = evaluate_branch(pipeline, config, quant, frequency_mhz)
    return BranchSolution(
        config=config, perf=perf, meets_batch_target=batch >= batch_target
    )
