"""In-branch greedy optimization — the paper's Algorithm 2.

Given one branch pipeline and a resource distribution ``rd = {C, M, BW}``:

1. compute per-stage compute demands ``op_k`` and data-reuse statistics
   (``GetReuse``), and derive *optimistic* parallelism targets proportional
   to ``op_k`` — this load-balances the pipeline, which maximizes Eq. 5's
   throughput since the slowest stage sets the beat;
2. realize the targets as ``(cpf, kpf, h)`` triples via ``GetPF``;
3. compute the replica count the distribution supports
   (``batchsize = min(C/Σc, M/Σm, BW/Σbw)``); while it falls short of the
   requested batch size, halve all targets (a smaller pipeline fits more
   replicas) and retry — the greedy search converges when the parallelism
   stops growing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import BranchConfig, StageConfig
from repro.construction.reorg import BranchPipeline
from repro.devices.budget import ResourceBudget
from repro.dse.space import get_pf
from repro.perf.analytical import stage_latency_cycles
from repro.perf.estimator import BranchPerf, evaluate_branch
from repro.perf.resources import stage_resources, stage_stream_bytes
from repro.quant.schemes import QuantScheme

#: Planning margin on external bandwidth: designs are sized against 90 % of
#: the nominal budget because sustained DDR throughput never reaches peak
#: (the cycle-accurate simulator models ~93 % efficiency).
BW_PLANNING_MARGIN = 0.90


@dataclass(frozen=True)
class BranchSolution:
    """Best configuration Algorithm 2 found for one resource distribution."""

    config: BranchConfig
    perf: BranchPerf
    meets_batch_target: bool

    @property
    def fps(self) -> float:
        return self.perf.fps


def _stage_dram_bytes(stage, quant: QuantScheme, is_terminal: bool) -> float:
    """Per-frame external-memory bytes a stage moves at full speed."""
    bytes_per_frame = stage_stream_bytes(stage, quant)
    bytes_per_frame += quant.activation_bytes(stage.external_input_elements)
    if is_terminal:
        bytes_per_frame += quant.activation_bytes(stage.output_elements)
    return bytes_per_frame


def _stage_reuse(stage, quant: QuantScheme, is_terminal: bool) -> float:
    """GetReuse: external bytes moved per op — the data-reuse statistic.

    A stage with high reuse (many ops per byte) leaves bandwidth for the
    rest of the pipeline; a low-reuse stage (streamed weights, untied
    biases) is the one that exhausts ``BW`` first.
    """
    return _stage_dram_bytes(stage, quant, is_terminal) / max(1, stage.ops)


def optimize_branch(
    pipeline: BranchPipeline,
    rd: ResourceBudget,
    batch_target: int,
    quant: QuantScheme,
    frequency_mhz: float = 200.0,
    max_h: int | None = None,
    max_pf: int | None = None,
) -> BranchSolution:
    """Algorithm 2: the best branch configuration under ``rd``.

    ``max_h`` / ``max_pf`` apply the customization's maximum-parallelism
    constraints per stage (``max_h = 1`` degrades the architecture to
    two-level parallelism).
    """

    def realize(stage, target: int) -> StageConfig:
        return get_pf(stage, target, max_h=max_h, max_pf=max_pf)

    stages = [planned.stage for planned in pipeline.stages]
    ops = [max(1, stage.ops) for stage in stages]
    op_min = min(ops)

    # Lines 8-12: optimistic parallelism targets from the allocated
    # bandwidth, proportional to each stage's compute demand. With every
    # stage at pf_k = S x (op_k / op_min) the pipeline is load-balanced and
    # consumes norm_bw x S bytes/s; exhausting the allocation gives the
    # largest (most optimistic) S.
    norm_bw = sum(
        (op / op_min) * _stage_reuse(stage, quant, idx == len(stages) - 1)
        for idx, (op, stage) in enumerate(zip(ops, stages))
    ) * (frequency_mhz * 1e6)
    bw_bytes_per_s = rd.bandwidth_gbps * BW_PLANNING_MARGIN * 1e9
    if norm_bw > 0 and bw_bytes_per_s > 0:
        scale = bw_bytes_per_s / norm_bw
    else:
        scale = 0.0
    pf_targets = [max(1, math.ceil(scale * (op / op_min))) for op in ops]
    # Never ask for more than the architecture can provide.
    pf_targets = [
        min(target, stage.max_parallelism)
        for target, stage in zip(pf_targets, stages)
    ]

    dram_bytes = sum(
        _stage_dram_bytes(stage, quant, idx == len(stages) - 1)
        for idx, stage in enumerate(stages)
    )

    def replicas_supported(configs: list[StageConfig]) -> int:
        """Lines 16-18: batchsize = min(C/Σc, M/Σm, BW/Σbw)."""
        resources = [
            stage_resources(stage, cfg, quant)
            for stage, cfg in zip(stages, configs)
        ]
        c_sum = sum(r.dsp for r in resources)
        m_sum = sum(r.bram for r in resources)
        latencies = [
            stage_latency_cycles(stage, cfg)
            for stage, cfg in zip(stages, configs)
        ]
        fps_single = frequency_mhz * 1e6 / max(latencies)
        bw_replica = dram_bytes * fps_single / 1e9
        return min(
            rd.compute // c_sum if c_sum else batch_target,
            rd.memory // m_sum if m_sum else batch_target,
            int(rd.bandwidth_gbps * BW_PLANNING_MARGIN / bw_replica)
            if bw_replica > 0
            else batch_target,
        )

    # Lines 13-24: greedy shrink until the requested replicas fit.
    batch = 0
    configs: list[StageConfig] = [StageConfig() for _ in stages]
    while True:
        configs = [
            realize(stage, target) for stage, target in zip(stages, pf_targets)
        ]
        batch = replicas_supported(configs)
        if batch >= batch_target:
            batch = batch_target
            break
        if all(target <= 1 for target in pf_targets):
            batch = max(0, batch)
            break
        pf_targets = [max(1, target // 2) for target in pf_targets]

    # Growth phase: the halving above lands on a power-of-two ladder, which
    # can leave up to half the distribution unused. Keep doubling the
    # *bottleneck* stage (the only move that improves Eq. 5) while the
    # requested replicas still fit; converge "once the parallelism fails to
    # grow".
    if batch >= 1:
        while True:
            latencies = [
                stage_latency_cycles(stage, cfg)
                for stage, cfg in zip(stages, configs)
            ]
            bottleneck = latencies.index(max(latencies))
            stage = stages[bottleneck]
            grown = realize(stage, configs[bottleneck].pf * 2)
            if grown == configs[bottleneck]:
                break  # saturated: no parallelism left in this stage
            trial = list(configs)
            trial[bottleneck] = grown
            if replicas_supported(trial) < batch:
                break  # the distribution cannot pay for more parallelism
            configs = trial

    config = BranchConfig(batch_size=batch, stages=tuple(configs))
    perf = evaluate_branch(pipeline, config, quant, frequency_mhz)
    return BranchSolution(
        config=config, perf=perf, meets_batch_target=batch >= batch_target
    )
