"""Learned surrogate over the evaluation cache: prune solves pre-dispatch.

Every Algorithm-2 solve the search runs leaves an objective-independent
``(branch, budget bucket) -> BranchSolution`` entry in the evaluation
cache — exactly the training data a cheap regressor needs to predict
which PSO positions are not worth solving at all. This module turns that
by-product into a pre-solve filter:

1. **Harvest** — :func:`repro.dse.cache.harvest_entries` reads a cache's
   accumulated analytical entries back as sorted feature rows (branch
   index + the three quantized budget coordinates) with latency/resource
   targets (per-branch FPS, batch feasibility). A warm
   :class:`~repro.dse.cache.FileEvalCache` therefore warm-starts the
   *model* as well as the cache.
2. **Predict** — a per-branch k-nearest-neighbour regressor over
   standardized bucket coordinates (pure numpy, fixed hyperparameters,
   stable tie-breaks) predicts FPS and feasibility for unseen buckets.
   PSO positions are continuous, so converged swarms revisit *nearby*
   buckets far more often than exact ones — the regime where k-NN is
   accurate and exact-match memoization is not (see ``BENCH_dse.json``:
   the bucket cache hits <1% of lookups while ``eval_seconds`` stays
   the dominant phase of serial wall time even after the batched kernel
   halved it).
3. **Prune** — :class:`SurrogateFilter` sits in the generation dedup
   path of :class:`~repro.dse.worker.GenerationEvaluator`. A candidate
   is pruned when its *optimistic score bound* (predicted score plus a
   safety margin calibrated online from this search's own observed
   prediction residuals) falls below the only thresholds that matter to
   the PSO update: its particle's best fitness and the global best. A
   pruned candidate's assigned score sits below both by construction, so
   it can never update a particle best or the global best — which is
   what makes ``verify`` mode's guarantee structural: a candidate that
   could become a generation winner is never pruned, and the returned
   design always comes from exact Algorithm-2 solves.

Modes (``surrogate=``):

- ``"off"`` — the default; the evaluator never consults a model and the
  search is bit-identical to the historical one at the same seed.
- ``"prune"`` — aggressive margins, plus pruning of candidates whose
  branches are unanimously predicted infeasible by all k neighbours.
  Trajectories may diverge slightly from ``off`` (the bench gates the
  final fitness to within 1%), but runs are deterministic: same seed,
  same cache state, same results, bit for bit.
- ``"verify"`` — conservative margins, no infeasibility rule, and more
  required residual observations before the first prune. Any candidate
  whose bound could reach a best-update threshold is exactly re-solved,
  so the final design matches ``off`` exactly (the bench asserts it).

Everything is deterministic: fixed hyperparameters, sorted initial
harvest, insertion-ordered incremental training rows, stable argsorts,
and no randomness beyond the seeded search itself. Wall clock is only
*measured* (model fit time in :class:`SurrogateStats`), never consulted.

The module also hosts the cross-run calibration harvest:
:func:`calibration_from_cache` pairs cached re-rank measurements (sim or
serving replays) with their analytical counterparts and fits the
per-branch residual the fig. 6/7 machinery measures, producing the
:class:`~repro.dse.objective.ResidualCalibration` a
:class:`~repro.dse.objective.CalibratedOracle` applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.dse.cache import EvalCache, harvest_entries
from repro.dse.objective import (
    BranchMetrics,
    Objective,
    ResidualCalibration,
    penalized_score,
)

if TYPE_CHECKING:
    from repro.dse.worker import EvalKey, EvalSpec

#: Modes accepted by the engine, the flow, and ``--surrogate``.
SURROGATE_MODES = ("off", "prune", "verify")

#: Fewer cache entries than this and the model never fits — the filter
#: degrades to a no-op (zero pruning) instead of guessing from noise.
DEFAULT_MIN_SAMPLES = 64

#: Neighbours per prediction. Small: the informative training points are
#: the near-revisits of a converging swarm, not the far corners.
_KNN_K = 4

#: Refit when the training set has grown by this factor since the last
#: fit (the first fit happens at ``min_samples``). Fits are cheap — the
#: model is instance-based — but arrays are rebuilt per fit, so a little
#: hysteresis keeps the bookkeeping off the per-generation path.
_REFIT_GROWTH = 1.125

#: Per-mode pruning conservatism: ``factor`` scales the windowed
#: residual statistic, ``rel_slack`` adds slack proportional to the
#: predicted score, ``min_observations`` delays the first prune until
#: the margin has data, ``quantile`` picks the residual statistic
#: (1.0 = the window max), and ``window`` bounds how long one bad
#: residual stays in the margin. The ``verify`` row is deliberately
#: conservative and is paired with strict per-particle thresholds in
#: the optimizer — its contract is final-design identity with
#: surrogate-off, and the ``finalize`` audit counts any violation —
#: while ``prune`` thresholds against the global best only and
#: tolerates occasional margin violations (the bench gates its best
#: fitness to within 1% of exact).
@dataclass(frozen=True)
class _Policy:
    factor: float
    rel_slack: float
    min_observations: int
    quantile: float
    window: int


_MODE_POLICY = {
    "prune": _Policy(
        factor=1.0, rel_slack=0.01, min_observations=8, quantile=0.75,
        window=128,
    ),
    "verify": _Policy(
        factor=1.5, rel_slack=0.02, min_observations=16, quantile=0.95,
        window=128,
    ),
}

#: Query chunk size for the distance matrix, bounding its memory to
#: ``chunk x len(training set)`` floats even against huge warm files.
_PREDICT_CHUNK = 64


def resolve_surrogate_mode(mode: str | None) -> str:
    """Validate a mode name (``None`` means ``"off"``)."""
    if mode is None:
        return "off"
    if mode not in SURROGATE_MODES:
        raise ValueError(
            f"unknown surrogate mode {mode!r}; pick one of {SURROGATE_MODES}"
        )
    return mode


@dataclass(frozen=True)
class SurrogateStats:
    """One search's surrogate accounting, reported in ``DseResult``.

    ``false_prunes`` is measured by the end-of-search audit: every pruned
    candidate whose buckets were later solved anyway (converging swarms
    revisit their neighbourhoods) is re-scored exactly and counted when
    its true score would have beaten the threshold it was pruned under —
    real signal about margin quality, at zero extra solve cost.
    """

    mode: str
    pruned_candidates: int = 0
    pruned_buckets: int = 0
    solved_buckets: int = 0
    predictions: int = 0
    false_prunes: int = 0
    audited: int = 0
    model_samples: int = 0
    refits: int = 0
    fit_seconds: float = 0.0


class _BranchModel:
    """k-NN regressor for one branch over standardized bucket coords."""

    def __init__(self, buckets: np.ndarray, fps: np.ndarray, feasible: np.ndarray) -> None:
        self._mean = buckets.mean(axis=0)
        std = buckets.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        self._points = (buckets - self._mean) / self._std
        self._fps = fps
        self._feasible = feasible

    def predict(self, buckets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Predicted (fps, feasible fraction) for a (q, 3) bucket array.

        Inverse-distance-weighted mean of the k nearest training points;
        ``argsort(kind="stable")`` breaks distance ties by training-row
        insertion order, which is itself deterministic (sorted harvest,
        then generation fold order) — so predictions never depend on
        anything but the cache state.
        """
        queries = (buckets - self._mean) / self._std
        k = min(_KNN_K, len(self._points))
        fps = np.empty(len(queries))
        feasible = np.empty(len(queries))
        for start in range(0, len(queries), _PREDICT_CHUNK):
            chunk = queries[start : start + _PREDICT_CHUNK]
            deltas = chunk[:, None, :] - self._points[None, :, :]
            distances = np.sqrt((deltas * deltas).sum(axis=-1))
            nearest = np.argsort(distances, axis=1, kind="stable")[:, :k]
            weights = 1.0 / (np.take_along_axis(distances, nearest, axis=1) + 1e-9)
            fps[start : start + _PREDICT_CHUNK] = (
                weights * self._fps[nearest]
            ).sum(axis=1) / weights.sum(axis=1)
            feasible[start : start + _PREDICT_CHUNK] = self._feasible[
                nearest
            ].mean(axis=1)
        return fps, feasible


@dataclass
class _Prediction:
    """One candidate's pre-solve prediction (kept until rehydration)."""

    keys: tuple
    #: Score assuming every predicted branch is feasible — an optimistic
    #: base for the upper bound (the infeasibility penalty only ever
    #: subtracts, so assuming it away can only overestimate).
    optimistic_score: float
    #: Score with the infeasibility penalty applied to branches whose k
    #: neighbours are *unanimously* infeasible (prune mode only).
    pessimistic_score: float
    metrics: BranchMetrics
    cached_hits: int


@dataclass(frozen=True)
class PrunedVerdict:
    """What the evaluator records for a candidate it will not solve."""

    score: float
    metrics: BranchMetrics


class SurrogateFilter:
    """Per-search pre-solve filter the generation evaluator consults.

    Owns the training rows, the per-branch models, the online residual
    calibration, the prune decisions, and the end-of-search false-prune
    audit. One filter serves one search; warm starts come from harvesting
    the (possibly shared or persistent) cache it searches against.
    """

    def __init__(
        self,
        spec: "EvalSpec",
        objective: Objective,
        mode: str,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        mode = resolve_surrogate_mode(mode)
        if mode == "off":
            raise ValueError("a surrogate filter needs an active mode")
        if min_samples < 1:
            raise ValueError("surrogate min_samples must be at least 1")
        self.spec = spec
        self.objective = objective
        self.mode = mode
        self.min_samples = min_samples
        self._policy = _MODE_POLICY[mode]
        self._rows: dict[int, list[tuple[tuple[int, int, int], float, bool]]] = {}
        self._seen: set[tuple[int, tuple[int, int, int]]] = set()
        self._samples = 0
        self._fitted_samples = 0
        self._models: dict[int, _BranchModel] = {}
        # Online score-space calibration: a sliding window of observed
        # under-predictions (true - predicted, clamped at 0) of the
        # optimistic score. Margins scale from a quantile of the window,
        # so one catastrophic early residual (a prediction made from a
        # sparse model in an unexplored region) widens the margin for a
        # while instead of disabling pruning for the rest of the search.
        self._residuals: list[float] = []
        self._observations = 0
        # (keys, threshold) per pruned candidate, for the final audit.
        self._prune_log: list[tuple[tuple, float]] = []
        self.pruned_candidates = 0
        self.pruned_buckets = 0
        self.solved_buckets = 0
        self.predictions = 0
        self.false_prunes = 0
        self.audited = 0
        self.refits = 0
        self.fit_seconds = 0.0

    # -- training data --------------------------------------------------
    def _ingest(
        self, rows: Sequence[tuple[int, tuple[int, int, int], object]]
    ) -> None:
        for branch, bucket, solution in rows:
            if solution is None:
                continue
            mark = (branch, bucket)
            if mark in self._seen:
                continue
            self._seen.add(mark)
            self._rows.setdefault(branch, []).append(
                (bucket, solution.fps, solution.meets_batch_target)
            )
            self._samples += 1

    def warm_from_cache(self, cache: EvalCache) -> None:
        """Seed the training set from a cache's accumulated entries."""
        self._ingest(harvest_entries(cache, self.spec.digest))

    def record_solutions(
        self, rows: Sequence[tuple[int, tuple[int, int, int], object]]
    ) -> None:
        """Fold one generation's freshly solved buckets into the model."""
        self._ingest(rows)

    def prepare(self) -> None:
        """Refit the per-branch models if the training set grew enough."""
        if self._samples < self.min_samples:
            return
        if self._models and self._samples < self._fitted_samples * _REFIT_GROWTH:
            return
        started = time.perf_counter()
        self._models = {}
        for branch, rows in sorted(self._rows.items()):
            buckets = np.array([row[0] for row in rows], dtype=np.float64)
            fps = np.array([row[1] for row in rows], dtype=np.float64)
            feasible = np.array([row[2] for row in rows], dtype=np.float64)
            self._models[branch] = _BranchModel(buckets, fps, feasible)
        self._fitted_samples = self._samples
        self.refits += 1
        self.fit_seconds += time.perf_counter() - started

    # -- prediction -----------------------------------------------------
    def ready(self) -> bool:
        """Whether the filter may prune at all this generation."""
        return bool(self._models)

    def predict_candidates(
        self,
        keys_per_candidate: Sequence[Sequence["EvalKey"]],
        cache: EvalCache,
    ) -> dict[int, _Prediction]:
        """Predict every candidate that has at least one unseen bucket.

        Cached branches contribute their exact FPS/feasibility; only the
        unseen buckets are predicted (deduplicated across the generation,
        one k-NN query per unique bucket per branch). Candidates whose
        every bucket is cached are left to the exact path — there is
        nothing to save. Candidates with an unseen bucket on a branch the
        model has no training rows for are unpredictable and skipped.
        """
        unseen_by_branch: dict[int, list[tuple[int, int, int]]] = {}
        unseen_index: dict[tuple[int, tuple[int, int, int]], int] = {}
        candidates: dict[int, list[tuple]] = {}
        for i, keys in enumerate(keys_per_candidate):
            parts: list[tuple] = []
            misses = 0
            predictable = True
            for key in keys:
                branch, bucket = key[1], key[2]
                solution = cache.get(key)
                if solution is not None:
                    parts.append(
                        ("exact", solution.fps, solution.meets_batch_target)
                    )
                    continue
                misses += 1
                if branch not in self._models:
                    predictable = False
                    break
                mark = (branch, bucket)
                if mark not in unseen_index:
                    unseen_index[mark] = len(
                        unseen_by_branch.setdefault(branch, [])
                    )
                    unseen_by_branch[branch].append(bucket)
                parts.append(("predicted", branch, bucket))
            if predictable and misses:
                candidates[i] = parts

        by_branch: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for branch, buckets in unseen_by_branch.items():
            by_branch[branch] = self._models[branch].predict(
                np.array(buckets, dtype=np.float64)
            )

        out: dict[int, _Prediction] = {}
        priorities = self.spec.customization.priorities
        for i, parts in candidates.items():
            fps: list[float] = []
            optimistic: list[bool] = []
            pessimistic: list[bool] = []
            cached_hits = 0
            for part in parts:
                if part[0] == "exact":
                    fps.append(part[1])
                    optimistic.append(part[2])
                    pessimistic.append(part[2])
                    cached_hits += 1
                else:
                    branch, bucket = part[1], part[2]
                    row = unseen_index[(branch, bucket)]
                    branch_fps, branch_feasible = by_branch[branch]
                    fps.append(float(branch_fps[row]))
                    feasible_fraction = float(branch_feasible[row])
                    optimistic.append(True)
                    # Unanimous neighbour verdicts only: one feasible
                    # neighbour is enough doubt to withhold the penalty.
                    pessimistic.append(feasible_fraction > 0.0)
            metrics = BranchMetrics(
                fps=tuple(fps),
                meets_batch=tuple(pessimistic),
                oracle="surrogate",
            )
            optimistic_metrics = BranchMetrics(
                fps=tuple(fps), meets_batch=tuple(optimistic), oracle="surrogate"
            )
            out[i] = _Prediction(
                keys=tuple(keys_per_candidate[i]),
                optimistic_score=penalized_score(
                    self.objective, optimistic_metrics, priorities
                ),
                pessimistic_score=penalized_score(
                    self.objective, metrics, priorities
                ),
                metrics=metrics,
                cached_hits=cached_hits,
            )
        self.predictions += len(out)
        return out

    # -- decisions ------------------------------------------------------
    def _margin(self, score: float) -> float:
        window = self._residuals
        if self._policy.quantile >= 1.0:
            base = max(window) if window else 0.0
        else:
            ordered = sorted(window)
            base = ordered[
                min(
                    len(ordered) - 1,
                    int(self._policy.quantile * len(ordered)),
                )
            ]
        return (
            self._policy.factor * base
            + self._policy.rel_slack * max(1.0, abs(score))
            + 1e-9
        )

    def decide(
        self, prediction: _Prediction, threshold: float
    ) -> PrunedVerdict | None:
        """Prune verdict for one predicted candidate, or ``None`` to solve.

        ``threshold`` comes from the optimizer at dispatch time:
        ``min(particle best, global best + tolerance)`` in verify mode,
        the global-best term alone in prune mode. Either way it only
        rises while the generation folds, so a bound below the
        dispatch-time threshold is below the live one too. The
        optimistic bound ignores predicted infeasibility (the
        penalty can only subtract); prune mode may additionally prune on
        the pessimistic score when every neighbour of a branch is
        infeasible — ``verify`` mode never does, because one mispredicted
        penalty would be a 1e6-sized bound error.
        """
        if self._observations < self._policy.min_observations:
            return None
        bound = prediction.optimistic_score + self._margin(
            prediction.optimistic_score
        )
        if bound >= threshold and self.mode == "prune":
            bound = prediction.pessimistic_score + self._margin(
                prediction.pessimistic_score
            )
        if bound >= threshold:
            return None
        self._prune_log.append((prediction.keys, threshold))
        self.pruned_candidates += 1
        return PrunedVerdict(
            score=prediction.pessimistic_score, metrics=prediction.metrics
        )

    def observe(self, prediction: _Prediction, true_score: float) -> None:
        """Calibrate the margin from a candidate that was solved exactly."""
        self._observations += 1
        self._residuals.append(
            max(0.0, true_score - prediction.optimistic_score)
        )
        if len(self._residuals) > self._policy.window:
            del self._residuals[0]

    def note_generation(self, pruned_buckets: int, solved_buckets: int) -> None:
        self.pruned_buckets += pruned_buckets
        self.solved_buckets += solved_buckets

    # -- audit ----------------------------------------------------------
    def finalize(self, cache: EvalCache) -> None:
        """Audit pruned candidates whose buckets got solved later anyway."""
        priorities = self.spec.customization.priorities
        for keys, threshold in self._prune_log:
            solutions = [cache.get(key) for key in keys]
            if any(solution is None for solution in solutions):
                continue
            self.audited += 1
            metrics = BranchMetrics(
                fps=tuple(s.fps for s in solutions),
                meets_batch=tuple(s.meets_batch_target for s in solutions),
            )
            true_score = penalized_score(self.objective, metrics, priorities)
            if true_score >= threshold:
                self.false_prunes += 1

    def stats(self) -> SurrogateStats:
        return SurrogateStats(
            mode=self.mode,
            pruned_candidates=self.pruned_candidates,
            pruned_buckets=self.pruned_buckets,
            solved_buckets=self.solved_buckets,
            predictions=self.predictions,
            false_prunes=self.false_prunes,
            audited=self.audited,
            model_samples=self._samples,
            refits=self.refits,
            fit_seconds=self.fit_seconds,
        )


# ---------------------------------------------------------------------------
# cross-run oracle calibration (the fig. 6/7 residual, harvested)
# ---------------------------------------------------------------------------
def calibration_from_cache(
    cache: EvalCache,
    digest: str,
    oracle_key: str | None = None,
    min_pairs: int = 3,
) -> ResidualCalibration:
    """Fit the analytical-vs-measured FPS residual from cached re-ranks.

    Every re-rank entry a staged search left behind pairs an expensive
    measurement (sim or serving replay) with the analytical solutions of
    the same buckets — the per-candidate version of the error fig. 6/7
    reports per benchmark. This walks those pairs (sorted, so the fit is
    deterministic) and least-squares a per-branch multiplicative scale
    through the origin; branches with fewer than ``min_pairs`` pairs keep
    the identity scale. ``oracle_key`` restricts the harvest to one
    oracle's measurements (default: all non-analytical entries).

    The result feeds a :class:`~repro.dse.objective.CalibratedOracle`, so
    re-rank data accumulated across runs in a persistent cache pulls the
    analytical oracle toward cycle-accurate truth — without running the
    expensive oracle again.
    """
    pairs: dict[int, list[tuple[float, float]]] = {}
    rerank_rows = []
    for key, metrics in cache.items():
        if not (isinstance(key, tuple) and len(key) == 4):
            continue
        if key[0] != digest or key[1] != "rerank":
            continue
        if oracle_key is not None and key[2] != oracle_key:
            continue
        rerank_rows.append((key[2], key[3], metrics))
    rerank_rows.sort(key=lambda row: (row[0], row[1]))
    branches = 0
    for _, buckets, measured in rerank_rows:
        branches = max(branches, len(buckets))
        for branch, bucket in enumerate(buckets):
            solution = cache.get((digest, branch, bucket))
            if solution is None or branch >= len(measured.fps):
                continue
            pairs.setdefault(branch, []).append(
                (solution.fps, measured.fps[branch])
            )
    if not pairs:
        return ResidualCalibration.identity(branches)
    branches = max(branches, max(pairs) + 1)
    scales = []
    total = 0
    for branch in range(branches):
        branch_pairs = pairs.get(branch, [])
        total += len(branch_pairs)
        if len(branch_pairs) < min_pairs:
            scales.append(1.0)
            continue
        analytical = np.array([a for a, _ in branch_pairs])
        measured = np.array([m for _, m in branch_pairs])
        denominator = float((analytical * analytical).sum())
        scales.append(
            float((analytical * measured).sum() / denominator)
            if denominator > 0.0
            else 1.0
        )
    return ResidualCalibration(
        scales=tuple(scales), samples=total, source="cache"
    )


__all__ = [
    "DEFAULT_MIN_SAMPLES",
    "PrunedVerdict",
    "SURROGATE_MODES",
    "SurrogateFilter",
    "SurrogateStats",
    "calibration_from_cache",
    "resolve_surrogate_mode",
]
