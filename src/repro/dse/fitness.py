"""Deprecated fitness entry point (paper Sec. VI-B1).

The Sec. VI-B1 fitness now lives in
:class:`repro.dse.objective.PaperObjective`, one of several pluggable
objectives behind the metrics → objective pipeline. :func:`fitness_score`
remains as a thin wrapper so external callers (and the ablation drivers)
keep working; it computes the exact same number, bit for bit.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.dse.objective import BranchMetrics, PaperObjective


def fitness_score(
    fps: Sequence[float],
    priorities: tuple[float, ...],
    alpha: float = 0.05,
) -> float:
    """Weighted score minus the branch-variance penalty.

    .. deprecated::
        Use :class:`repro.dse.objective.PaperObjective` — this wrapper
        delegates to it and will be removed in a future release.
    """
    warnings.warn(
        "fitness_score is deprecated; use "
        "repro.dse.objective.PaperObjective(alpha=...).score(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    metrics = BranchMetrics(
        fps=tuple(fps), meets_batch=(True,) * len(fps)
    )
    return PaperObjective(alpha=alpha).score(metrics, tuple(priorities))
