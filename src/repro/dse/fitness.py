"""Fitness scoring for the cross-branch search (paper Sec. VI-B1).

``fitness = S(Perf, U) - P(Perf)`` where

- ``S`` is the priority-weighted performance ``sum_j perf_j x P_j``;
- ``P`` is the variance penalty ``alpha x sigma^2(Perf)`` that discourages
  starving one branch to fatten another (branch FPS should stay balanced —
  an avatar whose geometry updates at 120 FPS but whose texture crawls at
  10 FPS is useless).
"""

from __future__ import annotations

import statistics


def fitness_score(
    fps: list[float],
    priorities: tuple[float, ...],
    alpha: float = 0.05,
) -> float:
    """Weighted score minus the branch-variance penalty."""
    if len(fps) != len(priorities):
        raise ValueError("fps and priorities must have the same length")
    weighted = sum(f * p for f, p in zip(fps, priorities))
    variance = statistics.pvariance(fps) if len(fps) > 1 else 0.0
    return weighted - alpha * variance
