"""Cross-branch stochastic optimization — the paper's Algorithm 1.

A particle-swarm search over *resource distributions*: each candidate
``rd`` splits the compute / memory / bandwidth budgets across branches
(fractions per resource summing to one). Every candidate is completed into
a full hardware configuration by the in-branch greedy search (Algorithm 2),
scored by the configured :class:`~repro.dse.objective.Objective` over its
metrics, and evolved toward its local best and the global best by a random
distance — exactly the ``Evolve(rd, rd_best_i, rd_best_global, budget)``
update of the paper.

The search can be *staged*: the cheap analytical oracle scores every PSO
position as before, and an optional expensive ``rerank_oracle`` (the
cycle-accurate simulator or a serving-workload replay) re-measures the
top-K candidates of each generation. The expensive track runs beside the
swarm, never inside it — analytical scores keep guiding the particle
updates (the two oracles' scores live on different scales, so mixing them
in one ``max`` would be meaningless), while the returned best design is
the one the expensive oracle ranked highest. With no re-rank oracle the
loop is exactly the historical Algorithm 1, bit for bit.

Candidate evaluation is pure (see :mod:`repro.dse.worker`), so a
generation's population can be scored serially or fanned out over a
process pool (``workers > 1``) with bit-identical results: evaluation
consumes no randomness and the parent applies best-updates in fixed
particle order after the per-generation barrier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.cache import EvalCache, LocalEvalCache
from repro.dse.inbranch import BranchSolution
from repro.dse.objective import (
    BranchMetrics,
    MetricsOracle,
    Objective,
    penalized_score,
    resolve_objective,
    resolve_oracle,
)
from repro.dse.space import Customization
from repro.dse.surrogate import (
    DEFAULT_MIN_SAMPLES,
    SurrogateFilter,
    SurrogateStats,
    resolve_surrogate_mode,
)
from repro.dse.worker import (
    EvalSpec,
    EvalTimings,
    SweepWorkerPool,
    candidate_runner,
    evaluate_candidate,
    rerank_key,
)
from repro.quant.schemes import QuantScheme
from repro.utils.rng import make_rng

#: Fraction floor so no branch is starved to exactly zero.
_FRACTION_FLOOR = 0.01


@dataclass
class Particle:
    """One resource-distribution candidate with PSO state."""

    position: list[float]  # 3 x B fractions: [C..., M..., BW...]
    velocity: list[float]
    best_position: list[float] = field(default_factory=list)
    best_fitness: float = float("-inf")


def _normalize_block(values: list[float]) -> list[float]:
    """Clip to the floor and normalize a block of fractions to sum 1."""
    clipped = [max(_FRACTION_FLOOR, v) for v in values]
    total = sum(clipped)
    return [v / total for v in clipped]


class CrossBranchOptimizer:
    """Algorithm 1: stochastic search over cross-branch distributions."""

    def __init__(
        self,
        plan: PipelinePlan,
        budget: ResourceBudget,
        customization: Customization,
        quant: QuantScheme,
        frequency_mhz: float = 200.0,
        alpha: float = 0.05,
        inertia: float = 0.5,
        c_local: float = 1.2,
        c_global: float = 1.2,
        cache: EvalCache | None = None,
        objective: Objective | str | None = None,
        rerank_oracle: MetricsOracle | str | None = None,
        rerank_top_k: int = 4,
        surrogate: str = "off",
        surrogate_min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        customization.validate_for(plan)
        if rerank_top_k < 1:
            raise ValueError("rerank_top_k must be at least 1")
        surrogate = resolve_surrogate_mode(surrogate)
        self.plan = plan
        self.budget = budget
        self.customization = customization
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.alpha = alpha
        self.inertia = inertia
        self.c_local = c_local
        self.c_global = c_global
        self.num_branches = plan.num_branches
        self.spec = EvalSpec(
            plan=plan,
            budget=budget,
            customization=customization,
            quant=quant,
            frequency_mhz=frequency_mhz,
        )
        self.objective = resolve_objective(objective, alpha=alpha)
        self.rerank_oracle = resolve_oracle(rerank_oracle)
        self.rerank_top_k = rerank_top_k
        if surrogate != "off" and self.rerank_oracle is not None:
            # A pruned candidate carries no solutions, so it cannot be
            # re-measured if the analytical top-K sort surfaces it; the
            # combination would also let predicted scores pick which
            # candidates the expensive oracle sees. Staged searches keep
            # the exact evaluator.
            raise ValueError(
                "surrogate pruning cannot be combined with a re-rank "
                "oracle; run with surrogate='off' or rerank_oracle=None"
            )
        self.surrogate_mode = surrogate
        self.surrogate_min_samples = surrogate_min_samples
        self.surrogate_stats: SurrogateStats | None = None
        self._cache: EvalCache = cache if cache is not None else LocalEvalCache()
        self.evaluations = 0
        self.cache_hits = 0
        self.stage_hits = 0
        self.stage_lookups = 0
        self.oracle_invocations = 0
        self.oracle_cache_hits = 0
        self.best_metrics: BranchMetrics | None = None
        self.eval_timings = EvalTimings()

    # ------------------------------------------------------------------
    def evaluate(
        self, position: list[float]
    ) -> tuple[float, list[BranchSolution]]:
        """Complete a distribution into configs and compute its fitness."""
        result = evaluate_candidate(
            self.spec, position, self._cache, objective=self.objective
        )
        self.evaluations += result.evaluations
        self.cache_hits += result.cache_hits
        return result.score, list(result.solutions)

    # ------------------------------------------------------------------
    def _oracle_metrics(
        self,
        position: Sequence[float],
        solutions: tuple[BranchSolution, ...],
    ) -> BranchMetrics:
        """Expensive-oracle metrics for one candidate, cached by bucket.

        The oracle identity is folded into the cache key (see
        :func:`~repro.dse.worker.rerank_key`), so one cache can hold
        analytical solutions plus re-rank metrics from several oracles —
        and a persistent cache warm-starts the expensive stage too.
        """
        assert self.rerank_oracle is not None
        key = rerank_key(self.spec, self.rerank_oracle.key, position)
        metrics = self._cache.get(key)
        if metrics is None:
            metrics = self.rerank_oracle.measure(
                self.spec, position, solutions
            )
            self._cache.put(key, metrics)
            self.oracle_invocations += 1
        else:
            self.oracle_cache_hits += 1
        return metrics

    # ------------------------------------------------------------------
    def _heuristic_position(self) -> list[float]:
        """A seed distribution proportional to each branch's demands.

        Compute and bandwidth follow the branch's total ops (times its
        requested batch size); the swarm then refines from this sensible
        starting point instead of only from random corners.
        """
        demands = [
            max(1.0, pipeline.ops * batch)
            for pipeline, batch in zip(
                self.plan.branches, self.customization.batch_sizes
            )
        ]
        fractions = _normalize_block([d / sum(demands) for d in demands])
        return fractions * 3

    def init_population(
        self,
        population: int,
        rng: random.Random,
        heuristic_seed: bool = True,
    ) -> list[Particle]:
        B = self.num_branches
        particles = []
        if heuristic_seed:
            particles.append(
                Particle(
                    position=self._heuristic_position(),
                    velocity=[0.0] * (3 * B),
                )
            )
        while len(particles) < population:
            position: list[float] = []
            for _block in range(3):
                # Exponent < 1 spreads mass toward the corners, so extreme
                # splits (one branch taking ~80% of a resource) are explored.
                weights = [rng.random() ** 2.5 + 1e-3 for _ in range(B)]
                position.extend(_normalize_block(weights))
            particles.append(
                Particle(
                    position=position,
                    velocity=[0.0] * (3 * B),
                )
            )
        return particles

    def evolve(
        self,
        particle: Particle,
        global_best: list[float],
        rng: random.Random,
    ) -> None:
        """One PSO velocity/position update, then re-normalize."""
        B = self.num_branches
        for i in range(3 * B):
            r_local = rng.random()
            r_global = rng.random()
            particle.velocity[i] = (
                self.inertia * particle.velocity[i]
                + self.c_local * r_local * (particle.best_position[i] - particle.position[i])
                + self.c_global * r_global * (global_best[i] - particle.position[i])
            )
            particle.position[i] += particle.velocity[i]
        for block in range(3):
            start, end = block * B, (block + 1) * B
            particle.position[start:end] = _normalize_block(
                particle.position[start:end]
            )

    # ------------------------------------------------------------------
    def search(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        improvement_tolerance: float = 1e-9,
        heuristic_seed: bool = True,
        workers: int = 1,
        pool: "SweepWorkerPool | None" = None,
    ) -> tuple[float, AcceleratorConfig, list[float], int]:
        """Run the full Algorithm 1 loop.

        ``heuristic_seed`` plants one demand-proportional particle in the
        initial population (disable it to measure the convergence of the
        pure stochastic search, as the Sec.-VII study does).

        ``workers > 1`` evaluates each generation's population on a process
        pool (a barrier joins the generation before the PSO update); a
        live ``pool`` (one long-lived set of workers serving a whole
        sweep) is borrowed instead of forking a fresh one. The result is
        bit-identical to ``workers = 1`` at the same seed either way.

        Returns (best fitness, best config, fitness history per iteration,
        iteration at which the global best last improved).
        """
        rng = make_rng(seed)
        particles = self.init_population(
            population, rng, heuristic_seed=heuristic_seed
        )
        global_best_fitness = float("-inf")
        global_best_position: list[float] | None = None
        global_best_solutions: tuple[BranchSolution, ...] | None = None
        history: list[float] = []
        convergence_iteration = 0
        # The expensive track: best candidate by re-ranked (oracle) score.
        # Kept apart from the swarm's cheap-score track — the two scales
        # are incommensurable (e.g. weighted FPS vs negative p99 ms).
        rerank_best_fitness = float("-inf")
        rerank_best_solutions: tuple[BranchSolution, ...] | None = None
        rerank_best_metrics: BranchMetrics | None = None
        rerank_best_iteration = 0

        surrogate = None
        if self.surrogate_mode != "off":
            surrogate = SurrogateFilter(
                self.spec,
                self.objective,
                self.surrogate_mode,
                min_samples=self.surrogate_min_samples,
            )
            # A warm cache (persistent file, shared sweep cache) is a
            # warm model: the harvest is sorted, so the fitted model is
            # a pure function of the cache contents.
            surrogate.warm_from_cache(self._cache)

        with candidate_runner(
            self.spec, self._cache, workers, pool=pool,
            objective=self.objective, surrogate=surrogate,
        ) as run_batch:
            for iteration in range(iterations):
                thresholds = None
                if surrogate is not None and self.surrogate_mode == "verify":
                    # The lowest score that could still matter for each
                    # candidate. Both terms only rise while the
                    # generation folds (a particle's best changes only
                    # at its own fold turn), so a bound below the
                    # dispatch-time threshold is below the live one too
                    # — pruning against it cannot change any
                    # best-update the exact search would make.
                    thresholds = [
                        min(
                            p.best_fitness,
                            global_best_fitness + improvement_tolerance,
                        )
                        for p in particles
                    ]
                elif surrogate is not None:
                    # Prune mode trades the per-particle bound for the
                    # global one: candidates confidently below the
                    # incumbent global best cannot become the final
                    # design, but skipping them may leave a particle's
                    # personal best stale and so nudge the swarm
                    # trajectory. The bench gate (fitness within 1% of
                    # exact) is the accuracy contract for this mode.
                    thresholds = [
                        global_best_fitness + improvement_tolerance
                    ] * len(particles)
                results = run_batch(
                    [p.position for p in particles], thresholds=thresholds
                )
                for particle, result in zip(particles, results):
                    self.evaluations += result.evaluations
                    self.cache_hits += result.cache_hits
                    if result.pruned:
                        # A pruned verdict is a bound, not a measurement:
                        # never let it move personal or global bests.
                        continue
                    if result.score > particle.best_fitness:
                        particle.best_fitness = result.score
                        particle.best_position = list(particle.position)
                    if result.score > global_best_fitness + improvement_tolerance:
                        global_best_fitness = result.score
                        global_best_position = list(particle.position)
                        global_best_solutions = result.solutions
                        self.best_metrics = result.metrics
                        convergence_iteration = iteration + 1
                if self.rerank_oracle is not None:
                    # Stage 2: re-measure this generation's analytical
                    # top-K with the expensive oracle. Sorting is stable,
                    # so ties resolve in particle order — deterministic.
                    ranked = sorted(
                        range(len(particles)),
                        key=lambda i: results[i].score,
                        reverse=True,
                    )[: self.rerank_top_k]
                    for idx in ranked:
                        metrics = self._oracle_metrics(
                            particles[idx].position, results[idx].solutions
                        )
                        score = penalized_score(
                            self.objective,
                            metrics,
                            self.customization.priorities,
                        )
                        if score > rerank_best_fitness + improvement_tolerance:
                            rerank_best_fitness = score
                            rerank_best_solutions = results[idx].solutions
                            rerank_best_metrics = metrics
                            rerank_best_iteration = iteration + 1
                history.append(global_best_fitness)
                assert global_best_position is not None
                for particle in particles:
                    self.evolve(particle, global_best_position, rng)
            self.stage_hits += run_batch.stage_hits
            self.stage_lookups += run_batch.stage_lookups
            self.eval_timings.add(run_batch.timings)

        if surrogate is not None:
            # Post-hoc audit: pruned candidates whose buckets were later
            # solved anyway get their exact score recomputed for free —
            # false_prunes counts the margin violations.
            surrogate.finalize(self._cache)
            self.surrogate_stats = surrogate.stats()

        if self.rerank_oracle is not None and rerank_best_solutions is not None:
            self.best_metrics = rerank_best_metrics
            config = AcceleratorConfig(
                branches=tuple(s.config for s in rerank_best_solutions)
            )
            return (
                rerank_best_fitness,
                config,
                history,
                rerank_best_iteration,
            )

        assert global_best_solutions is not None
        config = AcceleratorConfig(
            branches=tuple(s.config for s in global_best_solutions)
        )
        return global_best_fitness, config, history, convergence_iteration
