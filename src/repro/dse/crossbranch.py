"""Cross-branch stochastic optimization — the paper's Algorithm 1.

A particle-swarm search over *resource distributions*: each candidate
``rd`` splits the compute / memory / bandwidth budgets across branches
(fractions per resource summing to one). Every candidate is completed into
a full hardware configuration by the in-branch greedy search (Algorithm 2),
scored by the priority-weighted fitness, and evolved toward its local best
and the global best by a random distance — exactly the
``Evolve(rd, rd_best_i, rd_best_global, budget)`` update of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.arch.config import AcceleratorConfig
from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.fitness import fitness_score
from repro.dse.inbranch import BranchSolution, optimize_branch
from repro.dse.space import Customization
from repro.quant.schemes import QuantScheme
from repro.utils.rng import make_rng

#: Quantization grid for the in-branch cache (see _quantize_rd).
_COMPUTE_GRID = 4
_MEMORY_GRID = 4
_BANDWIDTH_GRID = 0.05

#: Fraction floor so no branch is starved to exactly zero.
_FRACTION_FLOOR = 0.01


@dataclass
class Particle:
    """One resource-distribution candidate with PSO state."""

    position: list[float]  # 3 x B fractions: [C..., M..., BW...]
    velocity: list[float]
    best_position: list[float] = field(default_factory=list)
    best_fitness: float = float("-inf")


def _normalize_block(values: list[float]) -> list[float]:
    """Clip to the floor and normalize a block of fractions to sum 1."""
    clipped = [max(_FRACTION_FLOOR, v) for v in values]
    total = sum(clipped)
    return [v / total for v in clipped]


def _quantize_rd(rd: ResourceBudget) -> tuple[int, int, float]:
    return (
        rd.compute // _COMPUTE_GRID,
        rd.memory // _MEMORY_GRID,
        round(rd.bandwidth_gbps / _BANDWIDTH_GRID),
    )


class CrossBranchOptimizer:
    """Algorithm 1: stochastic search over cross-branch distributions."""

    def __init__(
        self,
        plan: PipelinePlan,
        budget: ResourceBudget,
        customization: Customization,
        quant: QuantScheme,
        frequency_mhz: float = 200.0,
        alpha: float = 0.05,
        inertia: float = 0.5,
        c_local: float = 1.2,
        c_global: float = 1.2,
    ) -> None:
        customization.validate_for(plan)
        self.plan = plan
        self.budget = budget
        self.customization = customization
        self.quant = quant
        self.frequency_mhz = frequency_mhz
        self.alpha = alpha
        self.inertia = inertia
        self.c_local = c_local
        self.c_global = c_global
        self.num_branches = plan.num_branches
        self._cache: dict[
            tuple[int, tuple[int, int, float]], BranchSolution
        ] = {}
        self.evaluations = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def _split_budget(self, position: list[float]) -> list[ResourceBudget]:
        B = self.num_branches
        compute = position[0:B]
        memory = position[B : 2 * B]
        bandwidth = position[2 * B : 3 * B]
        return [
            ResourceBudget(
                compute=int(self.budget.compute * compute[j]),
                memory=int(self.budget.memory * memory[j]),
                bandwidth_gbps=self.budget.bandwidth_gbps * bandwidth[j],
            )
            for j in range(B)
        ]

    def _solve_branch(self, branch: int, rd: ResourceBudget) -> BranchSolution:
        key = (branch, _quantize_rd(rd))
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        solution = optimize_branch(
            self.plan.branches[branch],
            rd,
            self.customization.batch_sizes[branch],
            self.quant,
            self.frequency_mhz,
            max_h=self.customization.max_h,
            max_pf=self.customization.max_pf,
        )
        self._cache[key] = solution
        self.evaluations += 1
        return solution

    def evaluate(
        self, position: list[float]
    ) -> tuple[float, list[BranchSolution]]:
        """Complete a distribution into configs and compute its fitness."""
        distributions = self._split_budget(position)
        solutions = [
            self._solve_branch(j, rd) for j, rd in enumerate(distributions)
        ]
        fps = [s.fps for s in solutions]
        score = fitness_score(
            fps, self.customization.priorities, self.alpha
        )
        # A distribution that cannot honour the requested batch sizes is
        # strictly worse than any that can.
        shortfall = sum(
            1 for s in solutions if not s.meets_batch_target
        )
        score -= 1e6 * shortfall
        return score, solutions

    # ------------------------------------------------------------------
    def _heuristic_position(self) -> list[float]:
        """A seed distribution proportional to each branch's demands.

        Compute and bandwidth follow the branch's total ops (times its
        requested batch size); the swarm then refines from this sensible
        starting point instead of only from random corners.
        """
        demands = [
            max(1.0, pipeline.ops * batch)
            for pipeline, batch in zip(
                self.plan.branches, self.customization.batch_sizes
            )
        ]
        fractions = _normalize_block([d / sum(demands) for d in demands])
        return fractions * 3

    def init_population(
        self,
        population: int,
        rng: random.Random,
        heuristic_seed: bool = True,
    ) -> list[Particle]:
        B = self.num_branches
        particles = []
        if heuristic_seed:
            particles.append(
                Particle(
                    position=self._heuristic_position(),
                    velocity=[0.0] * (3 * B),
                )
            )
        while len(particles) < population:
            position: list[float] = []
            for _block in range(3):
                # Exponent < 1 spreads mass toward the corners, so extreme
                # splits (one branch taking ~80% of a resource) are explored.
                weights = [rng.random() ** 2.5 + 1e-3 for _ in range(B)]
                position.extend(_normalize_block(weights))
            particles.append(
                Particle(
                    position=position,
                    velocity=[0.0] * (3 * B),
                )
            )
        return particles

    def evolve(
        self,
        particle: Particle,
        global_best: list[float],
        rng: random.Random,
    ) -> None:
        """One PSO velocity/position update, then re-normalize."""
        B = self.num_branches
        for i in range(3 * B):
            r_local = rng.random()
            r_global = rng.random()
            particle.velocity[i] = (
                self.inertia * particle.velocity[i]
                + self.c_local * r_local * (particle.best_position[i] - particle.position[i])
                + self.c_global * r_global * (global_best[i] - particle.position[i])
            )
            particle.position[i] += particle.velocity[i]
        for block in range(3):
            start, end = block * B, (block + 1) * B
            particle.position[start:end] = _normalize_block(
                particle.position[start:end]
            )

    # ------------------------------------------------------------------
    def search(
        self,
        iterations: int = 20,
        population: int = 200,
        seed: int | random.Random | None = 0,
        improvement_tolerance: float = 1e-9,
        heuristic_seed: bool = True,
    ) -> tuple[float, AcceleratorConfig, list[float], int]:
        """Run the full Algorithm 1 loop.

        ``heuristic_seed`` plants one demand-proportional particle in the
        initial population (disable it to measure the convergence of the
        pure stochastic search, as the Sec.-VII study does).

        Returns (best fitness, best config, fitness history per iteration,
        iteration at which the global best last improved).
        """
        rng = make_rng(seed)
        particles = self.init_population(
            population, rng, heuristic_seed=heuristic_seed
        )
        global_best_fitness = float("-inf")
        global_best_position: list[float] | None = None
        global_best_solutions: list[BranchSolution] | None = None
        history: list[float] = []
        convergence_iteration = 0

        for iteration in range(iterations):
            for particle in particles:
                score, solutions = self.evaluate(particle.position)
                if score > particle.best_fitness:
                    particle.best_fitness = score
                    particle.best_position = list(particle.position)
                if score > global_best_fitness + improvement_tolerance:
                    global_best_fitness = score
                    global_best_position = list(particle.position)
                    global_best_solutions = solutions
                    convergence_iteration = iteration + 1
            history.append(global_best_fitness)
            assert global_best_position is not None
            for particle in particles:
                self.evolve(particle, global_best_position, rng)

        assert global_best_solutions is not None
        config = AcceleratorConfig(
            branches=tuple(s.config for s in global_best_solutions)
        )
        return global_best_fitness, config, history, convergence_iteration
