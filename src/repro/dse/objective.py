"""The pluggable objective layer: candidate → metrics → scalar fitness.

Candidate evaluation is a two-stage pipeline:

1. a :class:`MetricsOracle` turns a candidate design into a
   :class:`BranchMetrics` record — *measurements*, free of any preference
   about what "good" means;
2. an :class:`Objective` folds those metrics into the scalar fitness the
   cross-branch search maximizes.

Splitting the two is what makes the evaluation cache objective-independent:
Algorithm-2 solutions (and the analytical metrics derived from them) are a
pure function of the problem spec and the budget bucket, so a warm cache
keeps hitting when the caller switches from the paper's Sec. VI-B1 fitness
to an SLO objective — only the cheap parent-side scoring changes.

Oracles, from cheapest to most expensive:

- :class:`AnalyticalOracle` — metrics straight from the Algorithm-2
  solutions (per-branch steady-state FPS, batch feasibility). This is the
  stage-1 oracle that scores every PSO position.
- :class:`SimOracle` — re-measures the candidate with the cycle-accurate
  simulator (:func:`repro.sim.runner.simulate`): branch FPS including
  pipeline-fill and DRAM-contention effects the analytical model idealizes.
- :class:`ServingOracle` — deploys the candidate's
  :class:`~repro.sim.runner.FrameLatencyProfile` on simulated replicas and
  replays a canned multi-avatar workload through :mod:`repro.serving`,
  returning p99 latency and deadline-miss SLOs under load.

Objectives:

- :class:`PaperObjective` — Sec. VI-B1, bit-identical to the historical
  ``fitness_score``: priority-weighted FPS minus ``alpha`` times the
  branch-FPS population variance.
- :class:`SloObjective` — maximize ``-(p99 + miss_weight x (miss_rate +
  shed_rate + failed_rate))`` when serving metrics are present; falls
  back to the paper objective as a cheap proxy on analytical metrics
  (stage 1 of a staged search).
- :class:`CompositeObjective` — a weight-normalized blend of objectives.

The expensive oracles are not run on every candidate: the search scores
every position with the analytical oracle and re-ranks only the top-K
candidates per generation through the expensive oracle (see
:class:`~repro.dse.crossbranch.CrossBranchOptimizer`). Expensive metrics
are cached under keys that fold in the oracle identity — analytical
entries never need it, because they are the same for every oracle stack.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    from repro.dse.inbranch import BranchSolution
    from repro.dse.worker import EvalSpec
    from repro.serving.cluster import GroupSpec

#: Fitness penalty per branch that cannot honour its requested batch size.
#: Applied outside the objective (see :func:`penalized_score`): an
#: infeasible design must lose under *any* objective, paper or SLO.
INFEASIBILITY_PENALTY = 1e6


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BranchMetrics:
    """Objective-independent measurements for one candidate design.

    ``fps`` / ``meets_batch`` are always present (every oracle can report
    them); the serving SLOs are ``None`` unless the producing oracle
    actually replayed a workload. Instances are picklable, so expensive
    metrics persist through :class:`~repro.dse.cache.FileEvalCache`.
    """

    fps: tuple[float, ...]
    meets_batch: tuple[bool, ...]
    oracle: str = "analytical"
    p99_ms: float | None = None
    deadline_miss_rate: float | None = None
    throughput_fps: float | None = None
    #: Fraction of the replayed workload shed by admission control
    #: (``None`` when the replay ran without shedding). Kept alongside
    #: the miss rate so an objective cannot be gamed by dropping frames.
    shed_rate: float | None = None
    #: Fraction of the replayed workload that resolved as *failed* —
    #: frames whose replica died past the retry budget. ``None`` on
    #: fault-free replays; charged like a miss so a chaos replay cannot
    #: game the score by abandoning the frames it cannot recover.
    failed_rate: float | None = None

    @property
    def shortfall(self) -> int:
        """Branches that cannot honour their requested batch size."""
        return sum(1 for ok in self.meets_batch if not ok)


def metrics_from_solutions(
    solutions: Sequence["BranchSolution"], oracle: str = "analytical"
) -> BranchMetrics:
    """The analytical metrics record of a completed candidate."""
    return BranchMetrics(
        fps=tuple(s.fps for s in solutions),
        meets_batch=tuple(s.meets_batch_target for s in solutions),
        oracle=oracle,
    )


# ---------------------------------------------------------------------------
# objectives
# ---------------------------------------------------------------------------
@runtime_checkable
class Objective(Protocol):
    """Metrics → scalar fitness (maximized by the cross-branch search)."""

    name: ClassVar[str]

    @property
    def key(self) -> str:
        """Stable identity string (parameters included) for dedup keys."""
        ...

    def score(
        self, metrics: BranchMetrics, priorities: tuple[float, ...]
    ) -> float: ...


@dataclass(frozen=True)
class PaperObjective:
    """Sec. VI-B1: ``S(Perf, U) - P(Perf)``.

    ``S`` is the priority-weighted performance ``sum_j perf_j x P_j`` and
    ``P`` the variance penalty ``alpha x sigma^2(Perf)`` that discourages
    starving one branch to fatten another (an avatar whose geometry
    updates at 120 FPS but whose texture crawls at 10 FPS is useless).
    Bit-identical to the historical ``fitness_score``.
    """

    alpha: float = 0.05

    name: ClassVar[str] = "paper"

    @property
    def key(self) -> str:
        return f"paper(alpha={self.alpha!r})"

    def score(
        self, metrics: BranchMetrics, priorities: tuple[float, ...]
    ) -> float:
        fps = metrics.fps
        if len(fps) != len(priorities):
            raise ValueError("fps and priorities must have the same length")
        weighted = sum(f * p for f, p in zip(fps, priorities))
        variance = statistics.pvariance(fps) if len(fps) > 1 else 0.0
        return weighted - self.alpha * variance


@dataclass(frozen=True)
class SloObjective:
    """Serving-driven fitness: minimize p99-under-load and deadline misses.

    On metrics that carry serving SLOs the fitness is
    ``-(p99_ms + miss_weight x (miss_rate + shed_rate + failed_rate))``
    — a deadline-miss rate of 10 % costs as much as ``0.1 x miss_weight``
    milliseconds of p99, and a *shed* or *failed* (unrecovered after a
    replica fault) frame costs exactly as much as a late one (otherwise
    a shedding or chaos replay could game the score by dropping the
    traffic it cannot serve). On purely analytical
    metrics (stage 1 of a staged search, before any replay has
    happened) it falls back to the paper objective as a cheap proxy:
    higher weighted steady-state FPS correlates with lower latency under
    load, which is exactly what makes the analytical stage a useful
    pre-filter for the expensive re-rank.
    """

    miss_weight: float = 1000.0
    fallback_alpha: float = 0.05

    name: ClassVar[str] = "slo"

    @property
    def key(self) -> str:
        return (
            f"slo(miss_weight={self.miss_weight!r},"
            f"fallback_alpha={self.fallback_alpha!r})"
        )

    def score(
        self, metrics: BranchMetrics, priorities: tuple[float, ...]
    ) -> float:
        if metrics.p99_ms is None:
            return PaperObjective(alpha=self.fallback_alpha).score(
                metrics, priorities
            )
        miss_rate = metrics.deadline_miss_rate or 0.0
        # getattr: metrics unpickled from a cache file written before a
        # field existed may lack it entirely.
        shed_rate = getattr(metrics, "shed_rate", None) or 0.0
        failed_rate = getattr(metrics, "failed_rate", None) or 0.0
        return -(
            metrics.p99_ms
            + self.miss_weight * (miss_rate + shed_rate + failed_rate)
        )


@dataclass(frozen=True)
class CompositeObjective:
    """A weighted blend of objectives; weights are normalized to sum 1.

    Normalization makes weight *vectors* comparable — ``(paper, 2),
    (slo, 2)`` and ``(paper, 0.5), (slo, 0.5)`` are the same objective,
    and a single-part composite scores exactly like the part alone. It
    does **not** normalize the parts' score scales: the paper objective
    returns weighted FPS (can be 1e2..1e6) while the SLO objective
    returns negative milliseconds (-1e1..-1e3), so with naive equal
    weights the larger-scale part dominates the ranking. Choose weights
    that absorb the scale gap for the problem at hand — e.g.
    ``(PaperObjective(), 0.001), (SloObjective(), 1.0)`` values one FPS
    of weighted throughput at one microsecond of p99.
    """

    parts: tuple[tuple[Objective, float], ...]

    name: ClassVar[str] = "composite"

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("a composite objective needs at least one part")
        weights = [weight for _, weight in self.parts]
        if any(weight <= 0 for weight in weights):
            raise ValueError("composite weights must all be positive")
        total = sum(weights)
        object.__setattr__(
            self,
            "parts",
            tuple(
                (objective, weight / total)
                for objective, weight in self.parts
            ),
        )

    @property
    def key(self) -> str:
        inner = "+".join(
            f"{weight:g}*{objective.key}" for objective, weight in self.parts
        )
        return f"composite({inner})"

    def score(
        self, metrics: BranchMetrics, priorities: tuple[float, ...]
    ) -> float:
        return sum(
            weight * objective.score(metrics, priorities)
            for objective, weight in self.parts
        )


def penalized_score(
    objective: Objective,
    metrics: BranchMetrics,
    priorities: tuple[float, ...],
) -> float:
    """Objective score with the hard infeasibility constraint applied.

    A distribution that cannot honour the requested batch sizes is
    strictly worse than any that can, under every objective.
    """
    return (
        objective.score(metrics, priorities)
        - INFEASIBILITY_PENALTY * metrics.shortfall
    )


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------
@runtime_checkable
class MetricsOracle(Protocol):
    """Candidate → :class:`BranchMetrics`.

    ``measure`` receives the frozen problem spec, the raw position, and the
    candidate's Algorithm-2 solutions (every oracle builds on the completed
    configuration; none re-runs the in-branch search).
    """

    name: ClassVar[str]

    @property
    def key(self) -> str:
        """Stable identity string — folded into non-analytical cache keys."""
        ...

    def measure(
        self,
        spec: "EvalSpec",
        position: Sequence[float],
        solutions: Sequence["BranchSolution"],
    ) -> BranchMetrics: ...


@dataclass(frozen=True)
class AnalyticalOracle:
    """Today's Algorithm-2 path: metrics straight from the solutions."""

    name: ClassVar[str] = "analytical"

    @property
    def key(self) -> str:
        return "analytical"

    def measure(
        self,
        spec: "EvalSpec",
        position: Sequence[float],
        solutions: Sequence["BranchSolution"],
    ) -> BranchMetrics:
        return metrics_from_solutions(solutions)


def _candidate_config(solutions: Sequence["BranchSolution"]):
    from repro.arch.config import AcceleratorConfig

    return AcceleratorConfig(branches=tuple(s.config for s in solutions))


@dataclass(frozen=True)
class SimOracle:
    """Cycle-accurate re-measurement via :func:`repro.sim.runner.simulate`.

    Branch FPS comes from simulated steady-state inter-frame spacing, so
    pipeline-fill and DRAM-contention effects the analytical model
    idealizes away show up in the score. Imports are deferred so the DSE
    package stays simulator-free until an oracle actually runs.
    """

    frames: int = 6
    warmup: int = 1

    name: ClassVar[str] = "sim"

    @property
    def key(self) -> str:
        return f"sim(frames={self.frames},warmup={self.warmup})"

    def measure(
        self,
        spec: "EvalSpec",
        position: Sequence[float],
        solutions: Sequence["BranchSolution"],
    ) -> BranchMetrics:
        from repro.sim.runner import simulate

        report = simulate(
            plan=spec.plan,
            config=_candidate_config(solutions),
            quant=spec.quant,
            bandwidth_gbps=spec.budget.bandwidth_gbps,
            frequency_mhz=spec.frequency_mhz,
            frames=self.frames,
            warmup=self.warmup,
        )
        return BranchMetrics(
            fps=report.branch_fps,
            meets_batch=tuple(s.meets_batch_target for s in solutions),
            oracle=self.name,
        )


@dataclass(frozen=True)
class ServingOracle:
    """Replay a canned multi-avatar workload on the candidate design.

    Samples the candidate's :class:`~repro.sim.runner.FrameLatencyProfile`
    from a short cycle-accurate run, deploys ``replicas`` simulated copies,
    and replays the *same* fixed workload every candidate sees (fixed
    avatar fleet, cadence, deadlines, seed — the virtual clock makes the
    replay deterministic). Returns the analytical metrics augmented with
    the replayed p99 latency, deadline-miss rate, and throughput, which is
    what :class:`SloObjective` scores.

    The default fleet (8 avatars x 30 FPS = 240 offered FPS on 2 replicas)
    sits near the saturation point of paper-size codec-avatar designs —
    the regime where tail latency actually differentiates candidates; a
    fleet the pool absorbs trivially scores every candidate the same, and
    a hopeless overload drowns the ranking in queueing delay. Tune the
    fleet to the designs being searched for other model families.

    ``companions`` scores the candidate *as a member of a heterogeneous
    cluster* instead of as a lone pool: each companion is a fixed
    :class:`~repro.serving.cluster.GroupSpec` (e.g. an already-chosen
    big-batch tier) serving next to the candidate's own group, with
    ``router`` splitting the traffic and ``shed`` enabling admission
    control. The replayed SLOs are then the *cluster's* — the search
    optimizes the candidate's marginal contribution to the fleet it will
    actually join, not its solo performance.
    """

    avatars: int = 8
    frames_per_avatar: int = 12
    avatar_fps: float = 30.0
    deadline_ms: float = 50.0
    deadline_tiers: tuple[float, ...] = ()
    jitter_ms: float = 0.0
    replicas: int = 2
    policy: str = "edf"
    batch_window_ms: float = 2.0
    seed: int = 0
    sim_frames: int = 4
    companions: "tuple[GroupSpec, ...]" = ()
    router: str = "deadline"
    shed: bool = False

    name: ClassVar[str] = "serving"

    @staticmethod
    def _companion_key(spec: "GroupSpec") -> str:
        policy = getattr(spec.policy, "name", spec.policy)
        transport = getattr(spec.transport, "name", spec.transport)
        return (
            f"{spec.name}:{spec.profile.first_frame_ms!r}/"
            f"{spec.profile.steady_interval_ms!r}x{spec.replicas}"
            f"@{policy}/{transport}/w{spec.batch_window_ms!r}"
            f"/b{spec.max_batch}"
        )

    @property
    def key(self) -> str:
        cluster = ""
        if self.companions or self.shed:
            inner = ",".join(
                self._companion_key(spec) for spec in self.companions
            )
            cluster = (
                f",companions=[{inner}],router={self.router},"
                f"shed={self.shed}"
            )
        return (
            f"serving(avatars={self.avatars},frames={self.frames_per_avatar},"
            f"fps={self.avatar_fps!r},deadline={self.deadline_ms!r},"
            f"tiers={self.deadline_tiers!r},jitter={self.jitter_ms!r},"
            f"replicas={self.replicas},policy={self.policy},"
            f"window={self.batch_window_ms!r},seed={self.seed},"
            f"sim_frames={self.sim_frames}{cluster})"
        )

    def workload(self):
        """The canned workload every candidate is replayed against.

        Delegates to :func:`repro.serving.workload.canned_workload` (whose
        defaults match this oracle's), so a CLI user who re-replays the
        selected design via ``replay_workload(profile)`` measures the
        same traffic the search scored.
        """
        from repro.serving.workload import canned_workload

        return canned_workload(
            avatars=self.avatars,
            frames_per_avatar=self.frames_per_avatar,
            avatar_fps=self.avatar_fps,
            deadline_ms=self.deadline_ms,
            deadline_tiers=self.deadline_tiers,
            jitter_ms=self.jitter_ms,
            seed=self.seed,
        )

    def measure(
        self,
        spec: "EvalSpec",
        position: Sequence[float],
        solutions: Sequence["BranchSolution"],
    ) -> BranchMetrics:
        from repro.serving.workload import replay_workload
        from repro.sim.runner import frame_latency_profile

        profile = frame_latency_profile(
            plan=spec.plan,
            config=_candidate_config(solutions),
            quant=spec.quant,
            bandwidth_gbps=spec.budget.bandwidth_gbps,
            frequency_mhz=spec.frequency_mhz,
            frames=self.sim_frames,
            warmup=1,
        )
        report = replay_workload(
            profile,
            workload=self.workload(),
            replicas=self.replicas,
            policy=self.policy,
            batch_window_ms=self.batch_window_ms,
            companions=self.companions,
            router=self.router,
            admission=bool(self.shed) or None,
        )
        return replace(
            metrics_from_solutions(solutions, oracle=self.name),
            p99_ms=report.latency_p99_ms,
            deadline_miss_rate=report.miss_rate,
            throughput_fps=report.throughput_fps,
            shed_rate=report.shed_rate if self.shed else None,
            failed_rate=report.failed_rate if report.failed else None,
        )


@dataclass(frozen=True)
class ResidualCalibration:
    """Per-branch multiplicative FPS correction: analytical → measured.

    The fig. 6/7 error machinery measures how far the analytical model
    sits from cycle-accurate (or replayed) truth; this is that residual
    as an applicable object — one scale per branch, fit by least squares
    through the origin over ``(analytical fps, measured fps)`` pairs.
    A scale is multiplicative because the analytical model's error is
    dominated by effects proportional to throughput (pipeline fill, DRAM
    contention), not by a fixed offset. Branches without enough pairs
    keep the identity scale.

    Built by :func:`repro.dse.surrogate.calibration_from_cache` from the
    re-rank entries a staged search leaves in a persistent cache, or by
    hand from any paired measurements.
    """

    scales: tuple[float, ...]
    samples: int = 0
    source: str = "identity"

    @classmethod
    def identity(cls, branches: int) -> "ResidualCalibration":
        return cls(scales=tuple(1.0 for _ in range(branches)))

    def scale(self, branch: int) -> float:
        """The correction for one branch (identity past the known ones)."""
        return self.scales[branch] if branch < len(self.scales) else 1.0

    def apply(self, metrics: BranchMetrics) -> BranchMetrics:
        """Metrics with every branch's FPS pulled toward measured truth."""
        return replace(
            metrics,
            fps=tuple(
                f * self.scale(i) for i, f in enumerate(metrics.fps)
            ),
        )


@dataclass(frozen=True)
class CalibratedOracle:
    """The analytical oracle, corrected by a fitted residual.

    Costs exactly what the analytical oracle costs (nothing beyond the
    Algorithm-2 solutions already in hand) but scores with the accuracy
    the calibration data earned: re-rank measurements accumulated across
    runs pull the cheap oracle toward cycle-accurate truth without ever
    running the expensive oracle again. Usable anywhere a
    :class:`MetricsOracle` is — including as a re-rank oracle, where it
    re-ranks the top-K for free.

    The calibration is folded into :attr:`key`, so cached metrics from
    differently-calibrated oracles never collide.
    """

    calibration: ResidualCalibration

    name: ClassVar[str] = "calibrated"

    @property
    def key(self) -> str:
        scales = ",".join(f"{s:.6g}" for s in self.calibration.scales)
        return f"calibrated(scales=[{scales}])"

    def measure(
        self,
        spec: "EvalSpec",
        position: Sequence[float],
        solutions: Sequence["BranchSolution"],
    ) -> BranchMetrics:
        return self.calibration.apply(
            metrics_from_solutions(solutions, oracle=self.name)
        )


@dataclass(frozen=True)
class OracleStats:
    """Per-stage oracle accounting for one search, reported in DseResult.

    For the analytical stage, ``invocations`` counts Algorithm-2 bucket
    solves and ``cache_hits`` bucket-cache hits; for a re-rank stage, they
    count full ``measure`` calls and re-rank cache hits.
    """

    name: str
    invocations: int
    cache_hits: int


# ---------------------------------------------------------------------------
# factories / resolvers (CLI names → instances)
# ---------------------------------------------------------------------------
#: Objective names accepted by :func:`make_objective` (and ``--objective``).
OBJECTIVES = ("paper", "slo", "composite")

#: Re-rank oracle names accepted by :func:`make_oracle` (and ``--rerank``).
RERANK_ORACLES = ("none", "sim", "serving")


def make_objective(name: str, alpha: float = 0.05) -> Objective:
    """Build an objective by name.

    ``alpha`` feeds the paper objective's variance penalty — and, through
    the fallback proxy, the SLO objective's analytical stage. The default
    ``composite`` weights the paper part at 1e-3 so one weighted FPS
    trades against one microsecond of p99 — roughly balancing the two
    parts' natural scales for paper-size decoders (see
    :class:`CompositeObjective` on why raw equal weights would let the
    FPS term drown the SLO term); build a custom composite to tune the
    trade.
    """
    if name == "paper":
        return PaperObjective(alpha=alpha)
    if name == "slo":
        return SloObjective(fallback_alpha=alpha)
    if name == "composite":
        return CompositeObjective(
            parts=(
                (PaperObjective(alpha=alpha), 0.001),
                (SloObjective(fallback_alpha=alpha), 1.0),
            )
        )
    raise ValueError(
        f"unknown objective {name!r}; pick one of {OBJECTIVES}"
    )


def make_oracle(name: str) -> MetricsOracle | None:
    """Build a re-rank oracle by name (``"none"`` means no re-rank stage)."""
    if name == "none":
        return None
    if name == "analytical":
        return AnalyticalOracle()
    if name == "sim":
        return SimOracle()
    if name == "serving":
        return ServingOracle()
    raise ValueError(
        f"unknown oracle {name!r}; pick one of {RERANK_ORACLES}"
    )


def resolve_objective(
    objective: Objective | str | None, alpha: float = 0.05
) -> Objective:
    """An instance from an instance, a name, or None (paper default)."""
    if objective is None:
        return PaperObjective(alpha=alpha)
    if isinstance(objective, str):
        return make_objective(objective, alpha=alpha)
    return objective


def resolve_oracle(
    oracle: MetricsOracle | str | None,
) -> MetricsOracle | None:
    """An oracle from an instance, a name, or None (no re-rank)."""
    if oracle is None:
        return None
    if isinstance(oracle, str):
        return make_oracle(oracle)
    return oracle


__all__ = [
    "AnalyticalOracle",
    "BranchMetrics",
    "CalibratedOracle",
    "CompositeObjective",
    "INFEASIBILITY_PENALTY",
    "MetricsOracle",
    "OBJECTIVES",
    "Objective",
    "OracleStats",
    "PaperObjective",
    "RERANK_ORACLES",
    "ResidualCalibration",
    "ServingOracle",
    "SimOracle",
    "SloObjective",
    "make_objective",
    "make_oracle",
    "metrics_from_solutions",
    "penalized_score",
    "resolve_objective",
    "resolve_oracle",
]
