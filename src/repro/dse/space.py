"""The multi-branch dynamic design space (paper Table III).

Per branch: a batch size plus one ``(cpf, kpf, h)`` triple per stage. The
space is *dynamic* because its dimensionality follows the network: more
branches or more layers per branch widen it. :func:`get_pf` is Algorithm 2's
``GetPF``: it realizes a scalar parallelism target as a concrete legal
triple, preferring channel parallelism and falling back to H-partitioning
when the channel dimensions saturate — the reason thin high-resolution
layers scale on this architecture but not on DNNBuilder's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import StageConfig
from repro.construction.fusion import FusedStage
from repro.construction.reorg import PipelinePlan


@dataclass(frozen=True)
class Customization:
    """User-facing knobs of Table III: targeted batch sizes, priorities,
    and the optional constraints the paper lists ("maximum parallelism,
    maximum batch size, different branch priority").

    The paper's VR use case renders two HD textures (one per eye) but only
    one shared geometry, hence the ``{1, 2, 2}`` default for the decoder.
    ``max_h = 1`` degrades the architecture to two-level (channel-only)
    parallelism — the ablation that shows why the 3-D parallelism matters.
    """

    batch_sizes: tuple[int, ...]
    priorities: tuple[float, ...]
    max_h: int | None = None
    max_pf: int | None = None

    def __post_init__(self) -> None:
        if len(self.batch_sizes) != len(self.priorities):
            raise ValueError(
                "batch_sizes and priorities must have the same length"
            )
        if any(b < 1 for b in self.batch_sizes):
            raise ValueError(f"batch sizes must be >= 1: {self.batch_sizes}")
        if any(p < 0 for p in self.priorities):
            raise ValueError(f"priorities must be >= 0: {self.priorities}")
        if self.max_h is not None and self.max_h < 1:
            raise ValueError(f"max_h must be >= 1: {self.max_h}")
        if self.max_pf is not None and self.max_pf < 1:
            raise ValueError(f"max_pf must be >= 1: {self.max_pf}")

    @classmethod
    def uniform(
        cls,
        num_branches: int,
        batch_size: int = 1,
        priority: float = 1.0,
        max_h: int | None = None,
        max_pf: int | None = None,
    ) -> "Customization":
        return cls(
            batch_sizes=tuple([batch_size] * num_branches),
            priorities=tuple([priority] * num_branches),
            max_h=max_h,
            max_pf=max_pf,
        )

    def validate_for(self, plan: PipelinePlan) -> None:
        if len(self.batch_sizes) != plan.num_branches:
            raise ValueError(
                f"customization covers {len(self.batch_sizes)} branches, "
                f"plan has {plan.num_branches}"
            )


def _pow2_values(cap: int) -> list[int]:
    """1, 2, 4, ... up to ``cap``, with ``cap`` itself as the final value."""
    values = []
    v = 1
    while v < cap:
        values.append(v)
        v *= 2
    values.append(cap)
    return values


def get_pf(
    stage: FusedStage,
    pf_target: int,
    max_h: int | None = None,
    max_pf: int | None = None,
) -> StageConfig:
    """Realize a scalar parallelism target as a legal ``(cpf, kpf, h)``.

    Doubles the smaller of the two channel factors first (mirroring the
    balanced ``cpf = kpf`` example of Fig. 5 (c)); once both channel
    dimensions are exhausted, adds H-partition parallelism. Factors grow as
    powers of two and snap to the (possibly non-power-of-two) dimension cap.

    ``max_h`` / ``max_pf`` impose the customization's maximum-parallelism
    constraints on top of the natural dimension bounds.
    """
    h_cap = stage.h_max if max_h is None else min(stage.h_max, max_h)
    if max_pf is not None:
        pf_target = min(pf_target, max_pf)
    cpf, kpf, h = 1, 1, 1
    while cpf * kpf * h < pf_target:
        if cpf < stage.cpf_max and (cpf <= kpf or kpf >= stage.kpf_max):
            cpf = min(cpf * 2, stage.cpf_max)
        elif kpf < stage.kpf_max:
            kpf = min(kpf * 2, stage.kpf_max)
        elif h < h_cap:
            h = min(h * 2, h_cap)
        else:
            break
    return StageConfig(cpf=cpf, kpf=kpf, h=h)


@dataclass(frozen=True)
class DesignSpace:
    """Summary of a plan's configurable space (for reports and tests)."""

    plan: PipelinePlan
    max_batch_size: int = 8

    def stage_choices(self, branch: int, index: int) -> dict[str, list[int]]:
        stage = self.plan.branches[branch].stages[index].stage
        return {
            "cpf": _pow2_values(stage.cpf_max),
            "kpf": _pow2_values(stage.kpf_max),
            "h": _pow2_values(stage.h_max),
        }

    def log2_size(self) -> float:
        """log2 of the number of distinct configurations in the space."""
        import math

        total = 0.0
        for pipeline in self.plan.branches:
            total += math.log2(self.max_batch_size)
            for planned in pipeline.stages:
                choices = self.stage_choices(pipeline.index, planned.index)
                total += sum(math.log2(len(v)) for v in choices.values())
        return total
