"""Budget/throughput Pareto exploration.

F-CAD answers "what is the best design for *this* budget"; a system
architect usually asks the dual question — "how much FPGA do I need for
90 FPS?". This module sweeps scaled-down budgets of a device through the
DSE engine and extracts the non-dominated (resource, throughput) frontier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.construction.reorg import PipelinePlan
from repro.devices.budget import ResourceBudget
from repro.dse.engine import DseEngine
from repro.dse.space import Customization
from repro.perf.estimator import AcceleratorPerf
from repro.quant.schemes import QuantScheme
from repro.utils.tables import render_table


@dataclass(frozen=True)
class ParetoPoint:
    """One explored budget and the best design found under it."""

    fraction: float
    budget: ResourceBudget
    perf: AcceleratorPerf

    @property
    def fps(self) -> float:
        return self.perf.fps

    @property
    def dsp(self) -> int:
        return self.perf.total_dsp


@dataclass(frozen=True)
class ParetoFrontier:
    """All explored points plus the non-dominated subset."""

    points: tuple[ParetoPoint, ...]

    def frontier(self) -> list[ParetoPoint]:
        """Points not dominated in (fewer DSPs, more FPS)."""
        chosen: list[ParetoPoint] = []
        for point in sorted(self.points, key=lambda p: (p.dsp, -p.fps)):
            if not chosen or point.fps > chosen[-1].fps:
                chosen.append(point)
        return chosen

    def smallest_meeting(self, fps_target: float) -> ParetoPoint | None:
        """The cheapest explored design reaching ``fps_target``."""
        candidates = [p for p in self.points if p.fps >= fps_target]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.dsp)

    def render(self, fps_target: float | None = None) -> str:
        frontier = {id(p) for p in self.frontier()}
        rows = []
        for point in sorted(self.points, key=lambda p: p.fraction):
            rows.append(
                [
                    f"{100 * point.fraction:.0f}%",
                    point.budget.compute,
                    point.dsp,
                    f"{point.fps:.1f}",
                    f"{100 * point.perf.overall_efficiency:.1f}",
                    "*" if id(point) in frontier else "",
                ]
            )
        table = render_table(
            ["budget", "DSP budget", "DSP used", "FPS", "eff %", "frontier"],
            rows,
            title="Budget/throughput Pareto sweep",
        )
        if fps_target is not None:
            best = self.smallest_meeting(fps_target)
            if best is None:
                table += f"\nno explored budget reaches {fps_target:.0f} FPS"
            else:
                table += (
                    f"\ncheapest design meeting {fps_target:.0f} FPS: "
                    f"{best.dsp} DSPs ({100 * best.fraction:.0f}% budget, "
                    f"{best.fps:.1f} FPS)"
                )
        return table


def explore_budget_frontier(
    plan: PipelinePlan,
    budget: ResourceBudget,
    quant: QuantScheme,
    customization: Customization | None = None,
    fractions: tuple[float, ...] = (0.25, 0.4, 0.55, 0.7, 0.85, 1.0),
    frequency_mhz: float = 200.0,
    iterations: int = 8,
    population: int = 60,
    seed: int | random.Random | None = 0,
) -> ParetoFrontier:
    """Run the DSE at each scaled budget and collect the frontier."""
    if customization is None:
        customization = Customization.uniform(plan.num_branches)
    points = []
    for fraction in fractions:
        engine = DseEngine(
            plan=plan,
            budget=budget.scaled(fraction),
            customization=customization,
            quant=quant,
            frequency_mhz=frequency_mhz,
        )
        result = engine.search(
            iterations=iterations, population=population, seed=seed
        )
        points.append(
            ParetoPoint(
                fraction=fraction,
                budget=budget.scaled(fraction),
                perf=result.best_perf,
            )
        )
    return ParetoFrontier(points=tuple(points))
