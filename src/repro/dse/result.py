"""DSE result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.perf.estimator import AcceleratorPerf
from repro.utils.tables import render_table


@dataclass(frozen=True)
class DseResult:
    """Outcome of one design-space exploration run."""

    best_config: AcceleratorConfig
    best_perf: AcceleratorPerf
    best_fitness: float
    history: tuple[float, ...]
    convergence_iteration: int
    runtime_seconds: float
    evaluations: int  # Algorithm-2 solves actually run (cache misses)
    cache_hits: int
    workers: int = 1

    @property
    def iterations(self) -> int:
        return len(self.history)

    @property
    def cache_lookups(self) -> int:
        return self.evaluations + self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of candidate-branch lookups served from the cache."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def render(self) -> str:
        """Table IV-style per-branch report."""
        rows = []
        for branch in self.best_perf.branches:
            rows.append(
                [
                    f"Br.{branch.index + 1}",
                    branch.batch_size,
                    branch.dsp,
                    branch.bram,
                    f"{branch.fps:.1f}",
                    f"{100 * branch.efficiency:.1f}",
                    branch.bottleneck_stage,
                ]
            )
        rows.append(
            [
                "total",
                "-",
                self.best_perf.total_dsp,
                self.best_perf.total_bram,
                f"{self.best_perf.fps:.1f}",
                f"{100 * self.best_perf.overall_efficiency:.1f}",
                f"DSE {self.runtime_seconds:.1f}s x{self.workers}w "
                f"(converged @ iter {self.convergence_iteration}, "
                f"{100 * self.cache_hit_rate:.0f}% cache hits)",
            ]
        )
        return render_table(
            ["branch", "batch", "DSP", "BRAM", "FPS", "eff %", "note"],
            rows,
            title="F-CAD generated accelerator",
        )
