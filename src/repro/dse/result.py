"""DSE result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.dse.objective import BranchMetrics, OracleStats
from repro.perf.estimator import AcceleratorPerf
from repro.utils.tables import render_table


@dataclass(frozen=True)
class DseResult:
    """Outcome of one design-space exploration run."""

    best_config: AcceleratorConfig
    best_perf: AcceleratorPerf
    best_fitness: float
    history: tuple[float, ...]
    convergence_iteration: int
    runtime_seconds: float
    evaluations: int  # Algorithm-2 solves actually run (cache misses)
    cache_hits: int
    workers: int = 1
    # Algorithm 2's inner memo tables (GetPF realizations and per-stage
    # latency/resource evaluations): how many inner steps were looked up,
    # and how many were served without recomputation.
    stage_hits: int = 0
    stage_lookups: int = 0
    # Where the wall time went: aggregate Algorithm-2 solve time (CPU
    # seconds across workers), parent-side cache bookkeeping, and pool
    # dispatch overhead. Serial searches have zero overhead by definition.
    eval_seconds: float = 0.0
    cache_seconds: float = 0.0
    overhead_seconds: float = 0.0
    # The objective the search maximized (its stable key, parameters
    # included) and the per-stage oracle accounting: stage 1 is always the
    # analytical oracle; a staged search appends its re-rank oracle.
    objective: str = "paper(alpha=0.05)"
    oracle_stats: tuple[OracleStats, ...] = ()
    # Metrics of the selected design, from whichever oracle selected it
    # (analytical for a plain search, the re-rank oracle for a staged one;
    # serving-oracle metrics carry the replayed p99 / deadline-miss SLOs).
    best_metrics: BranchMetrics | None = None

    @property
    def iterations(self) -> int:
        return len(self.history)

    @property
    def rerank_invocations(self) -> int:
        """Expensive-oracle ``measure`` calls the staged search made."""
        return sum(
            s.invocations for s in self.oracle_stats if s.name != "analytical"
        )

    @property
    def cache_lookups(self) -> int:
        """Bucket-level lookups: one per candidate branch."""
        return self.evaluations + self.cache_hits

    @property
    def bucket_hit_rate(self) -> float:
        """Fraction of candidate-branch lookups served by the result cache."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def stage_hit_rate(self) -> float:
        """Fraction of Algorithm-2 inner steps served by the memo tables."""
        return self.stage_hits / self.stage_lookups if self.stage_lookups else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of all evaluation-path lookups served from a cache.

        Counts both levels of the data path: the bucket-level result cache
        (one lookup per candidate branch) and Algorithm 2's stage-level
        memo tables (one lookup per GetPF realization or per-stage
        latency/resource evaluation) — the denominator is every chance the
        search had to skip recomputation.
        """
        lookups = self.cache_lookups + self.stage_lookups
        hits = self.cache_hits + self.stage_hits
        return hits / lookups if lookups else 0.0

    def render(self) -> str:
        """Table IV-style per-branch report."""
        rows = []
        for branch in self.best_perf.branches:
            rows.append(
                [
                    f"Br.{branch.index + 1}",
                    branch.batch_size,
                    branch.dsp,
                    branch.bram,
                    f"{branch.fps:.1f}",
                    f"{100 * branch.efficiency:.1f}",
                    branch.bottleneck_stage,
                ]
            )
        rows.append(
            [
                "total",
                "-",
                self.best_perf.total_dsp,
                self.best_perf.total_bram,
                f"{self.best_perf.fps:.1f}",
                f"{100 * self.best_perf.overall_efficiency:.1f}",
                f"DSE {self.runtime_seconds:.1f}s x{self.workers}w "
                f"(converged @ iter {self.convergence_iteration}, "
                f"{100 * self.cache_hit_rate:.0f}% cache hits)",
            ]
        )
        return render_table(
            ["branch", "batch", "DSP", "BRAM", "FPS", "eff %", "note"],
            rows,
            title="F-CAD generated accelerator",
        )
