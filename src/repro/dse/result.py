"""DSE result container, rendering, and a stable JSON codec.

The codec (:func:`result_to_dict` / :func:`result_from_dict`) exists so
results survive as plain-JSON artifacts — bench archives, fleet
checkpoints, regression fixtures — without pickle's coupling to class
layout. It is forward-tolerant: fields added after a payload was written
(e.g. ``surrogate_stats``) simply take their defaults on load, which the
pinned fixture under ``tests/data/`` holds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.arch.config import AcceleratorConfig, ConfigError
from repro.arch.serialize import config_from_dict, config_to_dict
from repro.dse.objective import BranchMetrics, OracleStats
from repro.dse.surrogate import SurrogateStats
from repro.perf.estimator import AcceleratorPerf, BranchPerf, StagePerf
from repro.perf.resources import StageResources
from repro.utils.tables import render_table

RESULT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DseResult:
    """Outcome of one design-space exploration run."""

    best_config: AcceleratorConfig
    best_perf: AcceleratorPerf
    best_fitness: float
    history: tuple[float, ...]
    convergence_iteration: int
    runtime_seconds: float
    evaluations: int  # Algorithm-2 solves actually run (cache misses)
    cache_hits: int
    workers: int = 1
    # Algorithm 2's inner memo tables (GetPF realizations and per-stage
    # latency/resource evaluations): how many inner steps were looked up,
    # and how many were served without recomputation.
    stage_hits: int = 0
    stage_lookups: int = 0
    # Where the wall time went: aggregate Algorithm-2 solve time (CPU
    # seconds across workers), parent-side cache bookkeeping, and pool
    # dispatch overhead. Serial searches have zero overhead by definition.
    eval_seconds: float = 0.0
    cache_seconds: float = 0.0
    overhead_seconds: float = 0.0
    # The batched Algorithm-2 kernel's phase split of eval_seconds: rung
    # descent over the precomputed ladder, bottleneck-doubling growth, and
    # final branch measurement. Zero on payloads written before the kernel
    # existed.
    ladder_seconds: float = 0.0
    growth_seconds: float = 0.0
    measure_seconds: float = 0.0
    # The objective the search maximized (its stable key, parameters
    # included) and the per-stage oracle accounting: stage 1 is always the
    # analytical oracle; a staged search appends its re-rank oracle.
    objective: str = "paper(alpha=0.05)"
    oracle_stats: tuple[OracleStats, ...] = ()
    # Metrics of the selected design, from whichever oracle selected it
    # (analytical for a plain search, the re-rank oracle for a staged one;
    # serving-oracle metrics carry the replayed p99 / deadline-miss SLOs).
    best_metrics: BranchMetrics | None = None
    # Surrogate-filter accounting (pruned/solved/false-prune counts, model
    # size, fit time). None on surrogate-off searches — and on every
    # payload written before the surrogate existed.
    surrogate_stats: SurrogateStats | None = None

    @property
    def iterations(self) -> int:
        return len(self.history)

    @property
    def rerank_invocations(self) -> int:
        """Expensive-oracle ``measure`` calls the staged search made."""
        return sum(
            s.invocations for s in self.oracle_stats if s.name != "analytical"
        )

    @property
    def cache_lookups(self) -> int:
        """Bucket-level lookups: one per candidate branch."""
        return self.evaluations + self.cache_hits

    @property
    def bucket_hit_rate(self) -> float:
        """Fraction of candidate-branch lookups served by the result cache."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def stage_hit_rate(self) -> float:
        """Fraction of Algorithm-2 inner steps served by the memo tables."""
        return self.stage_hits / self.stage_lookups if self.stage_lookups else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of all evaluation-path lookups served from a cache.

        Counts both levels of the data path: the bucket-level result cache
        (one lookup per candidate branch) and Algorithm 2's stage-level
        memo tables (one lookup per GetPF realization or per-stage
        latency/resource evaluation) — the denominator is every chance the
        search had to skip recomputation.
        """
        lookups = self.cache_lookups + self.stage_lookups
        hits = self.cache_hits + self.stage_hits
        return hits / lookups if lookups else 0.0

    def render(self) -> str:
        """Table IV-style per-branch report."""
        rows = []
        for branch in self.best_perf.branches:
            rows.append(
                [
                    f"Br.{branch.index + 1}",
                    branch.batch_size,
                    branch.dsp,
                    branch.bram,
                    f"{branch.fps:.1f}",
                    f"{100 * branch.efficiency:.1f}",
                    branch.bottleneck_stage,
                ]
            )
        rows.append(
            [
                "total",
                "-",
                self.best_perf.total_dsp,
                self.best_perf.total_bram,
                f"{self.best_perf.fps:.1f}",
                f"{100 * self.best_perf.overall_efficiency:.1f}",
                f"DSE {self.runtime_seconds:.1f}s x{self.workers}w "
                f"(converged @ iter {self.convergence_iteration}, "
                f"{100 * self.cache_hit_rate:.0f}% cache hits)",
            ]
        )
        return render_table(
            ["branch", "batch", "DSP", "BRAM", "FPS", "eff %", "note"],
            rows,
            title="F-CAD generated accelerator",
        )


# ---------------------------------------------------------------------------
# JSON codec
# ---------------------------------------------------------------------------
def _perf_to_dict(perf: AcceleratorPerf) -> dict[str, Any]:
    return {
        "frequency_mhz": perf.frequency_mhz,
        "quant_name": perf.quant_name,
        "branches": [
            {
                "index": b.index,
                "output_name": b.output_name,
                "batch_size": b.batch_size,
                "fps": b.fps,
                "efficiency": b.efficiency,
                "dsp": b.dsp,
                "bram": b.bram,
                "bandwidth_gbps": b.bandwidth_gbps,
                "gops": b.gops,
                "bottleneck_stage": b.bottleneck_stage,
                "stages": [
                    {
                        "name": s.name,
                        "latency_cycles": s.latency_cycles,
                        "resources": {
                            "dsp": s.resources.dsp,
                            "bram": s.resources.bram,
                            "stream_bytes_per_frame": (
                                s.resources.stream_bytes_per_frame
                            ),
                            "weights_resident": s.resources.weights_resident,
                        },
                    }
                    for s in b.stages
                ],
            }
            for b in perf.branches
        ],
    }


def _perf_from_dict(data: dict[str, Any]) -> AcceleratorPerf:
    return AcceleratorPerf(
        frequency_mhz=data["frequency_mhz"],
        quant_name=data["quant_name"],
        branches=tuple(
            BranchPerf(
                index=b["index"],
                output_name=b["output_name"],
                batch_size=b["batch_size"],
                fps=b["fps"],
                efficiency=b["efficiency"],
                dsp=b["dsp"],
                bram=b["bram"],
                bandwidth_gbps=b["bandwidth_gbps"],
                gops=b["gops"],
                bottleneck_stage=b["bottleneck_stage"],
                stages=tuple(
                    StagePerf(
                        name=s["name"],
                        latency_cycles=s["latency_cycles"],
                        resources=StageResources(
                            dsp=s["resources"]["dsp"],
                            bram=s["resources"]["bram"],
                            stream_bytes_per_frame=(
                                s["resources"]["stream_bytes_per_frame"]
                            ),
                            weights_resident=s["resources"]["weights_resident"],
                        ),
                    )
                    for s in b["stages"]
                ),
            )
            for b in data["branches"]
        ),
    )


def _metrics_to_dict(metrics: BranchMetrics) -> dict[str, Any]:
    return {
        "fps": list(metrics.fps),
        "meets_batch": list(metrics.meets_batch),
        "oracle": metrics.oracle,
        "p99_ms": metrics.p99_ms,
        "deadline_miss_rate": metrics.deadline_miss_rate,
        "throughput_fps": metrics.throughput_fps,
        "shed_rate": metrics.shed_rate,
        "failed_rate": metrics.failed_rate,
    }


def _metrics_from_dict(data: dict[str, Any]) -> BranchMetrics:
    return BranchMetrics(
        fps=tuple(data["fps"]),
        meets_batch=tuple(bool(ok) for ok in data["meets_batch"]),
        oracle=data.get("oracle", "analytical"),
        p99_ms=data.get("p99_ms"),
        deadline_miss_rate=data.get("deadline_miss_rate"),
        throughput_fps=data.get("throughput_fps"),
        shed_rate=data.get("shed_rate"),
        failed_rate=data.get("failed_rate"),
    )


def result_to_dict(result: DseResult) -> dict[str, Any]:
    """Serialize a result to plain dicts/lists (stable JSON shape)."""
    payload: dict[str, Any] = {
        "version": RESULT_FORMAT_VERSION,
        "best_config": config_to_dict(result.best_config),
        "best_perf": _perf_to_dict(result.best_perf),
        "best_fitness": result.best_fitness,
        "history": list(result.history),
        "convergence_iteration": result.convergence_iteration,
        "runtime_seconds": result.runtime_seconds,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "workers": result.workers,
        "stage_hits": result.stage_hits,
        "stage_lookups": result.stage_lookups,
        "eval_seconds": result.eval_seconds,
        "cache_seconds": result.cache_seconds,
        "overhead_seconds": result.overhead_seconds,
        "ladder_seconds": result.ladder_seconds,
        "growth_seconds": result.growth_seconds,
        "measure_seconds": result.measure_seconds,
        "objective": result.objective,
        "oracle_stats": [
            {
                "name": s.name,
                "invocations": s.invocations,
                "cache_hits": s.cache_hits,
            }
            for s in result.oracle_stats
        ],
        "best_metrics": (
            _metrics_to_dict(result.best_metrics)
            if result.best_metrics is not None
            else None
        ),
    }
    if result.surrogate_stats is not None:
        payload["surrogate_stats"] = {
            "mode": result.surrogate_stats.mode,
            "pruned_candidates": result.surrogate_stats.pruned_candidates,
            "pruned_buckets": result.surrogate_stats.pruned_buckets,
            "solved_buckets": result.surrogate_stats.solved_buckets,
            "predictions": result.surrogate_stats.predictions,
            "false_prunes": result.surrogate_stats.false_prunes,
            "audited": result.surrogate_stats.audited,
            "model_samples": result.surrogate_stats.model_samples,
            "refits": result.surrogate_stats.refits,
            "fit_seconds": result.surrogate_stats.fit_seconds,
        }
    return payload


def result_from_dict(data: dict[str, Any]) -> DseResult:
    """Rebuild a result serialized by :func:`result_to_dict`.

    Payloads written before a field existed load fine: absent optional
    keys (notably ``surrogate_stats``) fall back to the dataclass
    defaults.
    """
    version = data.get("version", RESULT_FORMAT_VERSION)
    if version != RESULT_FORMAT_VERSION:
        raise ConfigError(f"unsupported result format version {version}")
    try:
        surrogate = None
        raw_surrogate = data.get("surrogate_stats")
        if raw_surrogate is not None:
            surrogate = SurrogateStats(
                mode=raw_surrogate["mode"],
                pruned_candidates=raw_surrogate.get("pruned_candidates", 0),
                pruned_buckets=raw_surrogate.get("pruned_buckets", 0),
                solved_buckets=raw_surrogate.get("solved_buckets", 0),
                predictions=raw_surrogate.get("predictions", 0),
                false_prunes=raw_surrogate.get("false_prunes", 0),
                audited=raw_surrogate.get("audited", 0),
                model_samples=raw_surrogate.get("model_samples", 0),
                refits=raw_surrogate.get("refits", 0),
                fit_seconds=raw_surrogate.get("fit_seconds", 0.0),
            )
        raw_metrics = data.get("best_metrics")
        return DseResult(
            best_config=config_from_dict(data["best_config"]),
            best_perf=_perf_from_dict(data["best_perf"]),
            best_fitness=data["best_fitness"],
            history=tuple(data["history"]),
            convergence_iteration=data["convergence_iteration"],
            runtime_seconds=data["runtime_seconds"],
            evaluations=data["evaluations"],
            cache_hits=data["cache_hits"],
            workers=data.get("workers", 1),
            stage_hits=data.get("stage_hits", 0),
            stage_lookups=data.get("stage_lookups", 0),
            eval_seconds=data.get("eval_seconds", 0.0),
            cache_seconds=data.get("cache_seconds", 0.0),
            overhead_seconds=data.get("overhead_seconds", 0.0),
            ladder_seconds=data.get("ladder_seconds", 0.0),
            growth_seconds=data.get("growth_seconds", 0.0),
            measure_seconds=data.get("measure_seconds", 0.0),
            objective=data.get("objective", "paper(alpha=0.05)"),
            oracle_stats=tuple(
                OracleStats(
                    name=s["name"],
                    invocations=s["invocations"],
                    cache_hits=s["cache_hits"],
                )
                for s in data.get("oracle_stats", [])
            ),
            best_metrics=(
                _metrics_from_dict(raw_metrics)
                if raw_metrics is not None
                else None
            ),
            surrogate_stats=surrogate,
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed result payload: {exc}") from exc


def result_to_json(result: DseResult, indent: int | None = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def result_from_json(text: str) -> DseResult:
    """Rebuild a result from its JSON string form."""
    return result_from_dict(json.loads(text))
