"""Event-heap serving engine: millions of requests in seconds of wall time.

The coroutine path (:mod:`repro.serving.scheduler`) is the reference
semantics: one asyncio task per avatar, a dispatcher task per group, the
virtual clock jumping between timers. This module re-implements the same
serving semantics as a single explicit event loop — a ``heapq`` of timed
events plus a presorted arrival array — with no per-request objects on
the hot path. Same inputs, same SLO report (exactly for the integer
counters; to float round-off for latencies, since the asyncio clock
round-trips milliseconds through seconds), at three to four orders of
magnitude more requests per second of wall time.

What is reused, not reimplemented:

- :class:`~repro.serving.replica.Replica` — warm/cold service times and
  busy-time accounting (:meth:`Replica.service_times`);
- :mod:`repro.serving.router` — the same router instances, fed
  duck-typed group views;
- :class:`~repro.serving.admission.AdmissionControl` — same bounded
  queue + predicted-miss shedding;
- :class:`~repro.serving.slo.ServingReport` — same output record, so
  every report consumer (CLI, JSON, benchmarks) works unchanged.

What is new here: :class:`AutoscalePolicy`, a reactive controller that
adds replicas (after a provisioning delay, starting **cold** — the fill
latency of the first batch on a fresh replica is charged against the
SLOs like any other frame) and drains them when offered load falls.

Every session is a pure function of its inputs: same trace + same specs
→ the same report, bit for bit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from repro.serving.admission import AdmissionControl, resolve_admission
from repro.serving.cluster import GroupSpec
from repro.serving.policies import get_policy
from repro.serving.replica import Replica, ReplicaPool
from repro.serving.router import RoutingPolicy, get_router
from repro.serving.slo import GroupReport, ServingReport
from repro.serving.traffic import RequestTrace, trace_from_workload
from repro.serving.workload import AvatarWorkload

#: Per-avatar p99 latencies are only folded into the report up to this
#: many avatars — a million-avatar session does not want a million-entry
#: tuple in its JSON.
PER_AVATAR_LIMIT = 4096

_FIFO, _EDF, _FAIR = 0, 1, 2
_POLICY_KIND = {"fifo": _FIFO, "edf": _EDF, "fair": _FAIR}

# Dispatcher states (mirror the coroutine dispatcher's await points).
_IDLE, _WINDOW, _WAIT, _RUNNING = 0, 1, 2, 3

# Event kinds, in tie-breaking order after (time, seq).
_EV_WINDOW, _EV_FINISH, _EV_PROVISION, _EV_SCALE = 0, 1, 2, 3


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive per-group replica autoscaling for the event-heap engine.

    Every ``check_interval_ms`` the controller sizes each group from the
    load it *observed* over the last window: ``desired = ceil(offered_fps
    / (replica steady fps * target_utilization))``, clamped to
    ``[min_replicas, max_replicas]`` and rate-limited to ``max_step``
    replicas per decision. Scale-ups take ``warmup_ms`` of provisioning
    before the new replica can serve, and it starts **cold** — its first
    batch pays the full pipeline-fill latency, charged against the SLOs.
    Scale-downs retire idle replicas immediately and drain busy ones at
    their next release; a group never drains below the backlog it still
    has to serve (no scale-down while more than ``max_batch`` frames per
    surviving replica are queued or in flight).
    """

    #: Controller period (ms of session time).
    check_interval_ms: float = 500.0
    #: Provisioning delay (ms) before a scaled-up replica can serve.
    warmup_ms: float = 2000.0
    #: Sizing headroom: desired capacity = offered load / this.
    target_utilization: float = 0.75
    #: Replica count bounds per group.
    min_replicas: int = 1
    max_replicas: int = 64
    #: Most replicas added or drained per decision per group.
    max_step: int = 8

    def __post_init__(self) -> None:
        if self.check_interval_ms <= 0 or self.warmup_ms < 0:
            raise ValueError("autoscale intervals must be positive")
        if not 0 < self.target_utilization <= 1.0:
            raise ValueError("target utilization must be in (0, 1]")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")


class _EngineGroup:
    """One group's live state, duck-typing :class:`ReplicaGroup` for the
    routers and admission control (same properties, same units)."""

    def __init__(self, spec: GroupSpec, index: int, batch_limit: int) -> None:
        policy_name = get_policy(spec.policy).name
        if policy_name not in _POLICY_KIND:
            raise ValueError(
                "the event-heap engine supports the built-in policies "
                f"(fifo, edf, fair), not {policy_name!r}"
            )
        if isinstance(spec.transport, str) and spec.transport != "inprocess":
            raise ValueError(
                "the event-heap engine serves in-process replicas only; "
                f"group {spec.name!r} asked for transport {spec.transport!r}"
            )
        self.spec = spec
        self.name = spec.name
        self.index = index
        self.profile = spec.profile
        self.policy_name = policy_name
        self.policy_kind = _POLICY_KIND[policy_name]
        self.batch_limit = batch_limit
        self.window_ms = spec.batch_window_ms
        self.all_replicas: list[Replica] = []
        self.free: deque[Replica] = deque()
        self.live = 0  # replicas not yet retired (free + busy)
        self.pending_drain = 0  # busy replicas marked for retirement
        self.provisioning = 0  # replicas inside their warmup_ms delay
        self.state = _IDLE
        self.queue_len = 0
        self.inflight = 0
        # Policy-native queues (request indices, not request objects).
        self.fifo_q: deque[int] = deque()
        self.edf_q: list[tuple[float, int]] = []
        self.fair_q: dict[int, deque[int]] = {}
        self.fair_last: dict[int, float] = {}
        # SLO counters (same meaning as SloTracker's).
        self.submitted = 0
        self.shed = 0
        self.batch_sizes: list[int] = []
        # Autoscale bookkeeping.
        self.arrivals_since_check = 0
        self.scale_ups = 0
        self.scale_downs = 0

    def add_replica(self) -> Replica:
        replica = Replica(
            replica_id=len(self.all_replicas),
            latency=self.profile,
            max_batch=self.spec.max_batch,
        )
        self.all_replicas.append(replica)
        self.free.append(replica)
        self.live += 1
        return replica

    def adopt_pool(self, pool: ReplicaPool) -> None:
        """Serve on an existing pool's replicas (single-pool mode)."""
        pool.reset()
        self.all_replicas = list(pool.replicas)
        self.free = deque(pool.replicas)
        self.live = len(pool.replicas)

    # -- the ReplicaGroup interface routers and admission read ----------
    @property
    def replicas(self) -> int:
        """Replicas currently able to serve (live minus draining)."""
        return max(1, self.live - self.pending_drain)

    @property
    def capacity_fps(self) -> float:
        """Steady-state frames/second of the live replicas, warm."""
        return self.replicas * self.profile.steady_fps

    @property
    def backlog_frames(self) -> int:
        """Frames queued plus in flight in this group."""
        return self.queue_len + self.inflight

    def backlog_ms(self) -> float:
        """Estimated ms until a frame admitted now starts service."""
        return (
            self.backlog_frames
            * self.profile.steady_interval_ms
            / self.replicas
        )

    def unloaded_latency_ms(self) -> float:
        """Best-case response latency: batching window plus cold fill."""
        return self.window_ms + self.profile.first_frame_ms

    def estimated_latency_ms(self) -> float:
        """Predicted response latency of a request admitted right now."""
        service = (
            self.profile.first_frame_ms
            if self.backlog_frames == 0
            else self.profile.steady_interval_ms
        )
        return self.backlog_ms() + self.window_ms + service


class _HeapSession:
    """One event-heap serving session over a :class:`RequestTrace`."""

    def __init__(
        self,
        groups: list[_EngineGroup],
        trace: RequestTrace,
        router: RoutingPolicy,
        admission: AdmissionControl | None,
        autoscale: AutoscalePolicy | None,
    ) -> None:
        self.groups = groups
        self.trace = trace
        self.router = router
        self.admission = admission
        self.autoscale = autoscale
        n = len(trace)
        # Hot-path state lives in plain Python lists (faster item access
        # than numpy scalars); finalization vectorizes from them.
        self._arrival: list[float] = trace.arrival_ms.tolist()
        self._avatar: list[int] = trace.avatar_id.tolist()
        self._rel: list[float] = trace.deadline_rel_ms.tolist()
        self._start: list[float] = [0.0] * n
        self._finish: list[float] = [0.0] * n
        self._group_of = bytearray(n) if len(groups) < 256 else [0] * n
        self._shed_flag = bytearray(n)
        self._events: list[tuple] = []
        self._seq = 0
        self._cursor = 0
        self._duration = 0.0
        self._pending = 0  # admitted but unfinished requests
        self._peak = sum(g.live for g in groups)

    # ------------------------------------------------------------------
    def run(self) -> None:
        events = self._events
        arrival = self._arrival
        n = len(arrival)
        autoscale = self.autoscale
        if autoscale is not None:
            self._push(autoscale.check_interval_ms, _EV_SCALE, 0, 0, None)
        while True:
            i = self._cursor
            if i < n and (not events or arrival[i] <= events[0][0]):
                self._cursor = i + 1
                self._on_arrival(i, arrival[i])
                continue
            if not events:
                break
            t, _, kind, gi, a, b = heappop(events)
            if kind == _EV_FINISH:
                self._on_finish(t, self.groups[gi], a, b)
            elif kind == _EV_WINDOW:
                self._on_window(t, self.groups[gi])
            elif kind == _EV_PROVISION:
                self._on_provision(t, self.groups[gi])
            else:
                self._on_scale(t)

    def _push(self, t: float, kind: int, gi: int, a, b) -> None:
        self._seq += 1
        heappush(self._events, (t, self._seq, kind, gi, a, b))

    # ------------------------------------------------------------------
    def _on_arrival(self, i: int, t: float) -> None:
        groups = self.groups
        rel = self._rel[i]
        if len(groups) == 1:
            group = groups[0]
        else:
            group = groups[self.router.route(rel, t, groups)]
        group.arrivals_since_check += 1
        self._group_of[i] = group.index
        if t > self._duration:
            self._duration = t
        if self.admission is not None and not self.admission.admit(
            group, rel
        ):
            group.submitted += 1
            group.shed += 1
            self._shed_flag[i] = 1
            return
        group.submitted += 1
        self._pending += 1
        kind = group.policy_kind
        if kind == _FIFO:
            group.fifo_q.append(i)
        elif kind == _EDF:
            heappush(group.edf_q, (t + rel, i))
        else:
            queue = group.fair_q.get(self._avatar[i])
            if queue is None:
                group.fair_q[self._avatar[i]] = deque((i,))
            else:
                queue.append(i)
        group.queue_len += 1
        if group.state == _IDLE:
            self._drive(group, t)

    def _drive(self, group: _EngineGroup, t: float) -> None:
        """The dispatcher loop top: park, hold the window, or dispatch.

        Mirrors the coroutine dispatcher exactly: the batching window is
        held once per loop iteration (only while the queue is non-empty
        and below the batch limit), then a free replica is awaited, then
        the policy picks the batch.
        """
        while True:
            if group.queue_len == 0:
                group.state = _IDLE
                return
            if (
                group.queue_len < group.batch_limit
                and group.window_ms
            ):
                group.state = _WINDOW
                self._push(t + group.window_ms, _EV_WINDOW, group.index, 0, None)
                return
            if not group.free:
                group.state = _WAIT
                return
            self._dispatch(group, t)

    def _on_window(self, t: float, group: _EngineGroup) -> None:
        # Waking from the batching window goes straight to acquire — the
        # coroutine loop does not re-check the window condition.
        if not group.free:
            group.state = _WAIT
            return
        group.state = _RUNNING
        self._dispatch(group, t)
        self._drive(group, t)

    def _dispatch(self, group: _EngineGroup, t: float) -> None:
        replica = group.free.popleft()
        limit = (
            group.batch_limit
            if group.batch_limit <= replica.max_batch
            else replica.max_batch
        )
        kind = group.policy_kind
        if kind == _FIFO:
            queue = group.fifo_q
            size = min(limit, len(queue))
            batch = [queue.popleft() for _ in range(size)]
        elif kind == _EDF:
            queue = group.edf_q
            size = min(limit, len(queue))
            batch = [heappop(queue)[1] for _ in range(size)]
        else:
            batch = self._select_fair(group, t, limit)
        size = len(batch)
        group.queue_len -= size
        group.inflight += size
        group.batch_sizes.append(size)
        finishes = replica.service_times(t, size)
        start = self._start
        last = size - 1
        gi = group.index
        for j in range(size):
            req = batch[j]
            start[req] = t
            self._push(
                finishes[j], _EV_FINISH, gi, req, replica if j == last else None
            )

    def _select_fair(
        self, group: _EngineGroup, t: float, limit: int
    ) -> list[int]:
        # FairPolicy semantics: avatars ordered by (last served, id),
        # drained round-robin one frame per turn, FIFO within an avatar.
        fair_q = group.fair_q
        last_served = group.fair_last
        neg_inf = float("-inf")
        order = sorted(
            (a for a in fair_q if fair_q[a]),
            key=lambda a: (last_served.get(a, neg_inf), a),
        )
        batch: list[int] = []
        while len(batch) < limit:
            took = False
            for avatar in order:
                queue = fair_q[avatar]
                if queue and len(batch) < limit:
                    batch.append(queue.popleft())
                    took = True
            if not took:
                break
        for req in batch:
            last_served[self._avatar[req]] = t
        return batch

    def _on_finish(
        self, t: float, group: _EngineGroup, req: int, replica
    ) -> None:
        self._finish[req] = t
        group.inflight -= 1
        self._pending -= 1
        if t > self._duration:
            self._duration = t
        if replica is None:
            return
        # Last frame of its batch: the replica frees up (or retires).
        if group.pending_drain > 0:
            group.pending_drain -= 1
            group.live -= 1
            return
        group.free.append(replica)
        if group.state == _WAIT:
            group.state = _RUNNING
            self._dispatch(group, t)
            self._drive(group, t)

    def _on_provision(self, t: float, group: _EngineGroup) -> None:
        group.provisioning -= 1
        group.add_replica()  # lands cold: first batch pays the fill
        peak = sum(g.live for g in self.groups)
        if peak > self._peak:
            self._peak = peak
        if group.state == _WAIT:
            group.state = _RUNNING
            self._dispatch(group, t)
            self._drive(group, t)

    def _on_scale(self, t: float) -> None:
        policy = self.autoscale
        assert policy is not None
        window_s = policy.check_interval_ms / 1000.0
        for group in self.groups:
            offered_fps = group.arrivals_since_check / window_s
            group.arrivals_since_check = 0
            steady_fps = group.profile.steady_fps
            if steady_fps <= 0:
                continue
            desired = math.ceil(
                offered_fps / (steady_fps * policy.target_utilization)
            )
            desired = min(policy.max_replicas, max(policy.min_replicas, desired))
            serving = group.live - group.pending_drain
            current = serving + group.provisioning
            if desired > current:
                step = min(policy.max_step, desired - current)
                group.scale_ups += step
                group.provisioning += step
                for _ in range(step):
                    self._push(
                        t + policy.warmup_ms, _EV_PROVISION, group.index, 0, None
                    )
            elif desired < serving:
                # Never drain below the backlog still to be served.
                if group.backlog_frames > desired * group.spec.max_batch:
                    continue
                step = min(policy.max_step, serving - desired)
                group.scale_downs += step
                while step and group.free:
                    group.free.pop()
                    group.live -= 1
                    step -= 1
                group.pending_drain += step
        if self._cursor < len(self._arrival) or self._pending > 0:
            self._push(t + policy.check_interval_ms, _EV_SCALE, 0, 0, None)

    # ------------------------------------------------------------------
    def finalize(
        self, policy: str, router: str, groups_in_report: bool
    ) -> ServingReport:
        trace = self.trace
        n = len(trace)
        arrival = trace.arrival_ms
        rel = trace.deadline_rel_ms
        finish = np.asarray(self._finish)
        start = np.asarray(self._start)
        shed = np.frombuffer(bytes(self._shed_flag), dtype=np.uint8).astype(bool)
        if isinstance(self._group_of, bytearray):
            group_of = np.frombuffer(
                bytes(self._group_of), dtype=np.uint8
            ).astype(np.int64)
        else:
            group_of = np.asarray(self._group_of, dtype=np.int64)
        served = ~shed
        duration_ms = self._duration

        latencies = finish[served] - arrival[served]
        queue_waits = start[served] - arrival[served]
        missed = (finish > arrival + rel) & served

        ordered = np.sort(latencies)
        per_avatar: tuple[float, ...] = ()
        if trace.avatars <= PER_AVATAR_LIMIT and len(latencies):
            avatars_served = trace.avatar_id[served]
            by_avatar = np.lexsort((latencies, avatars_served))
            ids, counts = np.unique(avatars_served, return_counts=True)
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            ranks = offsets + np.maximum(
                1, np.ceil(0.99 * counts).astype(np.int64)
            ) - 1
            per_avatar = tuple(latencies[by_avatar][ranks].tolist())

        group_reports: tuple[GroupReport, ...] = ()
        utilization: tuple[float, ...] = ()
        scale_ups = sum(g.scale_ups for g in self.groups)
        scale_downs = sum(g.scale_downs for g in self.groups)
        for group in self.groups:
            utilization += tuple(
                r.utilization(duration_ms) for r in group.all_replicas
            )
        if groups_in_report:
            group_reports = tuple(
                self._group_report(g, served, missed, group_of, duration_ms)
                for g in self.groups
            )

        all_batches = [s for g in self.groups for s in g.batch_sizes]
        completed = int(np.count_nonzero(served))
        return ServingReport(
            policy=policy,
            avatars=trace.avatars,
            replicas=len(utilization),
            max_batch=max(g.batch_limit for g in self.groups),
            batch_window_ms=self.groups[0].window_ms,
            submitted=sum(g.submitted for g in self.groups),
            completed=completed,
            duration_ms=duration_ms,
            latency_p50_ms=_rank(ordered, 50),
            latency_p95_ms=_rank(ordered, 95),
            latency_p99_ms=_rank(ordered, 99),
            latency_mean_ms=float(latencies.mean()) if len(latencies) else 0.0,
            latency_max_ms=float(ordered[-1]) if len(ordered) else 0.0,
            queue_mean_ms=(
                float(queue_waits.mean()) if len(queue_waits) else 0.0
            ),
            deadline_ms=trace.deadline_ms,
            deadline_tiers_ms=trace.deadline_tiers,
            deadline_misses=int(np.count_nonzero(missed)),
            batches=len(all_batches),
            mean_batch_size=(
                sum(all_batches) / len(all_batches) if all_batches else 0.0
            ),
            replica_utilization=utilization,
            per_avatar_p99_ms=per_avatar,
            shed=sum(g.shed for g in self.groups),
            router=router,
            groups=group_reports,
            engine="heap",
            shape=trace.shape,
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            peak_replicas=self._peak,
        )

    def _group_report(
        self,
        group: _EngineGroup,
        served: np.ndarray,
        missed: np.ndarray,
        group_of: np.ndarray,
        duration_ms: float,
    ) -> GroupReport:
        mine = group_of == group.index
        mine_served = mine & served
        finish = np.asarray(self._finish)
        latencies = np.sort(
            finish[mine_served] - self.trace.arrival_ms[mine_served]
        )
        utilizations = [
            r.utilization(duration_ms) for r in group.all_replicas
        ]
        completed = int(np.count_nonzero(mine_served))
        return GroupReport(
            name=group.name,
            policy=group.policy_name,
            transport="inprocess",
            replicas=len(group.all_replicas),
            max_batch=group.batch_limit,
            batch_window_ms=group.window_ms,
            submitted=group.submitted - group.shed,
            shed=group.shed,
            completed=completed,
            deadline_misses=int(np.count_nonzero(missed & mine)),
            latency_p50_ms=_rank(latencies, 50),
            latency_p99_ms=_rank(latencies, 99),
            mean_batch_size=(
                sum(group.batch_sizes) / len(group.batch_sizes)
                if group.batch_sizes
                else 0.0
            ),
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            scale_ups=group.scale_ups,
            scale_downs=group.scale_downs,
        )


def _rank(ordered: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of a presorted array (same definition as
    :func:`repro.serving.slo.percentile`)."""
    if not len(ordered):
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------
def serve_trace(
    groups: "ReplicaPool | GroupSpec | Sequence[GroupSpec]",
    trace: RequestTrace | AvatarWorkload,
    *,
    router: str | RoutingPolicy = "round-robin",
    admission: AdmissionControl | bool | None = None,
    autoscale: AutoscalePolicy | None = None,
    policy: str = "fifo",
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
) -> ServingReport:
    """Serve a request trace on the event-heap engine.

    The heap-engine counterpart of
    :func:`~repro.serving.workload.serve_workload` (pass a
    :class:`~repro.serving.replica.ReplicaPool`; ``policy`` /
    ``batch_window_ms`` / ``max_batch`` apply) and of
    :func:`~repro.serving.cluster.serve_cluster` (pass
    :class:`~repro.serving.cluster.GroupSpec` s; ``router`` /
    ``admission`` / ``autoscale`` apply). ``trace`` is a
    :class:`~repro.serving.traffic.RequestTrace` or an
    :class:`~repro.serving.workload.AvatarWorkload` (expanded via
    :func:`~repro.serving.traffic.trace_from_workload`).

    Deterministic: same arguments, same report, bit for bit. Reports
    carry ``engine="heap"`` plus the autoscale counters; all other
    fields mean exactly what they mean on the coroutine path.
    """
    if isinstance(trace, AvatarWorkload):
        trace = trace_from_workload(trace)
    admission_ctl = resolve_admission(admission)
    routing = get_router(router)

    if isinstance(groups, ReplicaPool):
        if admission_ctl is not None or autoscale is not None:
            raise ValueError(
                "admission control and autoscaling need replica groups; "
                "pass GroupSpec(s) instead of a bare ReplicaPool"
            )
        pool = groups
        limit = (
            min(max_batch, pool.max_batch)
            if max_batch is not None
            else pool.max_batch
        )
        if limit < 1:
            raise ValueError("max batch must be >= 1")
        spec = GroupSpec(
            name="pool",
            profile=pool.profile,
            replicas=len(pool),
            policy=policy,
            batch_window_ms=batch_window_ms,
            max_batch=pool.max_batch,
        )
        group = _EngineGroup(spec, 0, batch_limit=limit)
        group.adopt_pool(pool)
        session = _HeapSession([group], trace, routing, None, None)
        session.run()
        return session.finalize(
            policy=group.policy_name, router="", groups_in_report=False
        )

    specs = [groups] if isinstance(groups, GroupSpec) else list(groups)
    if not specs:
        raise ValueError("a cluster needs at least one replica group")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"replica group names must be unique: {names}")
    engine_groups = []
    for index, spec in enumerate(specs):
        group = _EngineGroup(spec, index, batch_limit=spec.max_batch)
        start_replicas = spec.replicas
        if autoscale is not None:
            start_replicas = min(
                max(start_replicas, autoscale.min_replicas),
                autoscale.max_replicas,
            )
        for _ in range(start_replicas):
            group.add_replica()
        engine_groups.append(group)
    session = _HeapSession(
        engine_groups, trace, routing, admission_ctl, autoscale
    )
    session.run()
    report_policy = (
        engine_groups[0].policy_name
        if len(engine_groups) == 1
        else f"cluster({routing.name})"
    )
    return session.finalize(
        policy=report_policy, router=routing.name, groups_in_report=True
    )


__all__ = ["AutoscalePolicy", "PER_AVATAR_LIMIT", "serve_trace"]
