"""Event-heap serving engine: millions of requests in seconds of wall time.

The coroutine path (:mod:`repro.serving.scheduler`) is the reference
semantics: one asyncio task per avatar, a dispatcher task per group, the
virtual clock jumping between timers. This module re-implements the same
serving semantics as a single explicit event loop — a ``heapq`` of timed
events plus a presorted arrival array — with no per-request objects on
the hot path. Same inputs, same SLO report (exactly for the integer
counters; to float round-off for latencies, since the asyncio clock
round-trips milliseconds through seconds), at three to four orders of
magnitude more requests per second of wall time.

What is reused, not reimplemented:

- :class:`~repro.serving.replica.Replica` — warm/cold service times and
  busy-time accounting (:meth:`Replica.service_times`);
- :mod:`repro.serving.router` — the same router instances, fed
  duck-typed group views;
- :class:`~repro.serving.admission.AdmissionControl` — same bounded
  queue + predicted-miss shedding;
- :class:`~repro.serving.slo.ServingReport` — same output record, so
  every report consumer (CLI, JSON, benchmarks) works unchanged.

What is new here: :class:`AutoscalePolicy`, a reactive controller that
adds replicas (after a provisioning delay, starting **cold** — the fill
latency of the first batch on a fresh replica is charged against the
SLOs like any other frame) and drains them when offered load falls.

Faults and recovery mirror the coroutine path event for event: a
:class:`~repro.serving.chaos.ChaosPlan` injects the same deterministic
replica faults at dispatch time, a crashed batch fails at its would-be
finish (an ``_EV_FAIL`` event at the detection latency), frames
re-enqueue within their retry budget keeping their original arrival and
deadline, the per-group :class:`~repro.serving.chaos.CircuitBreaker`
trips and diverts arrivals through the shared
:func:`~repro.serving.router.failover_route`, and dead replicas
provision cold replacements through the same ``_EV_PROVISION`` events
autoscaling uses. The equivalence guarantee extends to faulty runs:
same trace + same chaos plan → the same counters on both engines.

Every session is a pure function of its inputs: same trace + same specs
→ the same report, bit for bit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from repro.serving.admission import AdmissionControl, resolve_admission
from repro.serving.chaos import ChaosPlan, CircuitBreaker, RecoveryPolicy
from repro.serving.cluster import GroupSpec
from repro.serving.policies import get_policy
from repro.serving.replica import Replica, ReplicaPool, health_summary
from repro.serving.router import RoutingPolicy, failover_route, get_router
from repro.serving.slo import GroupReport, ServingReport
from repro.serving.traffic import RequestTrace, trace_from_workload
from repro.serving.workload import AvatarWorkload

#: Per-avatar p99 latencies are only folded into the report up to this
#: many avatars — a million-avatar session does not want a million-entry
#: tuple in its JSON.
PER_AVATAR_LIMIT = 4096

_FIFO, _EDF, _FAIR = 0, 1, 2
_POLICY_KIND = {"fifo": _FIFO, "edf": _EDF, "fair": _FAIR}

# Dispatcher states (mirror the coroutine dispatcher's await points).
_IDLE, _WINDOW, _WAIT, _RUNNING = 0, 1, 2, 3

# Event kinds. Ordering at equal times is by ``seq`` (creation order),
# which dominates ``kind`` in the tuple comparison — the kind is a tag,
# not a tie-breaker.
_EV_WINDOW, _EV_FINISH, _EV_PROVISION, _EV_SCALE = 0, 1, 2, 3
_EV_FAIL, _EV_RELEASE = 4, 5

# ``_EV_RELEASE`` payload flags (the ``a`` slot).
_REL_RESTORE = 1  # stall over: degraded health returns to "up"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive per-group replica autoscaling for the event-heap engine.

    Every ``check_interval_ms`` the controller sizes each group from the
    load it *observed* over the last window: ``desired = ceil(offered_fps
    / (replica steady fps * target_utilization))``, clamped to
    ``[min_replicas, max_replicas]`` and rate-limited to ``max_step``
    replicas per decision. Scale-ups take ``warmup_ms`` of provisioning
    before the new replica can serve, and it starts **cold** — its first
    batch pays the full pipeline-fill latency, charged against the SLOs.
    Scale-downs retire idle replicas immediately and drain busy ones at
    their next release; a group never drains below the backlog it still
    has to serve (no scale-down while more than ``max_batch`` frames per
    surviving replica are queued or in flight).
    """

    #: Controller period (ms of session time).
    check_interval_ms: float = 500.0
    #: Provisioning delay (ms) before a scaled-up replica can serve.
    warmup_ms: float = 2000.0
    #: Sizing headroom: desired capacity = offered load / this.
    target_utilization: float = 0.75
    #: Replica count bounds per group.
    min_replicas: int = 1
    max_replicas: int = 64
    #: Most replicas added or drained per decision per group.
    max_step: int = 8

    def __post_init__(self) -> None:
        if self.check_interval_ms <= 0 or self.warmup_ms < 0:
            raise ValueError("autoscale intervals must be positive")
        if not 0 < self.target_utilization <= 1.0:
            raise ValueError("target utilization must be in (0, 1]")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.max_step < 1:
            raise ValueError("max_step must be >= 1")


class _EngineGroup:
    """One group's live state, duck-typing :class:`ReplicaGroup` for the
    routers and admission control (same properties, same units)."""

    def __init__(
        self,
        spec: GroupSpec,
        index: int,
        batch_limit: int,
        recovery: RecoveryPolicy | None = None,
        chaos_states: "dict | None" = None,
    ) -> None:
        policy_name = get_policy(spec.policy).name
        if policy_name not in _POLICY_KIND:
            raise ValueError(
                "the event-heap engine supports the built-in policies "
                f"(fifo, edf, fair), not {policy_name!r}"
            )
        if isinstance(spec.transport, str) and spec.transport != "inprocess":
            raise ValueError(
                "the event-heap engine serves in-process replicas only; "
                f"group {spec.name!r} asked for transport {spec.transport!r}"
            )
        self.spec = spec
        self.name = spec.name
        self.index = index
        self.profile = spec.profile
        self.policy_name = policy_name
        self.policy_kind = _POLICY_KIND[policy_name]
        self.batch_limit = batch_limit
        self.window_ms = spec.batch_window_ms
        self.all_replicas: list[Replica] = []
        self.free: deque[Replica] = deque()
        self.live = 0  # replicas not yet retired (free + busy)
        self.pending_drain = 0  # busy replicas marked for retirement
        self.provisioning = 0  # replicas inside their warmup_ms delay
        self.state = _IDLE
        self.queue_len = 0
        self.inflight = 0
        # Policy-native queues (request indices, not request objects).
        self.fifo_q: deque[int] = deque()
        self.edf_q: list[tuple[float, int]] = []
        self.fair_q: dict[int, deque[int]] = {}
        self.fair_last: dict[int, float] = {}
        # SLO counters (same meaning as SloTracker's).
        self.submitted = 0
        self.shed = 0
        self.batch_sizes: list[int] = []
        # Autoscale bookkeeping.
        self.arrivals_since_check = 0
        self.scale_ups = 0
        self.scale_downs = 0
        # Faults and recovery (mirrors BatchScheduler's per-group state).
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.breaker = CircuitBreaker(self.recovery.breaker_threshold)
        self.chaos_states = chaos_states or None
        self.exhausted = False
        self.replacing = 0  # replacement replicas inside their delay
        self.failed = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.replicas_lost = 0
        self.replicas_replaced = 0
        self.degraded_time_ms = 0.0

    def add_replica(self) -> Replica:
        replica = Replica(
            replica_id=len(self.all_replicas),
            latency=self.profile,
            max_batch=self.spec.max_batch,
        )
        self.all_replicas.append(replica)
        self.free.append(replica)
        self.live += 1
        return replica

    def adopt_pool(self, pool: ReplicaPool) -> None:
        """Serve on an existing pool's replicas (single-pool mode)."""
        pool.reset()
        self.all_replicas = list(pool.replicas)
        self.free = deque(pool.replicas)
        self.live = len(pool.replicas)

    # -- the ReplicaGroup interface routers and admission read ----------
    @property
    def replicas(self) -> int:
        """Replicas currently able to serve (live minus draining)."""
        return max(1, self.live - self.pending_drain)

    @property
    def capacity_fps(self) -> float:
        """Steady-state frames/second of the live replicas, warm."""
        return self.replicas * self.profile.steady_fps

    @property
    def backlog_frames(self) -> int:
        """Frames queued plus in flight in this group."""
        return self.queue_len + self.inflight

    def backlog_ms(self) -> float:
        """Estimated ms until a frame admitted now starts service."""
        return (
            self.backlog_frames
            * self.profile.steady_interval_ms
            / self.replicas
        )

    def unloaded_latency_ms(self) -> float:
        """Best-case response latency: batching window plus cold fill."""
        return self.window_ms + self.profile.first_frame_ms

    def estimated_latency_ms(self) -> float:
        """Predicted response latency of a request admitted right now."""
        service = (
            self.profile.first_frame_ms
            if self.backlog_frames == 0
            else self.profile.steady_interval_ms
        )
        return self.backlog_ms() + self.window_ms + service


class _HeapSession:
    """One event-heap serving session over a :class:`RequestTrace`."""

    def __init__(
        self,
        groups: list[_EngineGroup],
        trace: RequestTrace,
        router: RoutingPolicy,
        admission: AdmissionControl | None,
        autoscale: AutoscalePolicy | None,
        recovery: RecoveryPolicy | None = None,
        chaos_active: bool = False,
        cluster: bool = True,
    ) -> None:
        self.groups = groups
        self.trace = trace
        self.router = router
        self.admission = admission
        self.autoscale = autoscale
        self._recovery = recovery if recovery is not None else RecoveryPolicy()
        self._chaos_active = chaos_active
        self._cluster = cluster
        self._attempts: dict[int, int] = {}
        if chaos_active:
            # Retried frames keep their original arrival, so insertion
            # order no longer matches FIFO order: the fifo queue becomes
            # a heap keyed (arrival_ms, index) — exactly the coroutine
            # FifoPolicy's sort key.
            for group in groups:
                group.fifo_q = []  # type: ignore[assignment]
        n = len(trace)
        # Hot-path state lives in plain Python lists (faster item access
        # than numpy scalars); finalization vectorizes from them.
        self._arrival: list[float] = trace.arrival_ms.tolist()
        self._avatar: list[int] = trace.avatar_id.tolist()
        self._rel: list[float] = trace.deadline_rel_ms.tolist()
        self._start: list[float] = [0.0] * n
        self._finish: list[float] = [0.0] * n
        self._group_of = bytearray(n) if len(groups) < 256 else [0] * n
        self._shed_flag = bytearray(n)
        self._failed_flag = bytearray(n)
        self._events: list[tuple] = []
        self._seq = 0
        self._cursor = 0
        self._duration = 0.0
        self._pending = 0  # admitted but unfinished requests
        self._peak = sum(g.live for g in groups)

    # ------------------------------------------------------------------
    def run(self) -> None:
        events = self._events
        arrival = self._arrival
        n = len(arrival)
        autoscale = self.autoscale
        if autoscale is not None:
            self._push(autoscale.check_interval_ms, _EV_SCALE, 0, 0, None)
        while True:
            i = self._cursor
            if i < n and (not events or arrival[i] <= events[0][0]):
                self._cursor = i + 1
                self._on_arrival(i, arrival[i])
                continue
            if not events:
                break
            t, _, kind, gi, a, b = heappop(events)
            if kind == _EV_FINISH:
                self._on_finish(t, self.groups[gi], a, b)
            elif kind == _EV_WINDOW:
                self._on_window(t, self.groups[gi])
            elif kind == _EV_PROVISION:
                self._on_provision(t, self.groups[gi], a)
            elif kind == _EV_SCALE:
                self._on_scale(t)
            elif kind == _EV_FAIL:
                self._on_fail(t, self.groups[gi], a, b)
            else:
                self._on_release(t, self.groups[gi], a, b)

    def _push(self, t: float, kind: int, gi: int, a, b) -> None:
        self._seq += 1
        heappush(self._events, (t, self._seq, kind, gi, a, b))

    # ------------------------------------------------------------------
    def _on_arrival(self, i: int, t: float) -> None:
        groups = self.groups
        rel = self._rel[i]
        if len(groups) == 1:
            preferred = 0
        else:
            preferred = self.router.route(rel, t, groups)
        group = groups[preferred]
        if self._chaos_active:
            # Failure-aware front door, same decisions as the coroutine
            # cluster: divert from tripped/exhausted groups via the
            # shared failover_route; no group available → the frame
            # fails at the door, charged to the preferred group.
            if self._cluster:
                index = failover_route(
                    preferred,
                    rel,
                    groups,
                    [
                        not g.breaker.open and not g.exhausted
                        for g in groups
                    ],
                )
                if index is None:
                    self._fail_at_door(i, t, group)
                    return
                if index != preferred:
                    groups[index].failovers += 1
                group = groups[index]
            elif group.exhausted:
                self._fail_at_door(i, t, group)
                return
        group.arrivals_since_check += 1
        self._group_of[i] = group.index
        if t > self._duration:
            self._duration = t
        if self.admission is not None and not self.admission.admit(
            group, rel
        ):
            group.submitted += 1
            group.shed += 1
            self._shed_flag[i] = 1
            return
        group.submitted += 1
        self._pending += 1
        kind = group.policy_kind
        if kind == _FIFO:
            if self._chaos_active:
                heappush(group.fifo_q, (t, i))
            else:
                group.fifo_q.append(i)
        elif kind == _EDF:
            heappush(group.edf_q, (t + rel, i))
        else:
            queue = group.fair_q.get(self._avatar[i])
            if queue is None:
                group.fair_q[self._avatar[i]] = deque((i,))
            else:
                queue.append(i)
        group.queue_len += 1
        if group.state == _IDLE:
            self._drive(group, t)

    def _drive(self, group: _EngineGroup, t: float) -> None:
        """The dispatcher loop top: park, hold the window, or dispatch.

        Mirrors the coroutine dispatcher exactly: the batching window is
        held once per loop iteration (only while the queue is non-empty
        and below the batch limit), then a free replica is awaited, then
        the policy picks the batch.
        """
        while True:
            if group.queue_len == 0:
                group.state = _IDLE
                return
            if (
                group.queue_len < group.batch_limit
                and group.window_ms
            ):
                group.state = _WINDOW
                self._push(t + group.window_ms, _EV_WINDOW, group.index, 0, None)
                return
            if not group.free:
                group.state = _WAIT
                return
            self._dispatch(group, t)

    def _on_window(self, t: float, group: _EngineGroup) -> None:
        # Waking from the batching window goes straight to acquire — the
        # coroutine loop does not re-check the window condition.
        if group.exhausted or not group.queue_len:
            # Exhaustion drained the queue mid-window (every replica
            # dead, no replacement coming): the dispatcher retires.
            group.state = _IDLE
            return
        if not group.free:
            group.state = _WAIT
            return
        group.state = _RUNNING
        self._dispatch(group, t)
        self._drive(group, t)

    def _dispatch(self, group: _EngineGroup, t: float) -> None:
        replica = group.free.popleft()
        limit = (
            group.batch_limit
            if group.batch_limit <= replica.max_batch
            else replica.max_batch
        )
        kind = group.policy_kind
        if kind == _FIFO:
            queue = group.fifo_q
            size = min(limit, len(queue))
            if self._chaos_active:
                batch = [heappop(queue)[1] for _ in range(size)]
            else:
                batch = [queue.popleft() for _ in range(size)]
        elif kind == _EDF:
            queue = group.edf_q
            size = min(limit, len(queue))
            batch = [heappop(queue)[1] for _ in range(size)]
        else:
            batch = self._select_fair(group, t, limit)
        size = len(batch)
        group.queue_len -= size
        group.inflight += size
        gi = group.index
        outcome = None
        if group.chaos_states is not None:
            state = group.chaos_states.get(replica.replica_id)
            if state is not None:
                outcome = state.on_dispatch(t)
                replica.latency_factor = outcome.latency_factor
                if outcome.crashed:
                    # The batch fails at its would-be finish time — the
                    # failure-*detection* latency. The replica serves
                    # nothing: no batch counted, no busy time charged.
                    detect = replica.preview_service(t, size)[-1]
                    self._push(detect, _EV_FAIL, gi, batch, replica)
                    return
                if outcome.latency_factor != 1.0 and replica.health == "up":
                    replica.health = "degraded"
        group.batch_sizes.append(size)
        finishes = replica.service_times(t, size)
        if outcome is not None and outcome.latency_factor != 1.0:
            group.degraded_time_ms += finishes[-1] - t
        stall_ms = outcome.stall_ms if outcome is not None else 0.0
        hedge_replica = None
        hedge_finishes = None
        if self._recovery.hedge:
            arrival = self._arrival
            rel = self._rel
            if any(
                finishes[j] > arrival[batch[j]] + rel[batch[j]]
                for j in range(size)
            ) and group.free:
                hedge_replica = group.free.popleft()
                hedge_finishes = self._dispatch_hedge(
                    group, hedge_replica, t, size
                )
                if hedge_finishes is None:
                    hedge_replica = None  # the hedge itself crashed
        eff = finishes
        if hedge_finishes is not None:
            eff = list(finishes)
            for j in range(size):
                if hedge_finishes[j] < eff[j]:
                    eff[j] = hedge_finishes[j]
                    group.hedge_wins += 1
        start = self._start
        last = size - 1
        plain = hedge_replica is None and not stall_ms
        for j in range(size):
            req = batch[j]
            start[req] = t
            self._push(
                eff[j],
                _EV_FINISH,
                gi,
                req,
                replica if plain and j == last else None,
            )
        if plain:
            return
        # Completion decoupled from release: the breaker's success lands
        # when the batch's last frame resolves, then each replica returns
        # to rotation at its own time (stalled primary late, hedge at its
        # own finish) — same order as the coroutine's sorted releases.
        if self._chaos_active:
            self._push(eff[last], _EV_RELEASE, gi, 0, None)
        if stall_ms:
            group.degraded_time_ms += stall_ms
            if replica.health == "up":
                replica.health = "degraded"
        releases = [
            (finishes[last] + stall_ms, _REL_RESTORE if stall_ms else 0, replica)
        ]
        if hedge_replica is not None:
            releases.append((hedge_finishes[last], 0, hedge_replica))
        releases.sort(key=lambda item: item[0])
        for at, flags, freed in releases:
            self._push(at, _EV_RELEASE, gi, flags, freed)

    def _dispatch_hedge(
        self, group: _EngineGroup, hedge: Replica, t: float, size: int
    ) -> tuple[float, ...] | None:
        """Duplicate a batch onto ``hedge``; ``None`` if the hedge died.

        Mirrors the coroutine's hedge: a crashed hedge costs only the
        replica (detected at its would-be finish), no retry, no breaker
        failure; a served hedge is charged its full occupancy.
        """
        if group.chaos_states is not None:
            state = group.chaos_states.get(hedge.replica_id)
            if state is not None:
                outcome = state.on_dispatch(t)
                hedge.latency_factor = outcome.latency_factor
                if outcome.crashed:
                    detect = hedge.preview_service(t, size)[-1]
                    self._push(detect, _EV_FAIL, group.index, None, hedge)
                    return None
                if outcome.latency_factor != 1.0 and hedge.health == "up":
                    hedge.health = "degraded"
        group.hedges += 1
        return hedge.service_times(t, size)

    def _select_fair(
        self, group: _EngineGroup, t: float, limit: int
    ) -> list[int]:
        # FairPolicy semantics: avatars ordered by (last served, id),
        # drained round-robin one frame per turn, FIFO within an avatar.
        fair_q = group.fair_q
        last_served = group.fair_last
        neg_inf = float("-inf")
        order = sorted(
            (a for a in fair_q if fair_q[a]),
            key=lambda a: (last_served.get(a, neg_inf), a),
        )
        batch: list[int] = []
        while len(batch) < limit:
            took = False
            for avatar in order:
                queue = fair_q[avatar]
                if queue and len(batch) < limit:
                    batch.append(queue.popleft())
                    took = True
            if not took:
                break
        for req in batch:
            last_served[self._avatar[req]] = t
        return batch

    def _on_finish(
        self, t: float, group: _EngineGroup, req: int, replica
    ) -> None:
        self._finish[req] = t
        group.inflight -= 1
        self._pending -= 1
        if self._chaos_active:
            self._attempts.pop(req, None)
        if t > self._duration:
            self._duration = t
        if replica is None:
            return
        # Last frame of its batch: the batch succeeded (the breaker
        # closes), and the replica frees up (or retires).
        if self._chaos_active:
            group.breaker.record_success()
        if group.pending_drain > 0:
            group.pending_drain -= 1
            group.live -= 1
            return
        group.free.append(replica)
        if group.state == _WAIT:
            group.state = _RUNNING
            self._dispatch(group, t)
            self._drive(group, t)

    def _on_provision(self, t: float, group: _EngineGroup, marker) -> None:
        group.provisioning -= 1
        group.add_replica()  # lands cold: first batch pays the fill
        if marker:
            # A chaos replacement, not an autoscale decision: same
            # provisioning machinery, its own counter — and it extends
            # the session like the coroutine's replacement task does.
            group.replacing -= 1
            group.replicas_replaced += 1
            if t > self._duration:
                self._duration = t
        peak = sum(g.live for g in self.groups)
        if peak > self._peak:
            self._peak = peak
        if group.state == _WAIT:
            group.state = _RUNNING
            self._dispatch(group, t)
            self._drive(group, t)

    # -- failure detection, retry, release -----------------------------
    def _on_fail(self, t: float, group: _EngineGroup, batch, replica) -> None:
        """A dispatched batch failed at ``t`` and took its replica.

        ``batch`` is ``None`` for a crashed *hedge* — the primary still
        serves every frame, so the loss costs only the replica (no
        breaker failure, no retries).
        """
        if t > self._duration:
            self._duration = t
        if replica.health != "dead":
            replica.health = "dead"
            group.live -= 1
            group.replicas_lost += 1
            if group.recovery.replace_after_ms is not None:
                group.replacing += 1
                group.provisioning += 1
                self._push(
                    t + group.recovery.replace_after_ms,
                    _EV_PROVISION,
                    group.index,
                    1,
                    None,
                )
        if batch is None:
            self._check_exhausted(group)
            return
        group.breaker.record_failure()
        size = len(batch)
        group.inflight -= size
        recoverable = group.live > 0 or group.replacing > 0
        max_retries = group.recovery.max_retries
        for req in batch:
            attempts = self._attempts.get(req, 0) + 1
            if recoverable and attempts <= max_retries:
                self._attempts[req] = attempts
                group.retries += 1
                self._requeue(group, req)
            else:
                self._fail_request(group, req)
        self._check_exhausted(group)
        if group.queue_len and recoverable and group.state == _IDLE:
            self._drive(group, t)

    def _on_release(self, t: float, group: _EngineGroup, flags, replica) -> None:
        if t > self._duration:
            self._duration = t
        if replica is None:
            # Marker event: the batch's last frame just resolved.
            group.breaker.record_success()
            return
        if (
            flags & _REL_RESTORE
            and replica.health == "degraded"
            and replica.latency_factor == 1.0
        ):
            replica.health = "up"
        if replica.health == "dead":
            return  # a dead replica never rejoins the rotation
        if group.pending_drain > 0:
            group.pending_drain -= 1
            group.live -= 1
            return
        group.free.append(replica)
        if group.state == _WAIT:
            group.state = _RUNNING
            self._dispatch(group, t)
            self._drive(group, t)

    def _fail_at_door(self, i: int, t: float, group: _EngineGroup) -> None:
        """No group can take this arrival: it fails, charged to ``group``."""
        group.arrivals_since_check += 1
        self._group_of[i] = group.index
        if t > self._duration:
            self._duration = t
        group.submitted += 1
        group.failed += 1
        self._failed_flag[i] = 1

    def _requeue(self, group: _EngineGroup, req: int) -> None:
        """Re-enqueue a failed frame with its original arrival/deadline."""
        kind = group.policy_kind
        if kind == _FIFO:
            heappush(group.fifo_q, (self._arrival[req], req))
        elif kind == _EDF:
            heappush(
                group.edf_q, (self._arrival[req] + self._rel[req], req)
            )
        else:
            avatar = self._avatar[req]
            queue = group.fair_q.get(avatar)
            if queue is None:
                group.fair_q[avatar] = deque((req,))
            else:
                # FIFO-within-avatar order is (arrival, index); the
                # retried frame is older than anything still queued, but
                # insert at its exact sorted slot to be safe.
                key = (self._arrival[req], req)
                pos = 0
                for existing in queue:
                    if (self._arrival[existing], existing) < key:
                        pos += 1
                    else:
                        break
                queue.insert(pos, req)
        group.queue_len += 1

    def _fail_request(self, group: _EngineGroup, req: int) -> None:
        self._attempts.pop(req, None)
        group.failed += 1
        self._failed_flag[req] = 1
        self._pending -= 1

    def _check_exhausted(self, group: _EngineGroup) -> None:
        if group.exhausted or group.live > 0 or group.replacing > 0:
            return
        group.exhausted = True
        kind = group.policy_kind
        if kind == _FIFO:
            drained = [item[1] for item in group.fifo_q]
            group.fifo_q.clear()
        elif kind == _EDF:
            drained = [item[1] for item in group.edf_q]
            group.edf_q.clear()
        else:
            drained = [
                req for queue in group.fair_q.values() for req in queue
            ]
            group.fair_q.clear()
        for req in drained:
            self._fail_request(group, req)
        group.queue_len = 0

    def _on_scale(self, t: float) -> None:
        policy = self.autoscale
        assert policy is not None
        window_s = policy.check_interval_ms / 1000.0
        for group in self.groups:
            offered_fps = group.arrivals_since_check / window_s
            group.arrivals_since_check = 0
            steady_fps = group.profile.steady_fps
            if steady_fps <= 0:
                continue
            desired = math.ceil(
                offered_fps / (steady_fps * policy.target_utilization)
            )
            desired = min(policy.max_replicas, max(policy.min_replicas, desired))
            serving = group.live - group.pending_drain
            current = serving + group.provisioning
            if desired > current:
                step = min(policy.max_step, desired - current)
                group.scale_ups += step
                group.provisioning += step
                for _ in range(step):
                    self._push(
                        t + policy.warmup_ms, _EV_PROVISION, group.index, 0, None
                    )
            elif desired < serving:
                # Never drain below the backlog still to be served.
                if group.backlog_frames > desired * group.spec.max_batch:
                    continue
                step = min(policy.max_step, serving - desired)
                group.scale_downs += step
                while step and group.free:
                    group.free.pop()
                    group.live -= 1
                    step -= 1
                group.pending_drain += step
        if self._cursor < len(self._arrival) or self._pending > 0:
            self._push(t + policy.check_interval_ms, _EV_SCALE, 0, 0, None)

    # ------------------------------------------------------------------
    def finalize(
        self, policy: str, router: str, groups_in_report: bool
    ) -> ServingReport:
        trace = self.trace
        n = len(trace)
        arrival = trace.arrival_ms
        rel = trace.deadline_rel_ms
        finish = np.asarray(self._finish)
        start = np.asarray(self._start)
        shed = np.frombuffer(bytes(self._shed_flag), dtype=np.uint8).astype(bool)
        failed = np.frombuffer(
            bytes(self._failed_flag), dtype=np.uint8
        ).astype(bool)
        if isinstance(self._group_of, bytearray):
            group_of = np.frombuffer(
                bytes(self._group_of), dtype=np.uint8
            ).astype(np.int64)
        else:
            group_of = np.asarray(self._group_of, dtype=np.int64)
        served = ~shed & ~failed
        duration_ms = self._duration

        latencies = finish[served] - arrival[served]
        queue_waits = start[served] - arrival[served]
        missed = (finish > arrival + rel) & served

        ordered = np.sort(latencies)
        per_avatar: tuple[float, ...] = ()
        if trace.avatars <= PER_AVATAR_LIMIT and len(latencies):
            avatars_served = trace.avatar_id[served]
            by_avatar = np.lexsort((latencies, avatars_served))
            ids, counts = np.unique(avatars_served, return_counts=True)
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            ranks = offsets + np.maximum(
                1, np.ceil(0.99 * counts).astype(np.int64)
            ) - 1
            per_avatar = tuple(latencies[by_avatar][ranks].tolist())

        group_reports: tuple[GroupReport, ...] = ()
        utilization: tuple[float, ...] = ()
        scale_ups = sum(g.scale_ups for g in self.groups)
        scale_downs = sum(g.scale_downs for g in self.groups)
        for group in self.groups:
            utilization += tuple(
                r.utilization(duration_ms) for r in group.all_replicas
            )
        if groups_in_report:
            group_reports = tuple(
                self._group_report(g, served, missed, group_of, duration_ms)
                for g in self.groups
            )

        all_batches = [s for g in self.groups for s in g.batch_sizes]
        completed = int(np.count_nonzero(served))
        return ServingReport(
            policy=policy,
            avatars=trace.avatars,
            replicas=len(utilization),
            max_batch=max(g.batch_limit for g in self.groups),
            batch_window_ms=self.groups[0].window_ms,
            submitted=sum(g.submitted for g in self.groups),
            completed=completed,
            duration_ms=duration_ms,
            latency_p50_ms=_rank(ordered, 50),
            latency_p95_ms=_rank(ordered, 95),
            latency_p99_ms=_rank(ordered, 99),
            latency_mean_ms=float(latencies.mean()) if len(latencies) else 0.0,
            latency_max_ms=float(ordered[-1]) if len(ordered) else 0.0,
            queue_mean_ms=(
                float(queue_waits.mean()) if len(queue_waits) else 0.0
            ),
            deadline_ms=trace.deadline_ms,
            deadline_tiers_ms=trace.deadline_tiers,
            deadline_misses=int(np.count_nonzero(missed)),
            batches=len(all_batches),
            mean_batch_size=(
                sum(all_batches) / len(all_batches) if all_batches else 0.0
            ),
            replica_utilization=utilization,
            per_avatar_p99_ms=per_avatar,
            shed=sum(g.shed for g in self.groups),
            router=router,
            groups=group_reports,
            engine="heap",
            shape=trace.shape,
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            peak_replicas=self._peak,
            failed=sum(g.failed for g in self.groups),
            retries=sum(g.retries for g in self.groups),
            hedges=sum(g.hedges for g in self.groups),
            hedge_wins=sum(g.hedge_wins for g in self.groups),
            failovers=sum(g.failovers for g in self.groups),
            replicas_lost=sum(g.replicas_lost for g in self.groups),
            replicas_replaced=sum(g.replicas_replaced for g in self.groups),
            degraded_time_ms=sum(g.degraded_time_ms for g in self.groups),
        )

    def _group_report(
        self,
        group: _EngineGroup,
        served: np.ndarray,
        missed: np.ndarray,
        group_of: np.ndarray,
        duration_ms: float,
    ) -> GroupReport:
        mine = group_of == group.index
        mine_served = mine & served
        finish = np.asarray(self._finish)
        latencies = np.sort(
            finish[mine_served] - self.trace.arrival_ms[mine_served]
        )
        utilizations = [
            r.utilization(duration_ms) for r in group.all_replicas
        ]
        completed = int(np.count_nonzero(mine_served))
        return GroupReport(
            name=group.name,
            policy=group.policy_name,
            transport="inprocess",
            replicas=len(group.all_replicas),
            max_batch=group.batch_limit,
            batch_window_ms=group.window_ms,
            submitted=group.submitted - group.shed,
            shed=group.shed,
            completed=completed,
            deadline_misses=int(np.count_nonzero(missed & mine)),
            latency_p50_ms=_rank(latencies, 50),
            latency_p99_ms=_rank(latencies, 99),
            mean_batch_size=(
                sum(group.batch_sizes) / len(group.batch_sizes)
                if group.batch_sizes
                else 0.0
            ),
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            scale_ups=group.scale_ups,
            scale_downs=group.scale_downs,
            health=health_summary(group.all_replicas),
            failed=group.failed,
            retries=group.retries,
            hedges=group.hedges,
            hedge_wins=group.hedge_wins,
            failovers=group.failovers,
            replicas_lost=group.replicas_lost,
            replicas_replaced=group.replicas_replaced,
            degraded_time_ms=group.degraded_time_ms,
        )


def _rank(ordered: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of a presorted array (same definition as
    :func:`repro.serving.slo.percentile`)."""
    if not len(ordered):
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------
def serve_trace(
    groups: "ReplicaPool | GroupSpec | Sequence[GroupSpec]",
    trace: RequestTrace | AvatarWorkload,
    *,
    router: str | RoutingPolicy = "round-robin",
    admission: AdmissionControl | bool | None = None,
    autoscale: AutoscalePolicy | None = None,
    policy: str = "fifo",
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    chaos: ChaosPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> ServingReport:
    """Serve a request trace on the event-heap engine.

    The heap-engine counterpart of
    :func:`~repro.serving.workload.serve_workload` (pass a
    :class:`~repro.serving.replica.ReplicaPool`; ``policy`` /
    ``batch_window_ms`` / ``max_batch`` apply) and of
    :func:`~repro.serving.cluster.serve_cluster` (pass
    :class:`~repro.serving.cluster.GroupSpec` s; ``router`` /
    ``admission`` / ``autoscale`` apply). ``trace`` is a
    :class:`~repro.serving.traffic.RequestTrace` or an
    :class:`~repro.serving.workload.AvatarWorkload` (expanded via
    :func:`~repro.serving.traffic.trace_from_workload`).

    Deterministic: same arguments, same report, bit for bit. Reports
    carry ``engine="heap"`` plus the autoscale counters; all other
    fields mean exactly what they mean on the coroutine path. A
    ``chaos`` plan and ``recovery`` policy inject the same faults and
    run the same recovery stack as the coroutine engines — counters
    exactly equal, latencies to clock round-off.
    """
    if isinstance(trace, AvatarWorkload):
        trace = trace_from_workload(trace)
    admission_ctl = resolve_admission(admission)
    routing = get_router(router)
    chaos_active = bool(chaos)

    if isinstance(groups, ReplicaPool):
        if admission_ctl is not None or autoscale is not None:
            raise ValueError(
                "admission control and autoscaling need replica groups; "
                "pass GroupSpec(s) instead of a bare ReplicaPool"
            )
        pool = groups
        limit = (
            min(max_batch, pool.max_batch)
            if max_batch is not None
            else pool.max_batch
        )
        if limit < 1:
            raise ValueError("max batch must be >= 1")
        spec = GroupSpec(
            name="pool",
            profile=pool.profile,
            replicas=len(pool),
            policy=policy,
            batch_window_ms=batch_window_ms,
            max_batch=pool.max_batch,
        )
        # The single-pool coroutine path runs its scheduler with the
        # empty group name — chaos clauses resolve against "".
        group = _EngineGroup(
            spec,
            0,
            batch_limit=limit,
            recovery=recovery,
            chaos_states=chaos.states("") if chaos else None,
        )
        group.adopt_pool(pool)
        session = _HeapSession(
            [group],
            trace,
            routing,
            None,
            None,
            recovery=recovery,
            chaos_active=chaos_active,
            cluster=False,
        )
        session.run()
        return session.finalize(
            policy=group.policy_name, router="", groups_in_report=False
        )

    specs = [groups] if isinstance(groups, GroupSpec) else list(groups)
    if not specs:
        raise ValueError("a cluster needs at least one replica group")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"replica group names must be unique: {names}")
    engine_groups = []
    for index, spec in enumerate(specs):
        group = _EngineGroup(
            spec,
            index,
            batch_limit=spec.max_batch,
            recovery=recovery,
            chaos_states=chaos.states(spec.name) if chaos else None,
        )
        start_replicas = spec.replicas
        if autoscale is not None:
            start_replicas = min(
                max(start_replicas, autoscale.min_replicas),
                autoscale.max_replicas,
            )
        for _ in range(start_replicas):
            group.add_replica()
        engine_groups.append(group)
    session = _HeapSession(
        engine_groups,
        trace,
        routing,
        admission_ctl,
        autoscale,
        recovery=recovery,
        chaos_active=chaos_active,
    )
    session.run()
    report_policy = (
        engine_groups[0].policy_name
        if len(engine_groups) == 1
        else f"cluster({routing.name})"
    )
    return session.finalize(
        policy=report_policy, router=routing.name, groups_in_report=True
    )


__all__ = ["AutoscalePolicy", "PER_AVATAR_LIMIT", "serve_trace"]
