"""Pluggable batch-selection policies for the decode scheduler.

A policy answers one question: given the current queue, which (at most
``limit``) requests ride the next batch onto a freed replica? All three
policies are deterministic — ties always break on ``request_id``, which
the scheduler assigns in submission order.

- ``fifo``     — arrival order; the baseline every serving system starts at.
- ``edf``      — earliest absolute deadline first; classic real-time
  scheduling, minimizes deadline misses when the system is saturated.
- ``fair``     — per-avatar round-robin (least-recently-served avatar
  first), so one chatty avatar cannot starve the rest of a session.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.serving.request import DecodeRequest


class SchedulingPolicy:
    """Base: pick the next batch out of the waiting queue.

    ``select`` may return an empty batch to decline dispatching right now
    (e.g. a custom policy holding out for a co-arriving frame); the
    scheduler then parks until the queue changes instead of re-polling in
    a busy loop. A policy must not decline *forever* while the queue is
    non-empty — requests it never selects are never served.
    """

    name = "base"

    def select(
        self, queue: Sequence[DecodeRequest], now_ms: float, limit: int
    ) -> list[DecodeRequest]:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Serve in arrival order."""

    name = "fifo"

    def select(
        self, queue: Sequence[DecodeRequest], now_ms: float, limit: int
    ) -> list[DecodeRequest]:
        ordered = sorted(queue, key=lambda r: (r.arrival_ms, r.request_id))
        return ordered[:limit]


class EdfPolicy(SchedulingPolicy):
    """Earliest (absolute) deadline first."""

    name = "edf"

    def select(
        self, queue: Sequence[DecodeRequest], now_ms: float, limit: int
    ) -> list[DecodeRequest]:
        ordered = sorted(queue, key=lambda r: (r.deadline_ms, r.request_id))
        return ordered[:limit]


class FairPolicy(SchedulingPolicy):
    """Per-avatar fairness: least-recently-served avatar goes first.

    Requests are grouped by avatar (FIFO within an avatar) and avatars are
    drained round-robin, ordered by when they last got a frame served.
    """

    name = "fair"

    def __init__(self) -> None:
        self._last_served: dict[int, float] = {}

    def select(
        self, queue: Sequence[DecodeRequest], now_ms: float, limit: int
    ) -> list[DecodeRequest]:
        per_avatar: dict[int, list[DecodeRequest]] = {}
        for request in sorted(
            queue, key=lambda r: (r.arrival_ms, r.request_id)
        ):
            per_avatar.setdefault(request.avatar_id, []).append(request)
        order = sorted(
            per_avatar,
            key=lambda avatar: (
                self._last_served.get(avatar, float("-inf")),
                avatar,
            ),
        )
        batch: list[DecodeRequest] = []
        while len(batch) < limit and any(per_avatar.values()):
            for avatar in order:
                waiting = per_avatar[avatar]
                if waiting and len(batch) < limit:
                    batch.append(waiting.pop(0))
        for request in batch:
            self._last_served[request.avatar_id] = now_ms
        return batch


_POLICIES: dict[str, Callable[[], SchedulingPolicy]] = {
    "fifo": FifoPolicy,
    "edf": EdfPolicy,
    "fair": FairPolicy,
}


def get_policy(name: str | SchedulingPolicy) -> SchedulingPolicy:
    """Look a policy up by name (or pass an instance through)."""
    if isinstance(name, SchedulingPolicy):
        return name
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(
            f"unknown scheduling policy {name!r}; known policies: {known}"
        ) from None


def list_policies() -> list[str]:
    """Names of the built-in scheduling policies."""
    return sorted(_POLICIES)


__all__ = [
    "EdfPolicy",
    "FairPolicy",
    "FifoPolicy",
    "SchedulingPolicy",
    "get_policy",
    "list_policies",
]
