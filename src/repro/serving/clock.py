"""Session clocks: real asyncio time or a deterministic virtual clock.

The scheduler, replicas, and workload generators only ever read time via
``loop.time()`` and wait via ``asyncio.sleep`` — so the *same* async code
runs in two modes:

- **virtual** (default for tests and benchmarks): the event loop's clock
  is simulated. Whenever no callback is ready, the loop jumps straight to
  the next scheduled timer instead of blocking. A session serving
  thousands of frames executes in milliseconds of wall time, and — since
  timer order, ready-queue order, and every latency number are pure
  functions of the inputs — two runs at the same seed are bit-identical.
- **real**: a stock event loop; sleeps block for actual wall time. Useful
  for demos that interleave with real I/O.

``now_ms``/``sleep_ms`` express the serving layer's millisecond units on
top of asyncio's second-based clock.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine, TypeVar

T = TypeVar("T")

#: Loop-time seconds per serving-layer millisecond.
_MS = 1e-3


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """An asyncio event loop running on simulated time.

    ``time()`` returns virtual seconds starting at 0. Each loop iteration
    that finds no ready callback advances the virtual clock to the next
    scheduled timer, so awaiting ``asyncio.sleep(3600)`` costs nothing.
    Callback execution order is exactly the stock loop's (FIFO ready
    queue, timer heap), which makes runs reproducible.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:  # noqa: D401 - asyncio internal hook
        # Nothing runnable now: jump to the earliest timer (cancelled
        # timers are at worst an early stop; they never overshoot a live
        # one because the heap is ordered by deadline).
        if not self._ready and self._scheduled:
            when = self._scheduled[0].when()
            if when > self._virtual_now:
                self._virtual_now = when
        super()._run_once()


def run_session(
    coro: Coroutine[Any, Any, T], real_time: bool = False
) -> T:
    """Run a serving session coroutine to completion.

    ``real_time=False`` (the default) executes on a fresh
    :class:`VirtualClockEventLoop`; ``real_time=True`` uses
    ``asyncio.run`` on a stock loop.
    """
    if real_time:
        return asyncio.run(coro)
    loop = VirtualClockEventLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        # Mirror asyncio.run's teardown: a session that *raised* (e.g. a
        # replica transport failing the batch) leaves avatar clients and
        # the dispatch loop pending. Cancel and drain them before closing
        # so nothing is destroyed mid-await.
        try:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


#: Attribute stashed on the running loop by :func:`anchor_session_clock`.
_EPOCH_ATTR = "_fcad_session_epoch_s"


def anchor_session_clock() -> None:
    """Make ``now_ms`` count from this moment on the running loop.

    A virtual loop already starts at 0, but a stock (real-time) loop's
    ``time()`` is an arbitrary monotonic epoch — without anchoring, every
    session timestamp (arrivals, deadlines, duration) would be monotonic
    milliseconds since boot instead of milliseconds into the session.
    """
    loop = asyncio.get_running_loop()
    setattr(loop, _EPOCH_ATTR, loop.time())


def now_ms() -> float:
    """Milliseconds of session time (must be called from a task)."""
    loop = asyncio.get_running_loop()
    epoch = getattr(loop, _EPOCH_ATTR, 0.0)
    return (loop.time() - epoch) / _MS


async def sleep_ms(duration_ms: float) -> None:
    """Sleep for ``duration_ms`` session milliseconds."""
    await asyncio.sleep(max(0.0, duration_ms) * _MS)


async def sleep_until_ms(deadline_ms: float) -> None:
    """Sleep until the session clock reaches ``deadline_ms``."""
    await sleep_ms(deadline_ms - now_ms())


__all__ = [
    "VirtualClockEventLoop",
    "anchor_session_clock",
    "now_ms",
    "run_session",
    "sleep_ms",
    "sleep_until_ms",
]
