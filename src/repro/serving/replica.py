"""Simulated accelerator replicas and the pool the scheduler draws from.

A *replica* is one deployed instance of a DSE-selected accelerator design.
It does not re-run the cycle-accurate simulator per request; instead it is
driven by a :class:`~repro.sim.runner.FrameLatencyProfile` sampled once
from the simulator, which splits a frame's cost into fill-phase and
steady-state accounting:

- a batch landing on an **idle** replica pays the cold first-frame latency
  (weight streams plus pipeline fill) before frames start leaving at the
  steady interval;
- a batch landing while the pipeline is still **warm** (within one steady
  interval of the previous batch draining) streams every frame at the
  steady interval.

:class:`ReplicaPool` owns N identical replicas and hands free ones to the
scheduler; :func:`pool_from_result` builds a pool straight from an
:class:`~repro.fcad.flow.FcadResult` (``FCad.run`` → serve).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.fcad.flow import FcadResult
from repro.sim.runner import FrameLatencyProfile


@dataclass
class Replica:
    """One simulated accelerator instance, tracked in session time."""

    replica_id: int
    latency: FrameLatencyProfile
    max_batch: int = 8
    busy_ms: float = 0.0
    frames_served: int = 0
    batches_served: int = 0
    last_finish_ms: float = field(default=float("-inf"))

    def service_times(self, start_ms: float, batch: int) -> tuple[float, ...]:
        """Completion time of each frame of a batch started at ``start_ms``.

        Also advances the replica's accounting (busy time, warm window).
        """
        if not 1 <= batch <= self.max_batch:
            raise ValueError(
                f"batch of {batch} outside replica capacity 1..{self.max_batch}"
            )
        warm = (
            start_ms - self.last_finish_ms <= self.latency.steady_interval_ms
        )
        finishes = self.latency.batch_finish_ms(start_ms, batch, warm=warm)
        self.record_service(start_ms, finishes)
        return finishes

    def record_service(
        self, start_ms: float, finishes: tuple[float, ...]
    ) -> None:
        """Fold one served batch into the accounting.

        Split out of :meth:`service_times` so a remote transport — where
        the authoritative service-time computation happens in another
        process (see :mod:`repro.serving.transport`) — can mirror the
        busy-time/warm-window bookkeeping on the local proxy replica.
        """
        self.busy_ms += finishes[-1] - start_ms
        self.frames_served += len(finishes)
        self.batches_served += 1
        self.last_finish_ms = finishes[-1]

    def utilization(self, elapsed_ms: float) -> float:
        """Busy-time fraction (0..1) of ``elapsed_ms`` of session time."""
        return self.busy_ms / elapsed_ms if elapsed_ms > 0 else 0.0


class ReplicaPool:
    """N identical replicas plus the free-list the scheduler blocks on."""

    def __init__(
        self,
        latency: FrameLatencyProfile,
        replicas: int = 1,
        max_batch: int = 8,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.profile = latency
        self.replicas = [
            Replica(replica_id=i, latency=latency, max_batch=max_batch)
            for i in range(replicas)
        ]
        self.max_batch = max_batch
        self._free: asyncio.Queue[Replica] | None = None

    @property
    def capacity_fps(self) -> float:
        """Steady-state decode rate of the whole pool, all replicas warm."""
        return len(self.replicas) * self.profile.steady_fps

    def __len__(self) -> int:
        return len(self.replicas)

    def open(self) -> None:
        """Start a fresh serving session on the running event loop.

        Clears any previous session's accounting (busy time, warm
        windows) so a pool can be reused for back-to-back policy
        comparisons without state leaking between sessions.
        """
        self.reset()
        self._free = asyncio.Queue()
        # Deterministic order: replica 0 serves the first batch.
        for replica in self.replicas:
            self._free.put_nowait(replica)

    async def acquire(self) -> Replica:
        assert self._free is not None, "pool not opened inside a session"
        return await self._free.get()

    def release(self, replica: Replica) -> None:
        assert self._free is not None
        self._free.put_nowait(replica)

    def utilizations(self, elapsed_ms: float) -> tuple[float, ...]:
        return tuple(r.utilization(elapsed_ms) for r in self.replicas)

    def reset(self) -> None:
        """Forget all serving state (``open`` calls this per session)."""
        for replica in self.replicas:
            replica.busy_ms = 0.0
            replica.frames_served = 0
            replica.batches_served = 0
            replica.last_finish_ms = float("-inf")
        self._free = None


def design_max_batch(config) -> int:
    """Default replica batch capacity for a design configuration.

    The design was optimized for specific per-branch batch sizes; let a
    replica absorb a few frames beyond that before the scheduler must
    spill to the next one. The single home of this heuristic — both
    :func:`pool_from_result` and
    :meth:`~repro.fcad.flow.FcadResult.serving_group` size from it, so a
    single pool and a cluster group of the same design always agree.
    """
    return max(8, 2 * max(b.batch_size for b in config.branches))


def pool_from_result(
    result: FcadResult,
    replicas: int = 1,
    max_batch: int | None = None,
    sim_frames: int = 8,
    warmup: int = 2,
    profile: FrameLatencyProfile | None = None,
) -> ReplicaPool:
    """Deploy ``replicas`` copies of a DSE-selected design as a pool.

    The per-frame latency model is sampled from one cycle-accurate run of
    the design (see :meth:`FcadResult.frame_latency_profile`); pass a
    ``profile`` you already sampled to skip the simulation.
    """
    if profile is None:
        profile = result.frame_latency_profile(frames=sim_frames, warmup=warmup)
    if max_batch is None:
        max_batch = design_max_batch(result.dse.best_config)
    return ReplicaPool(latency=profile, replicas=replicas, max_batch=max_batch)


__all__ = ["Replica", "ReplicaPool", "design_max_batch", "pool_from_result"]
