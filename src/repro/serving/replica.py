"""Simulated accelerator replicas and the pool the scheduler draws from.

A *replica* is one deployed instance of a DSE-selected accelerator design.
It does not re-run the cycle-accurate simulator per request; instead it is
driven by a :class:`~repro.sim.runner.FrameLatencyProfile` sampled once
from the simulator, which splits a frame's cost into fill-phase and
steady-state accounting:

- a batch landing on an **idle** replica pays the cold first-frame latency
  (weight streams plus pipeline fill) before frames start leaving at the
  steady interval;
- a batch landing while the pipeline is still **warm** (within one steady
  interval of the previous batch draining) streams every frame at the
  steady interval.

:class:`ReplicaPool` owns N identical replicas and hands free ones to the
scheduler; :func:`pool_from_result` builds a pool straight from an
:class:`~repro.fcad.flow.FcadResult` (``FCad.run`` → serve).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.fcad.flow import FcadResult
from repro.sim.runner import FrameLatencyProfile


@dataclass
class Replica:
    """One simulated accelerator instance, tracked in session time."""

    replica_id: int
    latency: FrameLatencyProfile
    max_batch: int = 8
    busy_ms: float = 0.0
    frames_served: int = 0
    batches_served: int = 0
    last_finish_ms: float = field(default=float("-inf"))
    #: ``up`` / ``degraded`` / ``dead`` — chaos faults and transport
    #: failures move this; a dead replica never returns to the free list.
    health: str = "up"
    #: Chaos degradation: service times stretch by this factor (1.0 =
    #: healthy). Set by the scheduler/engine from the session's chaos
    #: state before each dispatch.
    latency_factor: float = 1.0

    def preview_service(
        self, start_ms: float, batch: int
    ) -> tuple[float, ...]:
        """Would-be completion times, *without* advancing the accounting.

        The failure path uses this: a batch dispatched to a crashing
        replica fails at its would-be finish time (the detection
        latency), but the replica serves nothing and must not be charged
        busy time or a warm window.
        """
        if not 1 <= batch <= self.max_batch:
            raise ValueError(
                f"batch of {batch} outside replica capacity 1..{self.max_batch}"
            )
        warm = (
            start_ms - self.last_finish_ms <= self.latency.steady_interval_ms
        )
        finishes = self.latency.batch_finish_ms(start_ms, batch, warm=warm)
        if self.latency_factor != 1.0:
            finishes = tuple(
                start_ms + (finish - start_ms) * self.latency_factor
                for finish in finishes
            )
        return finishes

    def service_times(self, start_ms: float, batch: int) -> tuple[float, ...]:
        """Completion time of each frame of a batch started at ``start_ms``.

        Also advances the replica's accounting (busy time, warm window).
        """
        finishes = self.preview_service(start_ms, batch)
        self.record_service(start_ms, finishes)
        return finishes

    def record_service(
        self, start_ms: float, finishes: tuple[float, ...]
    ) -> None:
        """Fold one served batch into the accounting.

        Split out of :meth:`service_times` so a remote transport — where
        the authoritative service-time computation happens in another
        process (see :mod:`repro.serving.transport`) — can mirror the
        busy-time/warm-window bookkeeping on the local proxy replica.
        """
        self.busy_ms += finishes[-1] - start_ms
        self.frames_served += len(finishes)
        self.batches_served += 1
        self.last_finish_ms = finishes[-1]

    def utilization(self, elapsed_ms: float) -> float:
        """Busy-time fraction (0..1) of ``elapsed_ms`` of session time."""
        return self.busy_ms / elapsed_ms if elapsed_ms > 0 else 0.0


class ReplicaPool:
    """N identical replicas plus the free-list the scheduler blocks on."""

    def __init__(
        self,
        latency: FrameLatencyProfile,
        replicas: int = 1,
        max_batch: int = 8,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.profile = latency
        self.replicas = [
            Replica(replica_id=i, latency=latency, max_batch=max_batch)
            for i in range(replicas)
        ]
        self.max_batch = max_batch
        self._initial_replicas = replicas
        self._free: asyncio.Queue[Replica | None] | None = None

    @property
    def capacity_fps(self) -> float:
        """Steady-state decode rate of the live pool, all replicas warm.

        Counts only replicas that are not dead (never below one so
        routing/admission math stays finite), matching the heap engine's
        live-fleet accounting; on a fault-free session this is simply
        every replica.
        """
        return max(1, self.alive) * self.profile.steady_fps

    @property
    def alive(self) -> int:
        """Replicas that can still serve (``up`` or ``degraded``)."""
        return sum(1 for r in self.replicas if r.health != "dead")

    def __len__(self) -> int:
        return len(self.replicas)

    def open(self) -> None:
        """Start a fresh serving session on the running event loop.

        Clears any previous session's accounting (busy time, warm
        windows) so a pool can be reused for back-to-back policy
        comparisons without state leaking between sessions.
        """
        self.reset()
        self._free = asyncio.Queue()
        # Deterministic order: replica 0 serves the first batch.
        for replica in self.replicas:
            self._free.put_nowait(replica)

    async def acquire(self) -> Replica | None:
        """Next free replica, or ``None`` once the pool is poisoned.

        ``None`` only ever surfaces after :meth:`poison` — i.e. when
        every replica is dead and no replacement is coming — so callers
        on the happy path can treat the result as a replica.
        """
        assert self._free is not None, "pool not opened inside a session"
        return await self._free.get()

    def try_acquire(self) -> Replica | None:
        """A free replica right now, or ``None`` — never blocks.

        The hedging path uses this: a hedge is only worth dispatching if
        spare capacity is sitting idle at this instant.
        """
        assert self._free is not None, "pool not opened inside a session"
        try:
            replica = self._free.get_nowait()
        except asyncio.QueueEmpty:
            return None
        if replica is None:  # poison sentinel — leave it for acquire()
            self._free.put_nowait(None)
            return None
        return replica

    def release(self, replica: Replica) -> None:
        assert self._free is not None
        if replica.health == "dead":
            return  # a dead replica never rejoins the rotation
        self._free.put_nowait(replica)

    def mark_dead(self, replica: Replica) -> None:
        """Take a replica out of service permanently."""
        replica.health = "dead"

    def add_replica(self) -> Replica:
        """Provision a cold replacement replica into the rotation."""
        replica = Replica(
            replica_id=len(self.replicas),
            latency=self.profile,
            max_batch=self.max_batch,
        )
        self.replicas.append(replica)
        if self._free is not None:
            self._free.put_nowait(replica)
        return replica

    def poison(self) -> None:
        """Wake a blocked ``acquire`` with ``None`` (pool exhausted)."""
        assert self._free is not None
        self._free.put_nowait(None)

    def utilizations(self, elapsed_ms: float) -> tuple[float, ...]:
        return tuple(r.utilization(elapsed_ms) for r in self.replicas)

    def reset(self) -> None:
        """Forget all serving state (``open`` calls this per session)."""
        del self.replicas[self._initial_replicas :]
        for replica in self.replicas:
            replica.busy_ms = 0.0
            replica.frames_served = 0
            replica.batches_served = 0
            replica.last_finish_ms = float("-inf")
            replica.health = "up"
            replica.latency_factor = 1.0
        self._free = None


def health_summary(replicas) -> str:
    """Human-readable fleet health, or ``""`` while everything is up.

    One shared formatter for both engines, so a group's ``health``
    string in the report is identical whichever engine served it.
    """
    up = sum(1 for r in replicas if r.health == "up")
    degraded = sum(1 for r in replicas if r.health == "degraded")
    dead = sum(1 for r in replicas if r.health == "dead")
    if not degraded and not dead:
        return ""
    return f"{up} up/{degraded} degraded/{dead} dead"


def design_max_batch(config) -> int:
    """Default replica batch capacity for a design configuration.

    The design was optimized for specific per-branch batch sizes; let a
    replica absorb a few frames beyond that before the scheduler must
    spill to the next one. The single home of this heuristic — both
    :func:`pool_from_result` and
    :meth:`~repro.fcad.flow.FcadResult.serving_group` size from it, so a
    single pool and a cluster group of the same design always agree.
    """
    return max(8, 2 * max(b.batch_size for b in config.branches))


def pool_from_result(
    result: FcadResult,
    replicas: int = 1,
    max_batch: int | None = None,
    sim_frames: int = 8,
    warmup: int = 2,
    profile: FrameLatencyProfile | None = None,
) -> ReplicaPool:
    """Deploy ``replicas`` copies of a DSE-selected design as a pool.

    The per-frame latency model is sampled from one cycle-accurate run of
    the design (see :meth:`FcadResult.frame_latency_profile`); pass a
    ``profile`` you already sampled to skip the simulation.
    """
    if profile is None:
        profile = result.frame_latency_profile(frames=sim_frames, warmup=warmup)
    if max_batch is None:
        max_batch = design_max_batch(result.dse.best_config)
    return ReplicaPool(latency=profile, replicas=replicas, max_batch=max_batch)


__all__ = [
    "Replica",
    "ReplicaPool",
    "design_max_batch",
    "health_summary",
    "pool_from_result",
]
