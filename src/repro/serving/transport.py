"""Replica dispatch behind a protocol: in-process, subprocess, or remote.

The scheduler never computes service times itself — it hands a batch to a
:class:`ReplicaTransport` and gets back per-frame completion times. That
seam is what makes *remote* replicas a deployment choice instead of a
rewrite of the serving layer:

- :class:`InProcessTransport` (the default) calls
  :meth:`~repro.serving.replica.Replica.service_times` directly — zero
  overhead, bit-identical to the pre-transport scheduler on the virtual
  clock;
- :class:`SocketTransport` serves the replicas from a subprocess over a
  local TCP socket (``python -m repro.serving.transport`` is the server).
  The server owns the authoritative replica state (warm windows); the
  client mirrors the accounting on its proxy replicas so utilization
  reporting still works locally. The round-trip is a synchronous,
  newline-delimited JSON exchange, so virtual-clock sessions stay
  deterministic: the event loop blocks (in wall time, not session time)
  until the answer arrives.
- :class:`~repro.dist.remote_transport.RemoteTransport` (name
  ``remote:HOST:PORT``) points the same protocol at a *persistent*
  replica server on another host, adding auth, reconnection, and request
  resubmission — see :mod:`repro.dist.remote_transport`.

Framing lives in :mod:`repro.dist.wire` — the repo's one wire format —
and round-trips floats exactly (``json`` uses shortest-repr floats), so a
socket-served session computes the same finish times the in-process path
would.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.dist.wire import LineSocket, WireClosed
from repro.serving.replica import Replica, ReplicaPool
from repro.sim.runner import FrameLatencyProfile


@runtime_checkable
class ReplicaTransport(Protocol):
    """How a dispatched batch reaches a replica and comes back timed."""

    name: str

    def open(self, pool: ReplicaPool) -> None:
        """Start a serving session against ``pool`` (spawn servers etc.)."""
        ...

    def close(self) -> None:
        """Tear the session down (kill servers, close sockets)."""
        ...

    async def decode(
        self, replica: Replica, start_ms: float, batch: int
    ) -> tuple[float, ...]:
        """Serve ``batch`` frames on ``replica`` from ``start_ms``."""
        ...


class InProcessTransport:
    """Today's behavior: the replica object itself computes service times."""

    name = "inprocess"

    def open(self, pool: ReplicaPool) -> None:  # noqa: ARG002 - protocol
        return None

    def close(self) -> None:
        return None

    async def decode(
        self, replica: Replica, start_ms: float, batch: int
    ) -> tuple[float, ...]:
        return replica.service_times(start_ms, batch)


class SocketTransport:
    """Replicas served by a subprocess over a localhost TCP socket.

    ``open`` spawns ``python -m repro.serving.transport``, reads the port
    the server bound, connects, and sends a handshake carrying the pool's
    latency profile and batch capacity. Every ``decode`` is one
    request/response line pair. The subprocess holds the authoritative
    per-replica warm-window state; the local proxy replica only mirrors
    accounting from the returned finish times.
    """

    name = "socket"

    def __init__(self, timeout_s: float = 30.0) -> None:
        self.timeout_s = timeout_s
        self._proc: subprocess.Popen | None = None
        self._conn: LineSocket | None = None

    def open(self, pool: ReplicaPool) -> None:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        # -c (not -m): runpy re-executing an already-imported submodule
        # would warn about unpredictable double execution in the child.
        self._proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.serving.transport import serve; "
                "raise SystemExit(serve())",
            ],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        assert self._proc.stdout is not None
        port_line = self._proc.stdout.readline().strip()
        if not port_line.isdigit():
            raise RuntimeError(
                f"replica server failed to start (got {port_line!r})"
            )
        self._conn = LineSocket.connect(
            "127.0.0.1", int(port_line), timeout_s=self.timeout_s
        )
        profile = pool.profile
        self._conn.send(
            {
                "op": "handshake",
                "profile": {
                    "finish_ms": list(profile.finish_ms),
                    "first_frame_ms": profile.first_frame_ms,
                    "steady_interval_ms": profile.steady_interval_ms,
                    "frequency_mhz": profile.frequency_mhz,
                },
                "max_batch": pool.max_batch,
            }
        )

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send({"op": "close"})
            except (OSError, ValueError):
                pass
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            try:
                self._proc.wait(timeout=self.timeout_s)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
            self._proc = None

    async def decode(
        self, replica: Replica, start_ms: float, batch: int
    ) -> tuple[float, ...]:
        # Deliberately synchronous: the whole round-trip happens inside
        # one event-loop step, so no virtual-clock timer can fire while
        # the wire is in flight and session ordering stays deterministic.
        assert self._conn is not None, "transport not opened"
        try:
            reply = self._conn.request(
                {
                    "op": "decode",
                    "replica": replica.replica_id,
                    "start_ms": start_ms,
                    "batch": batch,
                }
            )
        except WireClosed as exc:
            raise RuntimeError("replica server exited mid-session") from exc
        if "error" in reply:
            raise RuntimeError(f"replica server: {reply['error']}")
        finishes = tuple(reply["finish_ms"])
        replica.record_service(start_ms, finishes)
        return finishes


#: Transport names accepted by :func:`get_transport` (and ``--transport``).
#: ``remote:HOST:PORT`` — not listed because it carries an address — is
#: also accepted and builds a :class:`~repro.dist.remote_transport.RemoteTransport`.
TRANSPORTS = ("inprocess", "socket")

#: Environment variable ``remote:`` transports read their auth token from.
REMOTE_TOKEN_ENV = "REPRO_FLEET_TOKEN"


def parse_remote_spec(name: str) -> tuple[str, int]:
    """Split ``remote:HOST:PORT`` into a validated ``(host, port)``."""
    _, _, address = name.partition(":")
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit() or not 0 < int(port_text) < 65536:
        raise ValueError(
            f"bad remote transport {name!r}: expected remote:HOST:PORT "
            f"with a port in 1..65535"
        )
    return host, int(port_text)


def require_fleet_token(context: str) -> str:
    """The fleet auth token from the environment, or a friendly error.

    Everything that talks to a remote replica or fleet endpoint
    (``remote:HOST:PORT`` transports, ``repro fleet worker|replicas``)
    authenticates with the shared secret in :data:`REMOTE_TOKEN_ENV`.
    Checking it up front turns a confusing mid-session auth failure into
    an immediate, actionable message.
    """
    token = os.environ.get(REMOTE_TOKEN_ENV, "")
    if not token:
        raise RuntimeError(
            f"{context} needs the fleet auth token: set {REMOTE_TOKEN_ENV} "
            f"to the shared secret the replica server was started with "
            f"(e.g. export {REMOTE_TOKEN_ENV}=...)"
        )
    return token


def get_transport(
    name: str | ReplicaTransport, timeout_s: float | None = None
) -> ReplicaTransport:
    """Look a transport up by name (or pass an instance through).

    ``timeout_s`` bounds how long the socket/remote transports wait on
    the wire (connection setup and each decode round-trip); ``None``
    keeps each transport's default. In-process serving has no wire and
    ignores it.
    """
    if not isinstance(name, str):
        return name
    if name == "inprocess":
        return InProcessTransport()
    if name == "socket":
        if timeout_s is not None:
            return SocketTransport(timeout_s=timeout_s)
        return SocketTransport()
    if name.startswith("remote:"):
        from repro.dist.remote_transport import RemoteTransport

        host, port = parse_remote_spec(name)
        token = require_fleet_token(f"transport {name!r}")
        if timeout_s is not None:
            return RemoteTransport(host, port, token=token, timeout_s=timeout_s)
        return RemoteTransport(host, port, token=token)
    known = ", ".join(TRANSPORTS + ("remote:HOST:PORT",))
    raise KeyError(
        f"unknown replica transport {name!r}; known transports: {known}"
    )


def list_transports() -> list[str]:
    return list(TRANSPORTS)


# ---------------------------------------------------------------------------
# the server side (python -m repro.serving.transport)
# ---------------------------------------------------------------------------
def serve(host: str = "127.0.0.1") -> int:
    """Serve one client connection; prints the bound port on stdout."""
    listener = socket.create_server((host, 0))
    print(listener.getsockname()[1], flush=True)
    raw, _ = listener.accept()
    listener.close()
    conn = LineSocket(raw)
    profile: FrameLatencyProfile | None = None
    max_batch = 8
    replicas: dict[int, Replica] = {}
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            op = message.get("op")
            if op == "close":
                break
            if op == "handshake":
                raw_profile = message["profile"]
                profile = FrameLatencyProfile(
                    finish_ms=tuple(raw_profile["finish_ms"]),
                    first_frame_ms=raw_profile["first_frame_ms"],
                    steady_interval_ms=raw_profile["steady_interval_ms"],
                    frequency_mhz=raw_profile["frequency_mhz"],
                )
                max_batch = int(message["max_batch"])
                replicas.clear()
                continue
            if op != "decode" or profile is None:
                conn.send({"error": f"bad request: {message!r}"})
                continue
            replica_id = int(message["replica"])
            replica = replicas.get(replica_id)
            if replica is None:
                replica = replicas[replica_id] = Replica(
                    replica_id=replica_id,
                    latency=profile,
                    max_batch=max_batch,
                )
            finishes = replica.service_times(
                message["start_ms"], int(message["batch"])
            )
            conn.send({"finish_ms": list(finishes)})
    finally:
        conn.close()
    return 0


__all__ = [
    "InProcessTransport",
    "REMOTE_TOKEN_ENV",
    "ReplicaTransport",
    "SocketTransport",
    "TRANSPORTS",
    "get_transport",
    "list_transports",
    "parse_remote_spec",
    "require_fleet_token",
    "serve",
]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(serve())
