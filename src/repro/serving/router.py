"""Pluggable request routing across heterogeneous replica groups.

A router answers one question per request: which
:class:`~repro.serving.cluster.ReplicaGroup` should decode this frame?
It sees the request's *relative* deadline budget and every group's live
state (queue depth, in-flight frames, latency profile), and must be
deterministic — same cluster state, same answer — so virtual-clock
sessions stay bit-identical per seed.

- ``round-robin``   — cycle the groups; the baseline, blind to both load
  and deadlines.
- ``least-loaded``  — smallest estimated backlog (in milliseconds of
  work per replica, so a big-batch group and a low-latency group are
  compared fairly).
- ``deadline``      — deadline-tiered: of the groups whose *estimated*
  response latency fits the request's budget, pick the highest-capacity
  one (lax deadlines ride the big-batch group); when none fits, fall
  back to the quickest group. Tight deadlines therefore land on the
  low-latency group exactly when the throughput tier cannot honour them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    from repro.serving.cluster import ReplicaGroup


@runtime_checkable
class RoutingPolicy(Protocol):
    """Pick the replica group that should serve a request."""

    name: str

    def route(
        self,
        deadline_rel_ms: float,
        now_ms: float,
        groups: Sequence["ReplicaGroup"],
    ) -> int:
        """Index into ``groups`` of the chosen replica group."""
        ...


class RoundRobinRouter:
    """Cycle through the groups in order, one request each."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self,
        deadline_rel_ms: float,
        now_ms: float,
        groups: Sequence["ReplicaGroup"],
    ) -> int:
        index = self._next % len(groups)
        self._next += 1
        return index


class LeastLoadedRouter:
    """Send each request to the group with the least queued work.

    Backlog is measured in estimated milliseconds until a new frame would
    start service (queue + in-flight frames, divided by the group's
    per-replica drain rate), so groups of different designs and sizes are
    compared on a common scale. Ties break on group index.
    """

    name = "least-loaded"

    def route(
        self,
        deadline_rel_ms: float,
        now_ms: float,
        groups: Sequence["ReplicaGroup"],
    ) -> int:
        return min(
            range(len(groups)), key=lambda i: (groups[i].backlog_ms(), i)
        )


class DeadlineTieredRouter:
    """Deadline-tiered routing: lax budgets ride the big-batch tier.

    Each request's *home* tier is the highest-capacity group whose
    **unloaded** latency (batching window + cold fill) fits the request's
    deadline budget — so lax frames ride the big-batch tier and tight
    frames land on the low-latency tier, which is the only one that can
    honour them. Requests no group could serve even unloaded go to the
    quickest group (they will likely miss; admission control is the tool
    that sheds them instead).

    The classification is deliberately *static* — a function of the
    request's budget and the groups' designs, not of queue depths. A
    load-based fallback ("send it wherever is emptiest") sounds smarter
    but inverts the architecture exactly when it matters: at overload the
    big-batch tier backs up first, every lax frame then chases the idle
    low-latency tier, and the tight-deadline traffic that tier exists to
    protect drowns in spillover. Strict tiering keeps the fast tier's
    queue short at any load; overload surfaces as shedding (or misses) in
    the tier that is actually over capacity.
    """

    name = "deadline"

    def route(
        self,
        deadline_rel_ms: float,
        now_ms: float,
        groups: Sequence["ReplicaGroup"],
    ) -> int:
        unloaded = [group.unloaded_latency_ms() for group in groups]
        feasible = [
            i for i, est in enumerate(unloaded) if est <= deadline_rel_ms
        ]
        if feasible:
            return max(
                feasible, key=lambda i: (groups[i].capacity_fps, -i)
            )
        return min(range(len(groups)), key=lambda i: (unloaded[i], i))


def failover_route(
    preferred: int,
    deadline_rel_ms: float,
    groups: Sequence["ReplicaGroup"],
    available: Sequence[bool],
) -> int | None:
    """Failure-aware rerouting on top of any router's choice.

    When the ``preferred`` group is available the answer is the
    preferred group — failover never perturbs a healthy cluster. When it
    is not (circuit breaker open, pool exhausted), the request diverts
    with :class:`DeadlineTieredRouter` semantics restricted to the
    available groups: the highest-capacity one whose unloaded latency
    fits the budget, else the quickest one. ``None`` means *no* group
    can serve — the front door fails the frame rather than queueing it
    nowhere.

    Shared verbatim by the coroutine cluster front door and the heap
    engine, so failover decisions are identical across engines.
    """
    if available[preferred]:
        return preferred
    candidates = [i for i, ok in enumerate(available) if ok]
    if not candidates:
        return None
    unloaded = {i: groups[i].unloaded_latency_ms() for i in candidates}
    feasible = [i for i in candidates if unloaded[i] <= deadline_rel_ms]
    if feasible:
        return max(feasible, key=lambda i: (groups[i].capacity_fps, -i))
    return min(candidates, key=lambda i: (unloaded[i], i))


_ROUTERS: dict[str, Callable[[], RoutingPolicy]] = {
    "round-robin": RoundRobinRouter,
    "least-loaded": LeastLoadedRouter,
    "deadline": DeadlineTieredRouter,
}


def get_router(name: str | RoutingPolicy) -> RoutingPolicy:
    """Look a routing policy up by name (or pass an instance through)."""
    if not isinstance(name, str):
        return name
    try:
        return _ROUTERS[name]()
    except KeyError:
        known = ", ".join(sorted(_ROUTERS))
        raise KeyError(
            f"unknown routing policy {name!r}; known routers: {known}"
        ) from None


def list_routers() -> list[str]:
    """Names of the built-in routing policies."""
    return sorted(_ROUTERS)


__all__ = [
    "DeadlineTieredRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "RoutingPolicy",
    "failover_route",
    "get_router",
    "list_routers",
]
