"""Vectorized request traces and named traffic shapes.

The coroutine serving path (:mod:`repro.serving.workload`) models each
avatar as an asyncio task — faithful, but the simulator tops out around
thousands of requests per session. This module is the array-shaped
counterpart: a :class:`RequestTrace` holds a whole session's arrivals as
presorted numpy arrays (one row per request: arrival time, avatar id,
deadline budget), cheap to generate for millions of requests and cheap
for the event-heap engine (:mod:`repro.serving.engine`) to consume.

Two ways to build a trace:

- :func:`trace_from_workload` expands an
  :class:`~repro.serving.workload.AvatarWorkload` into the exact arrival
  stream its coroutine clients would submit — same per-avatar
  ``random.Random`` streams, same jitter chain — which is what makes the
  heap-vs-coroutine equivalence test possible.
- :func:`make_trace` generates large sessions from a named *traffic
  shape* with session churn (avatars joining and leaving mid-session):

  - ``steady``  — every avatar streams for the whole session (optional
    ``churn`` fraction with random sub-window sessions);
  - ``diurnal`` — concurrency follows a smooth one-cycle envelope
    (quiet → peak → quiet), each avatar present for one contiguous
    window sized by its rank;
  - ``flash``   — a steady baseline plus a flash crowd that joins over a
    short ramp and leaves together after a hold.

All times are milliseconds of session time; ``avatar_fps`` is frames per
second per avatar. Generation is deterministic in ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True, eq=False)
class RequestTrace:
    """One serving session's request stream as flat, presorted arrays.

    ``arrival_ms`` is sorted ascending; row ``i`` is the session's
    ``i``-th submitted request. ``deadline_rel_ms`` holds each request's
    *relative* decode budget in milliseconds (absolute deadline =
    arrival + budget).
    """

    #: Arrival time of each request (ms of session time, sorted ascending).
    arrival_ms: np.ndarray
    #: Avatar id of each request (int64).
    avatar_id: np.ndarray
    #: Relative deadline budget of each request (ms).
    deadline_rel_ms: np.ndarray
    #: Size of the avatar universe (ids are ``0..avatars-1``; churny
    #: shapes may leave some avatars with zero requests).
    avatars: int
    #: The flat deadline budget (ms) the session was configured with.
    deadline_ms: float
    #: Per-avatar deadline tiers (ms), if the session used them.
    deadline_tiers: tuple[float, ...] = ()
    #: Name of the generating traffic shape ("" for workload expansions).
    shape: str = ""
    #: Seed the trace was generated from.
    seed: int = 0

    def __post_init__(self) -> None:
        n = len(self.arrival_ms)
        if len(self.avatar_id) != n or len(self.deadline_rel_ms) != n:
            raise ValueError("trace arrays must have equal length")
        if n == 0:
            raise ValueError("a trace needs at least one request")

    def __len__(self) -> int:
        return len(self.arrival_ms)

    @property
    def requests(self) -> int:
        """Total number of requests in the trace."""
        return len(self.arrival_ms)

    @property
    def span_ms(self) -> float:
        """Arrival span (ms) from the first to the last request."""
        return float(self.arrival_ms[-1] - self.arrival_ms[0])


def trace_from_workload(workload) -> RequestTrace:
    """Expand an :class:`AvatarWorkload` into the trace its clients submit.

    Reproduces :func:`repro.serving.workload._avatar_client` exactly —
    per-avatar ``random.Random`` streams, the initial phase draw, and the
    submit-then-jitter call order — so the event-heap engine sees the
    same arrivals, in the same order, as the coroutine scheduler does.
    """
    n = workload.avatars * workload.frames_per_avatar
    arrival = np.empty(n, dtype=np.float64)
    avatar = np.empty(n, dtype=np.int64)
    rel = np.empty(n, dtype=np.float64)
    interval = workload.frame_interval_ms
    jitter = workload.jitter_ms
    pos = 0
    for avatar_id in range(workload.avatars):
        rng = workload.avatar_rng(avatar_id)
        budget = workload.deadline_for(avatar_id)
        next_arrival = rng.uniform(0.0, interval)
        for _ in range(workload.frames_per_avatar):
            arrival[pos] = next_arrival
            avatar[pos] = avatar_id
            rel[pos] = budget
            pos += 1
            step = rng.uniform(-jitter, jitter) if jitter else 0.0
            next_arrival += interval + step
    order = np.argsort(arrival, kind="stable")
    return RequestTrace(
        arrival_ms=arrival[order],
        avatar_id=avatar[order],
        deadline_rel_ms=rel[order],
        avatars=workload.avatars,
        deadline_ms=workload.deadline_ms,
        deadline_tiers=workload.deadline_tiers,
        shape="",
        seed=workload.seed,
    )


# ---------------------------------------------------------------------------
# traffic shapes: (avatars, duration_ms, interval_ms, rng) -> (join, leave)
# ---------------------------------------------------------------------------
def _steady_windows(
    avatars: int,
    duration_ms: float,
    interval_ms: float,
    rng: np.random.Generator,
    churn: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Full-session presence; ``churn`` fraction get random sub-windows."""
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be in [0, 1]")
    join = rng.uniform(0.0, min(interval_ms, duration_ms), avatars)
    leave = np.full(avatars, duration_ms)
    churners = int(round(churn * avatars))
    if churners:
        # The last `churners` avatars join late and leave early: a random
        # dwell of 25-50% of the session starting in its first half.
        join_c = rng.uniform(0.0, 0.5 * duration_ms, churners)
        dwell = rng.uniform(0.25, 0.5, churners) * duration_ms
        join[avatars - churners :] = join_c
        leave[avatars - churners :] = np.minimum(join_c + dwell, duration_ms)
    return join, leave


def _diurnal_windows(
    avatars: int,
    duration_ms: float,
    interval_ms: float,
    rng: np.random.Generator,
    floor: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """One quiet→peak→quiet concurrency cycle over the session.

    Avatar ``i``'s rank ``i/avatars`` decides its presence window: the
    target concurrency at time ``t`` is
    ``floor + (1-floor) * (1 - cos(2*pi*t/D)) / 2`` of the fleet, and an
    avatar is present exactly while the envelope sits above its rank —
    low ranks stream all session, high ranks only around the peak.
    """
    if not 0.0 <= floor < 1.0:
        raise ValueError("diurnal floor must be in [0, 1)")
    rank = np.arange(avatars, dtype=np.float64) / avatars
    q = np.clip((rank - floor) / (1.0 - floor), 0.0, 1.0)
    theta = np.arccos(1.0 - 2.0 * q)  # 0 (always on) .. pi (never on)
    join = duration_ms * theta / (2.0 * math.pi)
    leave = duration_ms * (1.0 - theta / (2.0 * math.pi))
    # Desynchronize joins by up to one frame interval so same-rank-ish
    # avatars don't all arrive on the same instant.
    join = join + rng.uniform(0.0, interval_ms, avatars)
    return join, np.maximum(leave, join)


def _flash_windows(
    avatars: int,
    duration_ms: float,
    interval_ms: float,
    rng: np.random.Generator,
    base: float = 0.2,
    spike_at: float = 0.3,
    ramp: float = 0.05,
    hold: float = 0.3,
) -> tuple[np.ndarray, np.ndarray]:
    """A steady baseline plus a flash crowd.

    ``base`` of the fleet streams the whole session; everyone else joins
    inside a ``ramp``-long window starting at ``spike_at`` and leaves
    after ``hold`` (all three as fractions of the session).
    """
    if not 0.0 < base <= 1.0:
        raise ValueError("flash base fraction must be in (0, 1]")
    baseline = max(1, int(round(base * avatars)))
    join = np.empty(avatars, dtype=np.float64)
    leave = np.full(avatars, duration_ms)
    join[:baseline] = rng.uniform(
        0.0, min(interval_ms, duration_ms), baseline
    )
    crowd = avatars - baseline
    if crowd:
        join_c = spike_at * duration_ms + rng.uniform(
            0.0, max(ramp * duration_ms, 1e-9), crowd
        )
        join[baseline:] = join_c
        leave[baseline:] = np.minimum(join_c + hold * duration_ms, duration_ms)
    return join, np.maximum(leave, join)


_SHAPES: dict[str, Callable[..., tuple[np.ndarray, np.ndarray]]] = {
    "steady": _steady_windows,
    "diurnal": _diurnal_windows,
    "flash": _flash_windows,
}


def list_shapes() -> list[str]:
    """Names of the built-in traffic shapes."""
    return sorted(_SHAPES)


def make_trace(
    avatars: int,
    duration_s: float,
    shape: str = "steady",
    avatar_fps: float = 30.0,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (),
    jitter_ms: float = 0.0,
    seed: int = 0,
    **shape_params,
) -> RequestTrace:
    """Generate a session trace from a named traffic shape.

    Each avatar gets a presence window ``[join, leave)`` from the shape
    and streams one frame every ``1000/avatar_fps`` ms inside it, with
    optional uniform ±``jitter_ms`` arrival jitter per frame. Deadlines
    follow the same tiering rule as :class:`AvatarWorkload` (avatar ``i``
    gets ``deadline_tiers[i % len]``; no tiers means the flat
    ``deadline_ms``). Extra keyword arguments go to the shape (e.g.
    ``churn=`` for ``steady``, ``floor=`` for ``diurnal``, ``base=`` /
    ``spike_at=`` / ``ramp=`` / ``hold=`` for ``flash``).

    Deterministic in ``seed``: same arguments, same trace, bit for bit.
    """
    if avatars < 1:
        raise ValueError("need at least one avatar")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if avatar_fps <= 0:
        raise ValueError("avatar fps must be positive")
    if deadline_ms <= 0:
        raise ValueError("deadline must be positive")
    if any(tier <= 0 for tier in deadline_tiers):
        raise ValueError("deadline tiers must be positive")
    interval_ms = 1000.0 / avatar_fps
    if not 0 <= jitter_ms < interval_ms:
        raise ValueError("jitter must be in [0, frame interval)")
    try:
        windows = _SHAPES[shape]
    except KeyError:
        known = ", ".join(sorted(_SHAPES))
        raise KeyError(
            f"unknown traffic shape {shape!r}; known shapes: {known}"
        ) from None
    duration_ms = duration_s * 1000.0
    rng = np.random.default_rng(seed)
    join, leave = windows(avatars, duration_ms, interval_ms, rng, **shape_params)

    # One frame per interval inside [join, leave): counts, then arrivals
    # via a flat repeat + per-avatar frame index, all vectorized.
    spans = leave - join
    counts = np.where(
        spans > 0, np.ceil(spans / interval_ms), 0.0
    ).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        raise ValueError(
            "traffic shape produced an empty trace; "
            "increase duration or avatar fps"
        )
    avatar = np.repeat(np.arange(avatars, dtype=np.int64), counts)
    starts = np.repeat(join, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    frame_index = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    arrival = starts + frame_index * interval_ms
    if jitter_ms:
        arrival = arrival + rng.uniform(-jitter_ms, jitter_ms, total)
        arrival = np.maximum(arrival, starts)  # never before the join
    if deadline_tiers:
        tiers = np.asarray(deadline_tiers, dtype=np.float64)
        rel = tiers[avatar % len(deadline_tiers)]
    else:
        rel = np.full(total, deadline_ms)
    order = np.argsort(arrival, kind="stable")
    return RequestTrace(
        arrival_ms=arrival[order],
        avatar_id=avatar[order],
        deadline_rel_ms=rel[order],
        avatars=avatars,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        shape=shape,
        seed=seed,
    )


__all__ = [
    "RequestTrace",
    "list_shapes",
    "make_trace",
    "trace_from_workload",
]
