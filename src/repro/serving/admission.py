"""Admission control: bounded queues and predicted-deadline-miss shedding.

EDF (and every other work-conserving policy) degrades sharply once the
offered load passes roughly 1.2x of pool capacity: the queue grows
without bound, every frame inherits the backlog's wait, and the miss
rate goes from "the tail" to "everything". Past that point the only way
to keep *accepted* requests inside their deadlines is to refuse some of
them at the front door.

:class:`AdmissionControl` applies two tests when the router has picked a
group for a request:

1. **bounded queue** — reject when the group already holds more than
   ``max_queue_per_replica`` frames per replica (queued + in flight). A
   hard backstop that bounds memory and worst-case wait even when the
   predictor is wrong.
2. **predicted deadline miss** — reject when the group's estimated
   response latency (backlog drain + batching window + service time)
   exceeds ``slack`` times the request's deadline budget. This is the
   deadline-aware part: it starts shedding exactly when the backlog
   crosses the request's deadline horizon — i.e. right around the ~1.2x
   overload point where EDF's misses explode — rather than at any fixed
   queue length.

A shed request resolves immediately with ``None`` (the avatar client
sees a dropped frame, not a hang) and is tracked as a first-class
``shed_rate`` SLO in the :class:`~repro.serving.slo.ServingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.serving.cluster import ReplicaGroup


@dataclass(frozen=True)
class AdmissionControl:
    """Reject-or-admit policy applied after routing, before enqueueing."""

    #: Hard cap on frames per replica a group may hold (queued plus in
    #: flight); ``None`` disables the bound.
    max_queue_per_replica: int | None = 64
    #: Shed requests whose predicted latency exceeds ``slack`` x budget.
    predict_miss: bool = True
    #: Headroom multiplier on the deadline budget: < 1.0 sheds earlier
    #: (conservative), > 1.0 tolerates predicted near-misses.
    slack: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_per_replica is not None and self.max_queue_per_replica < 1:
            raise ValueError("max queue per replica must be >= 1")
        if self.slack <= 0:
            raise ValueError("admission slack must be positive")

    def admit(self, group: "ReplicaGroup", deadline_rel_ms: float) -> bool:
        """True if the request may enter ``group``'s queue."""
        if self.max_queue_per_replica is not None:
            backlog = group.backlog_frames
            if backlog >= self.max_queue_per_replica * group.replicas:
                return False
        if self.predict_miss:
            if group.estimated_latency_ms() > self.slack * deadline_rel_ms:
                return False
        return True


def resolve_admission(
    admission: "AdmissionControl | bool | None",
) -> AdmissionControl | None:
    """An :class:`AdmissionControl` from an instance, a flag, or ``None``.

    ``True`` means the default controller (bounded queue + predicted-miss
    shedding); ``False``/``None`` means admit everything.
    """
    if admission is None or admission is False:
        return None
    if admission is True:
        return AdmissionControl()
    return admission


__all__ = ["AdmissionControl", "resolve_admission"]
