"""Avatar decode serving: async batching onto simulated accelerator replicas.

F-CAD's end product is an accelerator that decodes codec avatars for live
telepresence. This package is the *workload* layer on top of the design
flow: take DSE-selected designs, deploy replicas of them, and serve
decode requests from many concurrent avatars under latency SLOs —

- :mod:`~repro.serving.request`   — the request/response model;
- :mod:`~repro.serving.clock`     — virtual-clock asyncio (deterministic
  sessions) or real time;
- :mod:`~repro.serving.replica`   — replicas driven by cycle-accurate
  fill/steady-state latency profiles;
- :mod:`~repro.serving.transport` — how a batch reaches a replica:
  in-process (default) or a socket-served subprocess;
- :mod:`~repro.serving.policies`  — FIFO / deadline-EDF / per-avatar
  fairness batch selection;
- :mod:`~repro.serving.scheduler` — the async batching dispatcher;
- :mod:`~repro.serving.cluster`   — heterogeneous replica groups behind
  one front door;
- :mod:`~repro.serving.router`    — round-robin / least-loaded /
  deadline-tiered request routing across groups;
- :mod:`~repro.serving.admission` — bounded queues and
  predicted-deadline-miss load shedding;
- :mod:`~repro.serving.slo`       — p50/p95/p99 latency, deadline-miss
  rate, shed rate, throughput, utilization (aggregate and per group);
- :mod:`~repro.serving.workload`  — multi-avatar frame streams;
- :mod:`~repro.serving.traffic`   — vectorized request traces and named
  traffic shapes (steady / diurnal / flash) with session churn;
- :mod:`~repro.serving.engine`    — the event-heap engine: the same
  serving semantics as the coroutine path at millions of requests per
  session, plus replica autoscaling.

Two engines serve the same reports: the *coroutine* path (one asyncio
task per avatar on the virtual clock — the reference semantics, right
for thousands of requests) and the *event-heap* path
(:func:`serve_trace` — one explicit event loop over array-backed
traces, right for millions). See ``docs/serving.md`` for when to use
which.

One design, one pool::

    from repro import FCad
    from repro.serving import serve_from_result

    result = FCad(network=..., device=...).run()
    report = serve_from_result(
        result, avatars=64, replicas=4, policy="edf", seed=0
    )
    print(report.render())

A heterogeneous cluster (a low-latency tier next to a big-batch tier,
deadline-tiered routing, load shedding at saturation)::

    from repro.serving import serve_from_results

    report = serve_from_results(
        [(latency_result, 1), (throughput_result, 3)],
        avatars=64,
        router="deadline",
        admission=True,
    )
"""

from __future__ import annotations

from repro.fcad.flow import FcadResult
from repro.sim.runner import FrameLatencyProfile
from repro.serving.admission import AdmissionControl, resolve_admission
from repro.serving.chaos import (
    ChaosFault,
    ChaosPlan,
    CircuitBreaker,
    RecoveryPolicy,
)
from repro.serving.clock import VirtualClockEventLoop, run_session
from repro.serving.engine import AutoscalePolicy, serve_trace
from repro.serving.cluster import (
    Cluster,
    GroupSpec,
    ReplicaGroup,
    run_cluster_session,
    serve_cluster,
)
from repro.serving.policies import (
    EdfPolicy,
    FairPolicy,
    FifoPolicy,
    SchedulingPolicy,
    get_policy,
    list_policies,
)
from repro.serving.replica import (
    Replica,
    ReplicaPool,
    health_summary,
    pool_from_result,
)
from repro.serving.request import DecodeRequest, DecodeResponse
from repro.serving.router import (
    DeadlineTieredRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    RoutingPolicy,
    failover_route,
    get_router,
    list_routers,
)
from repro.serving.scheduler import BatchScheduler
from repro.serving.slo import (
    GroupReport,
    ServingReport,
    SloTracker,
    percentile,
    report_from_json,
    report_to_json,
)
from repro.serving.traffic import (
    RequestTrace,
    list_shapes,
    make_trace,
    trace_from_workload,
)
from repro.serving.transport import (
    InProcessTransport,
    ReplicaTransport,
    SocketTransport,
    get_transport,
    list_transports,
)
from repro.serving.workload import (
    AvatarWorkload,
    canned_workload,
    replay_workload,
    run_serving_session,
    saturation_workload,
    serve_workload,
)


def serve_from_result(
    result: FcadResult,
    avatars: int = 16,
    replicas: int = 1,
    policy: str | SchedulingPolicy = "fifo",
    frames_per_avatar: int = 30,
    avatar_fps: float = 30.0,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (),
    jitter_ms: float = 0.0,
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    seed: int = 0,
    sim_frames: int = 8,
    real_time: bool = False,
    profile: "FrameLatencyProfile | None" = None,
    transport: str | ReplicaTransport = "inprocess",
    chaos: ChaosPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> ServingReport:
    """``FCad.run`` → serving report, in one call.

    Samples the design's per-frame latency from the cycle-accurate
    simulator (pass a ``profile`` you already sampled to skip that run),
    deploys ``replicas`` copies, and serves ``avatars`` concurrent frame
    streams (each at ``avatar_fps``, each frame due ``deadline_ms`` after
    it arrives — or its tier's budget when ``deadline_tiers`` is given)
    under the chosen policy.
    """
    pool = pool_from_result(
        result,
        replicas=replicas,
        max_batch=max_batch,
        sim_frames=sim_frames,
        profile=profile,
    )
    workload = AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / avatar_fps,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        jitter_ms=jitter_ms,
        seed=seed,
    )
    return serve_workload(
        pool,
        workload,
        policy=policy,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        real_time=real_time,
        transport=transport,
        chaos=chaos,
        recovery=recovery,
    )


def serve_from_results(
    results,
    avatars: int = 16,
    router: str | RoutingPolicy = "deadline",
    admission: AdmissionControl | bool | None = None,
    frames_per_avatar: int = 30,
    avatar_fps: float = 30.0,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (),
    jitter_ms: float = 0.0,
    seed: int = 0,
    sim_frames: int = 8,
    real_time: bool = False,
    chaos: ChaosPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> ServingReport:
    """Serve one workload on a heterogeneous cluster of explored designs.

    ``results`` is a sequence of ``(FcadResult, replicas)`` pairs (or
    ready :class:`GroupSpec`/:class:`ReplicaGroup` objects, passed
    through); each result becomes one replica group via
    :meth:`FcadResult.serving_group`, named ``group<i>`` unless the spec
    names it. The router assigns each frame to a group by its deadline
    budget; ``admission=True`` enables load shedding.
    """
    groups = []
    for index, entry in enumerate(results):
        if isinstance(entry, (GroupSpec, ReplicaGroup)):
            groups.append(entry)
            continue
        result, replicas = entry
        groups.append(
            result.serving_group(
                name=f"group{index}",
                replicas=replicas,
                sim_frames=sim_frames,
            )
        )
    workload = AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / avatar_fps,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        jitter_ms=jitter_ms,
        seed=seed,
    )
    return serve_cluster(
        groups,
        workload,
        router=router,
        admission=admission,
        real_time=real_time,
        chaos=chaos,
        recovery=recovery,
    )


__all__ = [
    "AdmissionControl",
    "AutoscalePolicy",
    "AvatarWorkload",
    "BatchScheduler",
    "ChaosFault",
    "ChaosPlan",
    "CircuitBreaker",
    "Cluster",
    "DeadlineTieredRouter",
    "DecodeRequest",
    "DecodeResponse",
    "EdfPolicy",
    "FairPolicy",
    "FifoPolicy",
    "GroupReport",
    "GroupSpec",
    "InProcessTransport",
    "LeastLoadedRouter",
    "RecoveryPolicy",
    "Replica",
    "ReplicaGroup",
    "ReplicaPool",
    "ReplicaTransport",
    "RequestTrace",
    "RoundRobinRouter",
    "RoutingPolicy",
    "SchedulingPolicy",
    "ServingReport",
    "SloTracker",
    "SocketTransport",
    "VirtualClockEventLoop",
    "canned_workload",
    "failover_route",
    "get_policy",
    "get_router",
    "get_transport",
    "health_summary",
    "list_policies",
    "list_routers",
    "list_shapes",
    "list_transports",
    "make_trace",
    "percentile",
    "pool_from_result",
    "replay_workload",
    "report_from_json",
    "report_to_json",
    "resolve_admission",
    "run_cluster_session",
    "run_serving_session",
    "run_session",
    "saturation_workload",
    "serve_cluster",
    "serve_from_result",
    "serve_from_results",
    "serve_trace",
    "serve_workload",
    "trace_from_workload",
]
