"""Avatar decode serving: async batching onto simulated accelerator replicas.

F-CAD's end product is an accelerator that decodes codec avatars for live
telepresence. This package is the *workload* layer on top of the design
flow: take a DSE-selected design, deploy N simulated replicas of it, and
serve decode requests from many concurrent avatars under latency SLOs —

- :mod:`~repro.serving.request`   — the request/response model;
- :mod:`~repro.serving.clock`     — virtual-clock asyncio (deterministic
  sessions) or real time;
- :mod:`~repro.serving.replica`   — replicas driven by cycle-accurate
  fill/steady-state latency profiles;
- :mod:`~repro.serving.policies`  — FIFO / deadline-EDF / per-avatar
  fairness batch selection;
- :mod:`~repro.serving.scheduler` — the async batching dispatcher;
- :mod:`~repro.serving.slo`       — p50/p95/p99 latency, deadline-miss
  rate, throughput, utilization;
- :mod:`~repro.serving.workload`  — multi-avatar frame streams.

End to end::

    from repro import FCad
    from repro.serving import serve_from_result

    result = FCad(network=..., device=...).run()
    report = serve_from_result(
        result, avatars=64, replicas=4, policy="edf", seed=0
    )
    print(report.render())
"""

from __future__ import annotations

from repro.fcad.flow import FcadResult
from repro.sim.runner import FrameLatencyProfile
from repro.serving.clock import VirtualClockEventLoop, run_session
from repro.serving.policies import (
    EdfPolicy,
    FairPolicy,
    FifoPolicy,
    SchedulingPolicy,
    get_policy,
    list_policies,
)
from repro.serving.replica import Replica, ReplicaPool, pool_from_result
from repro.serving.request import DecodeRequest, DecodeResponse
from repro.serving.scheduler import BatchScheduler
from repro.serving.slo import (
    ServingReport,
    SloTracker,
    percentile,
    report_from_json,
    report_to_json,
)
from repro.serving.workload import (
    AvatarWorkload,
    canned_workload,
    replay_workload,
    run_serving_session,
    saturation_workload,
    serve_workload,
)


def serve_from_result(
    result: FcadResult,
    avatars: int = 16,
    replicas: int = 1,
    policy: str | SchedulingPolicy = "fifo",
    frames_per_avatar: int = 30,
    avatar_fps: float = 30.0,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (),
    jitter_ms: float = 0.0,
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    seed: int = 0,
    sim_frames: int = 8,
    real_time: bool = False,
    profile: "FrameLatencyProfile | None" = None,
) -> ServingReport:
    """``FCad.run`` → serving report, in one call.

    Samples the design's per-frame latency from the cycle-accurate
    simulator (pass a ``profile`` you already sampled to skip that run),
    deploys ``replicas`` copies, and serves ``avatars`` concurrent frame
    streams (each at ``avatar_fps``, each frame due ``deadline_ms`` after
    it arrives — or its tier's budget when ``deadline_tiers`` is given)
    under the chosen policy.
    """
    pool = pool_from_result(
        result,
        replicas=replicas,
        max_batch=max_batch,
        sim_frames=sim_frames,
        profile=profile,
    )
    workload = AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / avatar_fps,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        jitter_ms=jitter_ms,
        seed=seed,
    )
    return serve_workload(
        pool,
        workload,
        policy=policy,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        real_time=real_time,
    )


__all__ = [
    "AvatarWorkload",
    "BatchScheduler",
    "DecodeRequest",
    "DecodeResponse",
    "EdfPolicy",
    "FairPolicy",
    "FifoPolicy",
    "Replica",
    "ReplicaPool",
    "SchedulingPolicy",
    "ServingReport",
    "SloTracker",
    "VirtualClockEventLoop",
    "canned_workload",
    "get_policy",
    "list_policies",
    "percentile",
    "pool_from_result",
    "replay_workload",
    "report_from_json",
    "report_to_json",
    "run_serving_session",
    "run_session",
    "saturation_workload",
    "serve_from_result",
    "serve_workload",
]
