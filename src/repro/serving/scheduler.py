"""The async decode scheduler: queue, batching window, replica dispatch.

One dispatcher task owns the waiting queue. Whenever requests are waiting
it (optionally) holds a short *batching window* so frames arriving close
together coalesce, acquires a free replica from the pool (blocking while
all replicas are busy — the saturation backpressure), asks the policy for
the next batch, and hands it to the replica through the group's
:class:`~repro.serving.transport.ReplicaTransport` (in-process by
default; a socket-served subprocess for remote replicas). Each frame's
response is resolved at its own finish time, so callers see per-frame
latencies, not per-batch ones.

Everything is single-threaded asyncio with deterministic tie-breaking; on
the virtual clock (see :mod:`repro.serving.clock`) an entire session is a
pure function of its inputs.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.serving.clock import now_ms, sleep_ms, sleep_until_ms
from repro.serving.policies import SchedulingPolicy, get_policy
from repro.serving.replica import Replica, ReplicaPool
from repro.serving.request import DecodeRequest, DecodeResponse
from repro.serving.slo import SloTracker
from repro.serving.transport import ReplicaTransport, get_transport


class BatchScheduler:
    """Batches decode requests onto a pool of simulated replicas."""

    def __init__(
        self,
        pool: ReplicaPool,
        policy: str | SchedulingPolicy = "fifo",
        batch_window_ms: float = 2.0,
        max_batch: int | None = None,
        tracker: SloTracker | None = None,
        transport: str | ReplicaTransport = "inprocess",
        group: str = "",
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch window must be >= 0")
        self.pool = pool
        self.policy = get_policy(policy)
        self.transport = get_transport(transport)
        self.group = group
        self.batch_window_ms = batch_window_ms
        self.max_batch = (
            min(max_batch, pool.max_batch)
            if max_batch is not None
            else pool.max_batch
        )
        if self.max_batch < 1:
            raise ValueError("max batch must be >= 1")
        self.tracker = tracker if tracker is not None else SloTracker(0.0)
        self._queue: list[DecodeRequest] = []
        self._futures: dict[int, asyncio.Future[DecodeResponse]] = {}
        self._request_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._arrived: asyncio.Event | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._inflight: set[asyncio.Task[None]] = set()
        self._inflight_frames = 0
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the pool and launch the dispatcher (call inside a session)."""
        self.pool.open()
        self.transport.open(self.pool)
        self._arrived = asyncio.Event()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def submit_nowait(
        self, avatar_id: int, frame_index: int, deadline_rel_ms: float
    ) -> asyncio.Future[DecodeResponse]:
        """Enqueue one decode request; resolve when the frame is decoded."""
        assert self._arrived is not None, "scheduler not started"
        if self._closed:
            raise RuntimeError("scheduler is closed")
        arrival = now_ms()
        request = DecodeRequest(
            request_id=next(self._request_ids),
            avatar_id=avatar_id,
            frame_index=frame_index,
            arrival_ms=arrival,
            deadline_ms=arrival + deadline_rel_ms,
        )
        future: asyncio.Future[DecodeResponse] = (
            asyncio.get_running_loop().create_future()
        )
        self._futures[request.request_id] = future
        self._queue.append(request)
        self.tracker.record_submit()
        self._arrived.set()
        return future

    async def submit(
        self, avatar_id: int, frame_index: int, deadline_rel_ms: float
    ) -> DecodeResponse:
        return await self.submit_nowait(
            avatar_id, frame_index, deadline_rel_ms
        )

    async def close(self) -> None:
        """Drain the queue, retire in-flight batches, stop the dispatcher."""
        self._closed = True
        assert self._arrived is not None and self._dispatcher is not None
        self._arrived.set()
        await self._dispatcher
        if self._inflight:
            await asyncio.gather(*self._inflight)
        self.transport.close()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight_frames(self) -> int:
        """Frames dispatched to replicas but not yet finished.

        Together with :attr:`queue_depth` this is the group backlog the
        router and admission controller base their wait estimates on.
        """
        return self._inflight_frames

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._arrived is not None
        declines = 0
        while True:
            while not self._queue:
                if self._closed:
                    return
                self._arrived.clear()
                await self._arrived.wait()
            if 0 < len(self._queue) < self.max_batch and self.batch_window_ms:
                await sleep_ms(self.batch_window_ms)
            replica = await self.pool.acquire()
            batch = self.policy.select(
                self._queue, now_ms(), min(self.max_batch, replica.max_batch)
            )
            if not batch:
                # A policy may decline to form a batch (e.g. it is
                # holding out for a specific avatar's frame). Re-poll
                # once — many policies self-heal on the next call — then
                # park until the world changes: a new arrival or an
                # in-flight batch finishing. The pre-fix loop released
                # and immediately re-acquired the same replica, busy-
                # spinning forever without advancing the virtual clock.
                self.pool.release(replica)
                declines += 1
                if declines < 2:
                    continue
                declines = 0
                if self._closed:
                    return
                self._arrived.clear()
                arrival = asyncio.get_running_loop().create_task(
                    self._arrived.wait()
                )
                await asyncio.wait(
                    {arrival, *self._inflight},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not arrival.done():
                    arrival.cancel()
                continue
            declines = 0
            chosen = {request.request_id for request in batch}
            self._queue = [
                r for r in self._queue if r.request_id not in chosen
            ]
            self._inflight_frames += len(batch)
            task = asyncio.get_running_loop().create_task(
                self._serve(replica, batch)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _serve(
        self, replica: Replica, batch: list[DecodeRequest]
    ) -> None:
        start = now_ms()
        try:
            finishes = await self.transport.decode(replica, start, len(batch))
        except BaseException as exc:
            # A dead transport (e.g. the socket-served replica subprocess
            # crashing mid-session) must fail the session loudly, not
            # hang it: resolve the batch's futures with the error so the
            # waiting avatar clients unblock and propagate it. The
            # futures own the exception — re-raising here would only add
            # never-retrieved-task noise on top.
            for request in batch:
                future = self._futures.pop(request.request_id, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
                    # Mark the exception observed: awaiting clients still
                    # re-raise it, but a client torn down before its
                    # await (the session is already failing) must not
                    # leave "exception was never retrieved" debris whose
                    # GC-time handlers can fire mid-import elsewhere.
                    future.exception()
            self._inflight_frames -= len(batch)
            self.pool.release(replica)
            return
        batch_id = next(self._batch_ids)
        self.tracker.record_batch(len(batch))
        for request, finish in zip(batch, finishes):
            await sleep_until_ms(finish)
            response = DecodeResponse(
                request=request,
                replica_id=replica.replica_id,
                batch_id=batch_id,
                batch_size=len(batch),
                start_ms=start,
                finish_ms=finish,
                group=self.group,
            )
            self.tracker.record(response)
            self._inflight_frames -= 1
            self._futures.pop(request.request_id).set_result(response)
        self.pool.release(replica)


__all__ = ["BatchScheduler"]
