"""The async decode scheduler: queue, batching window, replica dispatch.

One dispatcher task owns the waiting queue. Whenever requests are waiting
it (optionally) holds a short *batching window* so frames arriving close
together coalesce, acquires a free replica from the pool (blocking while
all replicas are busy — the saturation backpressure), asks the policy for
the next batch, and hands it to the replica through the group's
:class:`~repro.serving.transport.ReplicaTransport` (in-process by
default; a socket-served subprocess for remote replicas). Each frame's
response is resolved at its own finish time, so callers see per-frame
latencies, not per-batch ones.

Everything is single-threaded asyncio with deterministic tie-breaking; on
the virtual clock (see :mod:`repro.serving.clock`) an entire session is a
pure function of its inputs.

Faults and recovery: a :class:`~repro.serving.chaos.ChaosPlan` injects
deterministic replica faults (crash / permanent death / stall /
degradation) at dispatch time, and *any* failure — injected or a real
transport error — flows through one path
(:meth:`BatchScheduler._on_replica_failure`): the replica is marked
dead, its batch's frames re-enqueue within their retry budget (keeping
their original arrival and deadline, so elapsed latency is charged in
full), the per-group circuit breaker counts the failure, and an optional
cold replacement replica is provisioned after a delay. With no chaos
plan and default :class:`~repro.serving.chaos.RecoveryPolicy` none of
this machinery runs and sessions are bit-identical to the pre-chaos
scheduler.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.serving.chaos import ChaosPlan, CircuitBreaker, RecoveryPolicy
from repro.serving.clock import now_ms, sleep_ms, sleep_until_ms
from repro.serving.policies import SchedulingPolicy, get_policy
from repro.serving.replica import Replica, ReplicaPool
from repro.serving.request import DecodeRequest, DecodeResponse
from repro.serving.slo import SloTracker
from repro.serving.transport import ReplicaTransport, get_transport


class BatchScheduler:
    """Batches decode requests onto a pool of simulated replicas."""

    def __init__(
        self,
        pool: ReplicaPool,
        policy: str | SchedulingPolicy = "fifo",
        batch_window_ms: float = 2.0,
        max_batch: int | None = None,
        tracker: SloTracker | None = None,
        transport: str | ReplicaTransport = "inprocess",
        group: str = "",
        chaos: ChaosPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch window must be >= 0")
        self.pool = pool
        self.policy = get_policy(policy)
        self.transport = get_transport(transport)
        self.group = group
        self.batch_window_ms = batch_window_ms
        self.max_batch = (
            min(max_batch, pool.max_batch)
            if max_batch is not None
            else pool.max_batch
        )
        if self.max_batch < 1:
            raise ValueError("max batch must be >= 1")
        self.tracker = tracker if tracker is not None else SloTracker(0.0)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.breaker = CircuitBreaker(self.recovery.breaker_threshold)
        self._chaos = chaos.states(group) if chaos else None
        self._attempts: dict[int, int] = {}
        self._replacements_pending = 0
        self._exhausted = False
        self._queue: list[DecodeRequest] = []
        self._futures: dict[int, asyncio.Future[DecodeResponse]] = {}
        self._request_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._arrived: asyncio.Event | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._inflight: set[asyncio.Task[None]] = set()
        self._inflight_frames = 0
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the pool and launch the dispatcher (call inside a session)."""
        self.pool.open()
        self.transport.open(self.pool)
        self._arrived = asyncio.Event()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def submit_nowait(
        self, avatar_id: int, frame_index: int, deadline_rel_ms: float
    ) -> asyncio.Future[DecodeResponse]:
        """Enqueue one decode request; resolve when the frame is decoded."""
        assert self._arrived is not None, "scheduler not started"
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if self._exhausted:
            # Every replica is dead and no replacement is coming: fail
            # the frame at the front door (a resolved-``None`` future,
            # like a shed request — a failure, never a hang).
            self.tracker.record_submit()
            self.tracker.record_failed()
            dead_future: asyncio.Future[DecodeResponse] = (
                asyncio.get_running_loop().create_future()
            )
            dead_future.set_result(None)  # type: ignore[arg-type]
            return dead_future
        arrival = now_ms()
        request = DecodeRequest(
            request_id=next(self._request_ids),
            avatar_id=avatar_id,
            frame_index=frame_index,
            arrival_ms=arrival,
            deadline_ms=arrival + deadline_rel_ms,
        )
        future: asyncio.Future[DecodeResponse] = (
            asyncio.get_running_loop().create_future()
        )
        self._futures[request.request_id] = future
        self._queue.append(request)
        self.tracker.record_submit()
        self._arrived.set()
        return future

    async def submit(
        self, avatar_id: int, frame_index: int, deadline_rel_ms: float
    ) -> DecodeResponse:
        return await self.submit_nowait(
            avatar_id, frame_index, deadline_rel_ms
        )

    async def close(self) -> None:
        """Drain the queue, retire in-flight batches, stop the dispatcher."""
        self._closed = True
        assert self._arrived is not None and self._dispatcher is not None
        self._arrived.set()
        await self._dispatcher
        # Drain until quiet: an in-flight batch failing during the drain
        # can spawn a replacement-provisioning task, so loop rather than
        # gathering a single snapshot.
        while self._inflight:
            await asyncio.gather(*list(self._inflight))
        self.transport.close()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight_frames(self) -> int:
        """Frames dispatched to replicas but not yet finished.

        Together with :attr:`queue_depth` this is the group backlog the
        router and admission controller base their wait estimates on.
        """
        return self._inflight_frames

    @property
    def available(self) -> bool:
        """Can this scheduler accept new traffic right now?

        ``False`` while the circuit breaker is open or once the pool is
        exhausted for good — the cluster front door fails over to
        another group (or fails the frame) instead of routing here.
        """
        return not self.breaker.open and not self._exhausted

    @property
    def replacements_pending(self) -> int:
        return self._replacements_pending

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._arrived is not None
        declines = 0
        while True:
            while not self._queue:
                if self._closed:
                    return
                self._arrived.clear()
                await self._arrived.wait()
            if 0 < len(self._queue) < self.max_batch and self.batch_window_ms:
                await sleep_ms(self.batch_window_ms)
            replica = await self.pool.acquire()
            if replica is None:
                # Poisoned: the pool is exhausted for good. Fail whatever
                # is still queued and retire the dispatcher; new submits
                # fail at the front door.
                for request in self._queue:
                    self._fail_request(request)
                self._queue.clear()
                return
            batch = self.policy.select(
                self._queue, now_ms(), min(self.max_batch, replica.max_batch)
            )
            if not batch:
                # A policy may decline to form a batch (e.g. it is
                # holding out for a specific avatar's frame). Re-poll
                # once — many policies self-heal on the next call — then
                # park until the world changes: a new arrival or an
                # in-flight batch finishing. The pre-fix loop released
                # and immediately re-acquired the same replica, busy-
                # spinning forever without advancing the virtual clock.
                self.pool.release(replica)
                declines += 1
                if declines < 2:
                    continue
                declines = 0
                if self._closed:
                    return
                self._arrived.clear()
                arrival = asyncio.get_running_loop().create_task(
                    self._arrived.wait()
                )
                await asyncio.wait(
                    {arrival, *self._inflight},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not arrival.done():
                    arrival.cancel()
                continue
            declines = 0
            chosen = {request.request_id for request in batch}
            self._queue = [
                r for r in self._queue if r.request_id not in chosen
            ]
            self._inflight_frames += len(batch)
            task = asyncio.get_running_loop().create_task(
                self._serve(replica, batch)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _serve(
        self, replica: Replica, batch: list[DecodeRequest]
    ) -> None:
        start = now_ms()
        outcome = None
        state = self._chaos.get(replica.replica_id) if self._chaos else None
        if state is not None:
            outcome = state.on_dispatch(start)
            replica.latency_factor = outcome.latency_factor
            if outcome.crashed:
                # The replica dies serving this batch. Its would-be
                # finish is the failure-*detection* latency: the
                # scheduler notices when the batch should have
                # completed, and the frames' elapsed time is charged in
                # full on retry.
                detect = replica.preview_service(start, len(batch))[-1]
                await sleep_until_ms(detect)
                self._on_replica_failure(replica, batch)
                return
            if outcome.latency_factor != 1.0 and replica.health == "up":
                replica.health = "degraded"
        try:
            finishes = await self.transport.decode(replica, start, len(batch))
        except BaseException:
            # A transport error (the socket subprocess dying, a remote
            # server gone past its reconnect budget) is a *replica*
            # fault, not a session failure: the batch re-enqueues within
            # its retry budget and the damage lands in the report as
            # failed/retry counters and replica health — never a hang,
            # never a lost frame without a trace.
            self._on_replica_failure(replica, batch)
            return
        batch_id = next(self._batch_ids)
        self.tracker.record_batch(len(batch))
        if outcome is not None and outcome.latency_factor != 1.0:
            self.tracker.add_degraded_time(finishes[-1] - start)
        hedge_replica: Replica | None = None
        hedge_finishes: tuple[float, ...] | None = None
        if self.recovery.hedge and any(
            finish > request.deadline_ms
            for request, finish in zip(batch, finishes)
        ):
            # Predicted to blow a deadline: duplicate the batch to a
            # second replica if one is free right now (never block for
            # one). First finish wins per frame; both replicas are
            # charged their full occupancy.
            hedge_replica = self.pool.try_acquire()
        if hedge_replica is not None:
            hedge_finishes = await self._dispatch_hedge(
                hedge_replica, start, len(batch)
            )
            if hedge_finishes is None:
                hedge_replica = None  # the hedge replica itself crashed
        for index, request in enumerate(batch):
            finish = finishes[index]
            winner = replica.replica_id
            if hedge_finishes is not None and hedge_finishes[index] < finish:
                finish = hedge_finishes[index]
                winner = hedge_replica.replica_id
                self.tracker.record_hedge_win()
            await sleep_until_ms(finish)
            response = DecodeResponse(
                request=request,
                replica_id=winner,
                batch_id=batch_id,
                batch_size=len(batch),
                start_ms=start,
                finish_ms=finish,
                group=self.group,
            )
            self.tracker.record(response)
            self._inflight_frames -= 1
            self._attempts.pop(request.request_id, None)
            self._futures.pop(request.request_id).set_result(response)
        self.breaker.record_success()
        stall_ms = outcome.stall_ms if outcome is not None else 0.0
        if hedge_replica is None and not stall_ms:
            self.pool.release(replica)
            return
        if stall_ms:
            # Transient stall: the replica is held out of rotation past
            # its finish (health degraded while stalled).
            self.tracker.add_degraded_time(stall_ms)
            if replica.health == "up":
                replica.health = "degraded"
        releases: list[tuple[float, Replica]] = [
            (finishes[-1] + stall_ms, replica)
        ]
        if hedge_replica is not None:
            releases.append((hedge_finishes[-1], hedge_replica))
        for at, freed in sorted(releases, key=lambda item: item[0]):
            await sleep_until_ms(at)
            if (
                stall_ms
                and freed is replica
                and freed.health == "degraded"
                and freed.latency_factor == 1.0
            ):
                freed.health = "up"
            self.pool.release(freed)

    async def _dispatch_hedge(
        self, hedge: Replica, start: float, size: int
    ) -> tuple[float, ...] | None:
        """Duplicate a batch onto ``hedge``; ``None`` if the hedge died.

        A crashed hedge costs nothing but the replica: the primary is
        still serving every frame, so no retry, no breaker failure —
        the loss is detected at the hedge's would-be finish.
        """
        state = self._chaos.get(hedge.replica_id) if self._chaos else None
        if state is not None:
            outcome = state.on_dispatch(start)
            hedge.latency_factor = outcome.latency_factor
            if outcome.crashed:
                detect = hedge.preview_service(start, size)[-1]
                task = asyncio.get_running_loop().create_task(
                    self._lose_replica_at(detect, hedge)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                return None
            if outcome.latency_factor != 1.0 and hedge.health == "up":
                hedge.health = "degraded"
        try:
            finishes = await self.transport.decode(hedge, start, size)
        except BaseException:
            self._lose_replica_now(hedge)
            return None
        self.tracker.record_hedge()
        return finishes

    async def _lose_replica_at(self, at: float, replica: Replica) -> None:
        await sleep_until_ms(at)
        self._lose_replica_now(replica)

    def _lose_replica_now(self, replica: Replica) -> None:
        if replica.health != "dead":
            self.pool.mark_dead(replica)
            self.tracker.record_replica_lost()
            self._schedule_replacement()
        self._check_exhausted()

    # ------------------------------------------------------------------
    def _on_replica_failure(
        self, replica: Replica, batch: list[DecodeRequest]
    ) -> None:
        """One dispatched batch failed and took its replica with it.

        Called at the failure-detection time. The replica leaves the
        rotation for good; the batch's frames re-enqueue (keeping their
        original arrival and deadline) within ``max_retries``, the
        breaker counts the failure, and if the group can never serve
        again everything still queued fails immediately — a frame always
        resolves, one way or the other.
        """
        self._lose_replica_now(replica)
        self.breaker.record_failure()
        self._inflight_frames -= len(batch)
        recoverable = (
            self.pool.alive > 0 or self._replacements_pending > 0
        )
        for request in batch:
            attempts = self._attempts.get(request.request_id, 0) + 1
            if recoverable and attempts <= self.recovery.max_retries:
                self._attempts[request.request_id] = attempts
                self.tracker.record_retry()
                self._queue.append(request)
            else:
                self._fail_request(request)
        if self._queue and recoverable:
            assert self._arrived is not None
            self._arrived.set()
        self._check_exhausted()

    def _check_exhausted(self) -> None:
        if (
            self._exhausted
            or self.pool.alive > 0
            or self._replacements_pending > 0
        ):
            return
        self._exhausted = True
        for request in self._queue:
            self._fail_request(request)
        self._queue.clear()
        self.pool.poison()

    def _fail_request(self, request: DecodeRequest) -> None:
        self._attempts.pop(request.request_id, None)
        self.tracker.record_failed()
        future = self._futures.pop(request.request_id, None)
        if future is not None and not future.done():
            future.set_result(None)  # type: ignore[arg-type]

    def _schedule_replacement(self) -> None:
        if self.recovery.replace_after_ms is None:
            return
        self._replacements_pending += 1
        task = asyncio.get_running_loop().create_task(self._replace_later())
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _replace_later(self) -> None:
        """Provision a cold replacement after the provisioning delay.

        Mirrors the heap engine's autoscale provisioning: the replica
        joins the free list cold (its first batch pays the full
        first-frame fill), at a deterministic virtual time.
        """
        assert self.recovery.replace_after_ms is not None
        await sleep_ms(self.recovery.replace_after_ms)
        self._replacements_pending -= 1
        self.pool.add_replica()
        self.tracker.record_replica_replaced()


__all__ = ["BatchScheduler"]
