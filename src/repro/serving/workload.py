"""Multi-avatar decode workloads and the end-to-end serving session.

A workload is N concurrent avatars, each streaming frames at a target
cadence (e.g. 30 FPS per avatar) with seeded arrival jitter — the shape
of a telepresence call: every participant's encoder emits latent codes on
its own clock, and the receiver must decode all of them before their
display deadlines.

:func:`serve_workload` wires the whole layer together: replica pool →
scheduler → avatar clients → :class:`~repro.serving.slo.ServingReport`.
On the default virtual clock the run is deterministic: same seed, same
report, bit for bit.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.sim.runner import FrameLatencyProfile

from repro.serving.clock import (
    anchor_session_clock,
    now_ms,
    run_session,
    sleep_until_ms,
)
from repro.serving.policies import SchedulingPolicy
from repro.serving.replica import ReplicaPool
from repro.serving.scheduler import BatchScheduler
from repro.serving.slo import ServingReport, SloTracker


@dataclass(frozen=True)
class AvatarWorkload:
    """N avatars streaming frames at a per-avatar cadence."""

    avatars: int
    frames_per_avatar: int
    frame_interval_ms: float  # 1000 / per-avatar FPS
    deadline_ms: float  # relative decode budget per frame
    jitter_ms: float = 0.0  # uniform arrival jitter, +/- this much
    seed: int = 0
    #: Optional per-avatar deadline budgets, assigned round-robin (avatar
    #: ``i`` gets ``deadline_tiers[i % len]``). Mixed tiers model a call
    #: where the active speakers need tight latency while background
    #: participants tolerate more — the regime where deadline-EDF beats
    #: FIFO. Empty means every avatar uses ``deadline_ms``.
    deadline_tiers: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.avatars < 1 or self.frames_per_avatar < 1:
            raise ValueError("need at least one avatar and one frame")
        if self.frame_interval_ms <= 0 or self.deadline_ms <= 0:
            raise ValueError("frame interval and deadline must be positive")
        if not 0 <= self.jitter_ms < self.frame_interval_ms:
            raise ValueError("jitter must be in [0, frame interval)")
        if any(tier <= 0 for tier in self.deadline_tiers):
            raise ValueError("deadline tiers must be positive")

    @property
    def total_frames(self) -> int:
        return self.avatars * self.frames_per_avatar

    @classmethod
    def for_duration(
        cls,
        duration_s: float,
        avatars: int,
        frame_interval_ms: float,
        deadline_ms: float,
        **kwargs,
    ) -> "AvatarWorkload":
        """Size a workload by session length instead of frame count.

        ``duration_s`` seconds of streaming at the per-avatar cadence —
        the natural knob for "serve a 30-second call" style sessions
        (``repro serve --duration`` routes through here).
        """
        return cls(
            avatars=avatars,
            frames_per_avatar=frames_for_duration(
                duration_s, 1000.0 / frame_interval_ms
            ),
            frame_interval_ms=frame_interval_ms,
            deadline_ms=deadline_ms,
            **kwargs,
        )

    def deadline_for(self, avatar_id: int) -> float:
        if self.deadline_tiers:
            return self.deadline_tiers[avatar_id % len(self.deadline_tiers)]
        return self.deadline_ms

    def avatar_rng(self, avatar_id: int) -> random.Random:
        # One independent stream per avatar, stable in the session seed.
        return random.Random(self.seed * 1_000_003 + avatar_id)


def frames_for_duration(duration_s: float, avatar_fps: float) -> int:
    """Frames one avatar streams in ``duration_s`` seconds at its cadence.

    The single place the duration→frame-count rule lives, shared by
    :meth:`AvatarWorkload.for_duration` and ``repro serve --duration``.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return max(1, round(duration_s * avatar_fps))


def canned_workload(
    avatars: int = 8,
    frames_per_avatar: int = 12,
    avatar_fps: float = 30.0,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (),
    jitter_ms: float = 0.0,
    seed: int = 0,
) -> AvatarWorkload:
    """A *fixed* workload, identical no matter what design serves it.

    The counterpart of :func:`saturation_workload` (which sizes the fleet
    off the design's measured capacity): when the point is to *compare*
    designs — the serving-driven DSE replays every candidate against the
    same traffic — the workload must not adapt to the design under test,
    or every candidate would see a different question.

    The defaults deliberately mirror
    :class:`~repro.dse.objective.ServingOracle`'s, so replaying a
    DSE-selected design with a bare ``replay_workload(profile)`` measures
    the same traffic the search scored it under.
    """
    return AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / avatar_fps,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        jitter_ms=jitter_ms,
        seed=seed,
    )


def replay_workload(
    profile: "FrameLatencyProfile",
    workload: AvatarWorkload | None = None,
    replicas: int = 2,
    policy: str | SchedulingPolicy = "edf",
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    real_time: bool = False,
    companions: "Sequence | None" = None,
    router: str = "deadline",
    admission=None,
    group_name: str = "candidate",
) -> ServingReport:
    """Replay a multi-avatar workload on replicas of one design profile.

    The workload-replay entry point that needs no :class:`FcadResult` and
    no fresh simulation — just a design's
    :class:`~repro.sim.runner.FrameLatencyProfile`. This is what the
    serving-driven DSE calls per candidate
    (:class:`~repro.dse.objective.ServingOracle`), and what ad-hoc "how
    would this design serve workload X" questions should use outside
    ``repro serve``. Defaults to the :func:`canned_workload` on the
    deterministic virtual clock: same profile + same workload → the same
    report, bit for bit.

    ``companions`` places the profile *inside a heterogeneous cluster*:
    each companion is a :class:`~repro.serving.cluster.GroupSpec` for a
    fixed group serving alongside the profile's own group (named
    ``group_name``), with ``router``/``admission`` steering traffic
    between them. That is how a DSE candidate is scored as a member of a
    mixed cluster rather than as a lone pool. ``admission`` alone (no
    companions) also routes through the cluster path, so a single-group
    replay can exercise load shedding too.
    """
    if workload is None:
        workload = canned_workload()
    if companions or admission:
        from repro.serving.cluster import GroupSpec, serve_cluster

        own_group = GroupSpec(
            name=group_name,
            profile=profile,
            replicas=replicas,
            policy=policy,
            batch_window_ms=batch_window_ms,
            max_batch=max_batch if max_batch is not None else 8,
        )
        return serve_cluster(
            [own_group, *(companions or ())],
            workload,
            router=router,
            admission=admission,
            real_time=real_time,
        )
    pool = ReplicaPool(
        profile,
        replicas=replicas,
        max_batch=max_batch if max_batch is not None else 8,
    )
    return serve_workload(
        pool,
        workload,
        policy=policy,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        real_time=real_time,
    )


def saturation_workload(
    profile: "FrameLatencyProfile",
    replicas: int,
    saturation: float = 0.85,
    avatar_fps: float = 30.0,
    frames_per_avatar: int = 30,
    deadline_ms: float = 50.0,
    deadline_tiers: tuple[float, ...] = (20.0, 60.0),
    jitter_ms: float = 8.0,
    seed: int = 0,
) -> AvatarWorkload:
    """The canonical benchmark workload, sized off measured capacity.

    The avatar fleet is scaled so the offered load is ``saturation`` of
    the pool's steady-state capacity — the regime where scheduling policy
    decides how many frames make their deadlines (well under it nothing
    misses; far over it everything does). Deriving the fleet from the
    profile keeps ``BENCH_serving.json`` and the pytest benchmark in the
    same regime even as the cost models evolve, and keeps the two
    benchmark surfaces measuring one and the same workload.
    """
    capacity_fps = replicas * profile.steady_fps
    avatars = max(2, round(saturation * capacity_fps / avatar_fps))
    return AvatarWorkload(
        avatars=avatars,
        frames_per_avatar=frames_per_avatar,
        frame_interval_ms=1000.0 / avatar_fps,
        deadline_ms=deadline_ms,
        deadline_tiers=deadline_tiers,
        jitter_ms=jitter_ms,
        seed=seed,
    )


async def _avatar_client(
    scheduler, workload: AvatarWorkload, avatar_id: int
) -> None:
    """Stream one avatar's frames at its cadence, without self-throttling.

    Like a live camera, the client issues frames on its own clock whether
    or not earlier frames finished — backpressure shows up as queueing
    latency and deadline misses, not as a slower source. ``scheduler`` is
    anything with ``submit_nowait`` — a
    :class:`~repro.serving.scheduler.BatchScheduler` or a
    :class:`~repro.serving.cluster.Cluster` front door (whose shed
    requests resolve to ``None``: a dropped frame, never a hang).
    """
    rng = workload.avatar_rng(avatar_id)
    deadline_ms = workload.deadline_for(avatar_id)
    next_arrival = rng.uniform(0.0, workload.frame_interval_ms)
    pending = []
    for frame in range(workload.frames_per_avatar):
        await sleep_until_ms(next_arrival)
        pending.append(
            scheduler.submit_nowait(avatar_id, frame, deadline_ms)
        )
        jitter = (
            rng.uniform(-workload.jitter_ms, workload.jitter_ms)
            if workload.jitter_ms
            else 0.0
        )
        next_arrival += workload.frame_interval_ms + jitter
    # return_exceptions + explicit re-raise: when a replica fails a whole
    # batch, every frame's future holds the error. Retrieving all of them
    # before raising keeps the failure loud *and* clean — no "exception
    # was never retrieved" debris from the frames behind the first one.
    outcomes = await asyncio.gather(*pending, return_exceptions=True)
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            raise outcome


async def run_serving_session(
    pool: ReplicaPool,
    workload: AvatarWorkload,
    policy: str | SchedulingPolicy = "fifo",
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    transport: str = "inprocess",
    chaos=None,
    recovery=None,
) -> ServingReport:
    """Serve one workload on an open event loop and report the SLOs."""
    anchor_session_clock()
    tracker = SloTracker(
        deadline_ms=workload.deadline_ms,
        deadline_tiers_ms=workload.deadline_tiers,
    )
    scheduler = BatchScheduler(
        pool,
        policy=policy,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        tracker=tracker,
        transport=transport,
        chaos=chaos,
        recovery=recovery,
    )
    scheduler.start()
    clients = [
        asyncio.get_running_loop().create_task(
            _avatar_client(scheduler, workload, avatar_id)
        )
        for avatar_id in range(workload.avatars)
    ]
    await asyncio.gather(*clients)
    await scheduler.close()
    duration_ms = now_ms()
    return tracker.report(
        policy=scheduler.policy.name,
        avatars=workload.avatars,
        duration_ms=duration_ms,
        replica_utilization=pool.utilizations(duration_ms),
        max_batch=scheduler.max_batch,
        batch_window_ms=scheduler.batch_window_ms,
        reconnects=getattr(scheduler.transport, "reconnects", 0),
    )


def serve_workload(
    pool: ReplicaPool,
    workload: AvatarWorkload,
    policy: str | SchedulingPolicy = "fifo",
    batch_window_ms: float = 2.0,
    max_batch: int | None = None,
    real_time: bool = False,
    transport: str = "inprocess",
    chaos=None,
    recovery=None,
) -> ServingReport:
    """Run a whole serving session; deterministic on the virtual clock."""
    return run_session(
        run_serving_session(
            pool,
            workload,
            policy=policy,
            batch_window_ms=batch_window_ms,
            max_batch=max_batch,
            transport=transport,
            chaos=chaos,
            recovery=recovery,
        ),
        real_time=real_time,
    )


__all__ = [
    "AvatarWorkload",
    "canned_workload",
    "frames_for_duration",
    "replay_workload",
    "run_serving_session",
    "saturation_workload",
    "serve_workload",
]
