"""Heterogeneous serving clusters: replica groups + router + admission.

One :class:`ReplicaGroup` is N replicas of *one* design with its own
batching policy, window, capacity, and transport — e.g. a
latency-optimized design batching eagerly under EDF next to a big-batch
throughput design coalescing frames under FIFO. A :class:`Cluster` owns
several groups, a :mod:`routing policy <repro.serving.router>` that
assigns every request to a group, and optional
:mod:`admission control <repro.serving.admission>` that sheds requests
the chosen group cannot serve in time.

This is the architecture the single-pool
:class:`~repro.serving.scheduler.BatchScheduler` path grows into: a
cluster of one in-process group with no admission control behaves — SLO
for SLO, on the virtual clock — exactly like the plain scheduler, while
mixed clusters express the telepresence serving shapes F-CAD targets
(tight-deadline speakers on a low-latency tier, background participants
on a throughput tier, load shedding at saturation).

End to end::

    from repro.serving import Cluster, GroupSpec, serve_cluster

    report = serve_cluster(
        [
            GroupSpec("latency", fast_profile, replicas=1, policy="edf",
                      batch_window_ms=0.0),
            GroupSpec("throughput", batch_profile, replicas=3,
                      policy="fifo", batch_window_ms=4.0),
        ],
        workload,
        router="deadline",
        admission=True,
    )
    print(report.render())
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Sequence

from repro.serving.admission import AdmissionControl, resolve_admission
from repro.serving.chaos import ChaosPlan, RecoveryPolicy
from repro.serving.clock import anchor_session_clock, now_ms, run_session
from repro.serving.policies import SchedulingPolicy
from repro.serving.replica import ReplicaPool, health_summary
from repro.serving.request import DecodeResponse
from repro.serving.router import RoutingPolicy, failover_route, get_router
from repro.serving.scheduler import BatchScheduler
from repro.serving.slo import GroupReport, ServingReport, SloTracker
from repro.serving.transport import ReplicaTransport
from repro.sim.runner import FrameLatencyProfile


@dataclass(frozen=True)
class GroupSpec:
    """One replica group: N copies of one design plus its serving knobs.

    The frozen spec a :class:`ReplicaGroup` (coroutine path) or an
    event-heap engine group (:func:`~repro.serving.engine.serve_trace`)
    is built from. With autoscaling, ``replicas`` is the *initial* fleet
    size; the controller grows and shrinks it at session time.
    """

    #: Unique group name (appears in per-group SLO slices).
    name: str
    #: Per-frame fill/steady latency model of the group's design (ms).
    profile: FrameLatencyProfile
    #: Number of replicas deployed (initial count under autoscaling).
    replicas: int = 1
    #: Batch-selection policy: "fifo", "edf", "fair", or an instance.
    policy: "str | SchedulingPolicy" = "edf"
    #: How long (ms) the dispatcher holds a sub-capacity batch so
    #: co-arriving frames can coalesce; 0 dispatches eagerly.
    batch_window_ms: float = 2.0
    #: Most frames one batch may carry (frames, per replica dispatch).
    max_batch: int = 8
    #: How batches reach replicas: "inprocess" or "socket" (coroutine
    #: path only; the event-heap engine is in-process only).
    transport: "str | ReplicaTransport" = "inprocess"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a replica group needs a name")
        if self.replicas < 1:
            raise ValueError("a replica group needs at least one replica")


class ReplicaGroup:
    """A group's live state: pool, per-session scheduler, shed counter."""

    def __init__(self, spec: GroupSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.pool = ReplicaPool(
            spec.profile, replicas=spec.replicas, max_batch=spec.max_batch
        )
        self.scheduler: BatchScheduler | None = None
        self.tracker: SloTracker | None = None

    @property
    def replicas(self) -> int:
        """Replicas the routing/admission math should count on.

        The *live* fleet (never below one so backlog math stays finite)
        — dead replicas stop counting the moment their failure is
        detected, exactly like the heap engine's live-fleet accounting.
        Fault-free this is simply every deployed replica.
        """
        return max(1, self.pool.alive)

    @property
    def capacity_fps(self) -> float:
        """Steady-state frames/second of the whole group, pipelines warm."""
        return self.pool.capacity_fps

    @property
    def available(self) -> bool:
        """Whether the front door may route new traffic here."""
        if self.scheduler is None:
            return True
        return self.scheduler.available

    @property
    def backlog_frames(self) -> int:
        """Frames waiting in or dispatched by this group's scheduler."""
        if self.scheduler is None:
            return 0
        return self.scheduler.queue_depth + self.scheduler.inflight_frames

    def backlog_ms(self) -> float:
        """Estimated milliseconds until a frame admitted now starts service.

        The backlog drains at one frame per steady interval per replica —
        the same first-order model for every group, so routers can compare
        a big-batch group against a low-latency one on one scale.
        """
        profile = self.pool.profile
        return (
            self.backlog_frames * profile.steady_interval_ms / self.replicas
        )

    def unloaded_latency_ms(self) -> float:
        """Best-case response latency: empty queue, cold pipeline.

        Batching window plus cold fill — a static property of the group's
        design and configuration. The deadline-tiered router classifies
        requests against this: a budget below it can never be honoured
        here, however idle the group is.
        """
        profile = self.pool.profile
        return self.spec.batch_window_ms + profile.first_frame_ms

    def estimated_latency_ms(self) -> float:
        """Predicted response latency of a request admitted right now.

        Backlog drain, plus the batching window the dispatcher may hold,
        plus service: the cold fill latency when the group is idle (its
        pipelines will have drained by the time the frame lands) or one
        steady interval when it is busy.
        """
        profile = self.pool.profile
        service = (
            profile.first_frame_ms
            if self.backlog_frames == 0
            else profile.steady_interval_ms
        )
        return self.backlog_ms() + self.spec.batch_window_ms + service

    # ------------------------------------------------------------------
    def start(
        self,
        deadline_ms: float,
        deadline_tiers: tuple[float, ...],
        chaos: ChaosPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        """Open the group for one serving session (inside a session loop)."""
        self.tracker = SloTracker(
            deadline_ms=deadline_ms, deadline_tiers_ms=deadline_tiers
        )
        self.scheduler = BatchScheduler(
            self.pool,
            policy=self.spec.policy,
            batch_window_ms=self.spec.batch_window_ms,
            max_batch=self.spec.max_batch,
            tracker=self.tracker,
            transport=self.spec.transport,
            group=self.name,
            chaos=chaos,
            recovery=recovery,
        )
        self.scheduler.start()

    async def close(self) -> None:
        assert self.scheduler is not None
        await self.scheduler.close()

    def report(self, duration_ms: float) -> GroupReport:
        """This group's SLO slice of the finished session."""
        assert self.scheduler is not None and self.tracker is not None
        latencies = [r.latency_ms for r in self.tracker.responses]
        from repro.serving.slo import percentile

        utilizations = self.pool.utilizations(duration_ms)
        transport_health = getattr(self.scheduler.transport, "health", "")
        pool_health = health_summary(self.pool.replicas)
        return GroupReport(
            name=self.name,
            policy=self.scheduler.policy.name,
            transport=self.scheduler.transport.name,
            replicas=len(self.pool),
            max_batch=self.scheduler.max_batch,
            batch_window_ms=self.scheduler.batch_window_ms,
            submitted=self.tracker.submitted - self.tracker.shed,
            shed=self.tracker.shed,
            completed=len(self.tracker.responses),
            deadline_misses=sum(
                1 for r in self.tracker.responses if r.deadline_missed
            ),
            latency_p50_ms=percentile(latencies, 50),
            latency_p99_ms=percentile(latencies, 99),
            mean_batch_size=(
                sum(self.tracker.batch_sizes) / len(self.tracker.batch_sizes)
                if self.tracker.batch_sizes
                else 0.0
            ),
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            reconnects=getattr(self.scheduler.transport, "reconnects", 0),
            health=", ".join(
                part for part in (transport_health, pool_health) if part
            ),
            failed=self.tracker.failed,
            retries=self.tracker.retries,
            hedges=self.tracker.hedges,
            hedge_wins=self.tracker.hedge_wins,
            failovers=self.tracker.failovers,
            replicas_lost=self.tracker.replicas_lost,
            replicas_replaced=self.tracker.replicas_replaced,
            degraded_time_ms=self.tracker.degraded_time_ms,
        )


class Cluster:
    """Heterogeneous replica groups behind one deadline-aware front door."""

    def __init__(
        self,
        groups: Sequence[GroupSpec | ReplicaGroup],
        router: str | RoutingPolicy = "round-robin",
        admission: AdmissionControl | bool | None = None,
        chaos: ChaosPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        if not groups:
            raise ValueError("a cluster needs at least one replica group")
        self.groups = [
            group if isinstance(group, ReplicaGroup) else ReplicaGroup(group)
            for group in groups
        ]
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"replica group names must be unique: {names}")
        self.router = get_router(router)
        self.admission = resolve_admission(admission)
        self.chaos = chaos
        self.recovery = recovery

    def __len__(self) -> int:
        return len(self.groups)

    @property
    def replicas(self) -> int:
        """Total replica budget across all groups."""
        return sum(group.replicas for group in self.groups)

    # ------------------------------------------------------------------
    def start(
        self, deadline_ms: float, deadline_tiers: tuple[float, ...] = ()
    ) -> None:
        """Open every group for one serving session."""
        for group in self.groups:
            group.start(
                deadline_ms,
                deadline_tiers,
                chaos=self.chaos,
                recovery=self.recovery,
            )

    def submit_nowait(
        self, avatar_id: int, frame_index: int, deadline_rel_ms: float
    ) -> "asyncio.Future[DecodeResponse | None]":
        """Route one request; shed requests resolve immediately to ``None``.

        Duck-type compatible with
        :meth:`~repro.serving.scheduler.BatchScheduler.submit_nowait`, so
        the same avatar clients drive a plain scheduler or a cluster.

        Routing is failure-aware: when the chosen group's circuit
        breaker is open or its pool is exhausted, the request fails over
        to the best available group (counted as a ``failover`` on the
        receiving group); when no group is available it fails at the
        front door — resolved ``None``, counted ``failed``, never a
        hang.
        """
        preferred = self.router.route(deadline_rel_ms, now_ms(), self.groups)
        index = failover_route(
            preferred,
            deadline_rel_ms,
            self.groups,
            [g.available for g in self.groups],
        )
        if index is None:
            home = self.groups[preferred]
            assert home.tracker is not None
            home.tracker.record_submit()
            home.tracker.record_failed()
            dead: asyncio.Future[DecodeResponse | None] = (
                asyncio.get_running_loop().create_future()
            )
            dead.set_result(None)
            return dead
        group = self.groups[index]
        assert group.scheduler is not None and group.tracker is not None
        if index != preferred:
            group.tracker.record_failover()
        if self.admission is not None and not self.admission.admit(
            group, deadline_rel_ms
        ):
            group.tracker.record_shed()
            shed: asyncio.Future[DecodeResponse | None] = (
                asyncio.get_running_loop().create_future()
            )
            shed.set_result(None)
            return shed
        return group.scheduler.submit_nowait(
            avatar_id, frame_index, deadline_rel_ms
        )

    async def close(self) -> None:
        for group in self.groups:
            await group.close()

    def report(self, avatars: int, duration_ms: float) -> ServingReport:
        """Aggregate + per-group SLOs of the finished session.

        A single-group cluster reports the group's own policy name (and
        identical SLO numbers to the plain scheduler path); mixed
        clusters report ``cluster(<router>)``.
        """
        first = self.groups[0]
        assert first.scheduler is not None and first.tracker is not None
        merged = SloTracker(
            deadline_ms=first.tracker.deadline_ms,
            deadline_tiers_ms=first.tracker.deadline_tiers_ms,
        )
        utilization: tuple[float, ...] = ()
        for group in self.groups:
            assert group.tracker is not None
            merged.merge(group.tracker)
            utilization += group.pool.utilizations(duration_ms)
        policy = (
            first.scheduler.policy.name
            if len(self.groups) == 1
            else f"cluster({self.router.name})"
        )
        return merged.report(
            policy=policy,
            avatars=avatars,
            duration_ms=duration_ms,
            replica_utilization=utilization,
            max_batch=max(g.scheduler.max_batch for g in self.groups),
            batch_window_ms=first.scheduler.batch_window_ms,
            router=self.router.name,
            groups=tuple(group.report(duration_ms) for group in self.groups),
            reconnects=sum(
                getattr(g.scheduler.transport, "reconnects", 0)
                for g in self.groups
            ),
        )


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------
async def run_cluster_session(cluster: Cluster, workload) -> ServingReport:
    """Serve one workload through a cluster on an open event loop."""
    from repro.serving.workload import _avatar_client

    anchor_session_clock()
    cluster.start(workload.deadline_ms, workload.deadline_tiers)
    clients = [
        asyncio.get_running_loop().create_task(
            _avatar_client(cluster, workload, avatar_id)
        )
        for avatar_id in range(workload.avatars)
    ]
    await asyncio.gather(*clients)
    await cluster.close()
    duration_ms = now_ms()
    return cluster.report(avatars=workload.avatars, duration_ms=duration_ms)


def serve_cluster(
    groups: Cluster | Sequence[GroupSpec | ReplicaGroup],
    workload,
    router: str | RoutingPolicy = "round-robin",
    admission: AdmissionControl | bool | None = None,
    real_time: bool = False,
    chaos: ChaosPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> ServingReport:
    """Run a whole cluster serving session; deterministic on the virtual clock.

    Pass a prebuilt :class:`Cluster` (its router/admission/chaos win) or
    a list of group specs plus ``router=``/``admission=``/``chaos=``.
    """
    if not isinstance(groups, Cluster):
        groups = Cluster(
            groups,
            router=router,
            admission=admission,
            chaos=chaos,
            recovery=recovery,
        )
    return run_session(
        run_cluster_session(groups, workload), real_time=real_time
    )


__all__ = [
    "Cluster",
    "GroupSpec",
    "ReplicaGroup",
    "run_cluster_session",
    "serve_cluster",
]
