"""Decode request/response model for the avatar serving layer.

One :class:`DecodeRequest` asks for one avatar frame: "decode the latent
code that arrived at ``arrival_ms`` for avatar ``avatar_id``, before
``deadline_ms``". The scheduler batches requests onto accelerator
replicas and answers each with a :class:`DecodeResponse` carrying the
full timing record (queueing, service, deadline outcome) the SLO tracker
aggregates.

All timestamps are milliseconds on the session clock — virtual
milliseconds in the deterministic simulated-clock mode, wall-clock
milliseconds in real-time mode.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DecodeRequest:
    """One avatar-frame decode request."""

    request_id: int
    avatar_id: int
    frame_index: int
    arrival_ms: float
    deadline_ms: float  # absolute deadline on the session clock

    def slack_ms(self, now_ms: float) -> float:
        """Decode budget still left at ``now_ms`` (negative = already late).

        This is what deadline-aware routing and admission control reason
        about: a request with little slack must go to a low-latency
        replica group (or be shed) while one with plenty can ride a
        throughput-oriented batch.
        """
        return self.deadline_ms - now_ms


@dataclass(frozen=True)
class DecodeResponse:
    """Timing record of one served decode request."""

    request: DecodeRequest
    replica_id: int
    batch_id: int
    batch_size: int
    start_ms: float  # when the batch hit the replica
    finish_ms: float  # when this frame left the replica
    #: Replica group that served the frame ("" outside a cluster session).
    group: str = ""

    @property
    def latency_ms(self) -> float:
        """Arrival-to-finish latency (what the user perceives)."""
        return self.finish_ms - self.request.arrival_ms

    @property
    def queue_ms(self) -> float:
        """Time spent waiting before the replica started the batch."""
        return self.start_ms - self.request.arrival_ms

    @property
    def service_ms(self) -> float:
        """Time on the replica itself."""
        return self.finish_ms - self.start_ms

    @property
    def deadline_missed(self) -> bool:
        """True when the frame finished after its absolute deadline."""
        return self.finish_ms > self.request.deadline_ms


__all__ = ["DecodeRequest", "DecodeResponse"]
