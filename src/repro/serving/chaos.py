"""Deterministic chaos plans and recovery policy for the serving layer.

Chaos engineering for the serving simulator: a :class:`ChaosPlan`
describes per-replica faults — crash on the Nth dispatched batch,
permanent death past a session time, a one-shot transient stall, a
degraded-latency multiplier — and both engines (the asyncio scheduler
and the event heap) inject them at identical points. Every trigger is a
dispatch counter or a virtual-clock time, never a wall clock or an RNG,
so two runs of the same seeded session inject *identical* faults and the
engines' equivalence guarantee extends to faulty runs.

Spec grammar (comma-separated clauses)::

    crash-at:REP:N      replica REP dies dispatching its Nth batch
                        (1-based); that batch fails at its would-be
                        finish time — the elapsed service time is the
                        failure-detection latency.
    die-at:REP:T        replica REP is dead for any dispatch at or after
                        session time T ms. Death is observed lazily, at
                        the next dispatch — an idle replica dies the
                        moment work reaches it.
    stall:REP:N:D       after REP's Nth batch completes, the replica is
                        held out of rotation for D extra ms (health
                        ``degraded`` while stalled, then ``up``).
    degrade:REP:N:M     from REP's Nth dispatch on, service times
                        stretch by factor M (health ``degraded``).

``REP`` is a replica index, optionally group-qualified:``3`` targets
replica 3 of *every* group (the natural form for a single pool), while
``throughput/0`` targets replica 0 of the group named ``throughput``.
Indices refer to session-start replica numbering; replacements provision
with fresh indices past the initial fleet, so a replacement is fault-free
unless a clause targets its index explicitly.

The recovery knobs live in :class:`RecoveryPolicy`; the per-group
trip-and-divert state machine is :class:`CircuitBreaker`. With no chaos
plan and default recovery knobs, no fault ever fires and no recovery
path runs — sessions are bit-identical to the pre-chaos stack.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fault kinds and the number of ``:``-separated fields each clause takes
#: (including the kind itself).
_KINDS = {"crash-at": 3, "die-at": 3, "stall": 4, "degrade": 4}


@dataclass(frozen=True)
class ChaosFault:
    """One parsed fault clause, targeting one replica."""

    kind: str  # "crash-at" | "die-at" | "stall" | "degrade"
    group: str  # "" = any group
    replica: int
    at: float  # batch ordinal (1-based) or session time ms
    value: float = 0.0  # stall duration ms / degrade multiplier

    def to_spec(self) -> str:
        rep = f"{self.group}/{self.replica}" if self.group else str(self.replica)
        at = int(self.at) if self.kind != "die-at" else self.at
        if self.kind in ("stall", "degrade"):
            return f"{self.kind}:{rep}:{at}:{self.value}"
        return f"{self.kind}:{rep}:{at}"


@dataclass(frozen=True)
class ChaosPlan:
    """A full chaos plan: every fault of a session, parsed and frozen."""

    faults: tuple[ChaosFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse the comma-separated clause grammar (see module doc)."""
        faults: list[ChaosFault] = []
        seen: set[tuple[str, str, int]] = set()
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            kind = parts[0].strip()
            if kind not in _KINDS:
                known = ", ".join(sorted(_KINDS))
                raise ValueError(
                    f"unknown chaos fault {kind!r}; known faults: {known}"
                )
            if len(parts) != _KINDS[kind]:
                raise ValueError(
                    f"chaos fault {clause!r}: expected "
                    f"{_KINDS[kind] - 1} ':'-separated arguments after "
                    f"{kind!r}"
                )
            group, _, index_text = parts[1].strip().rpartition("/")
            try:
                replica = int(index_text)
            except ValueError as exc:
                raise ValueError(
                    f"chaos fault {clause!r}: replica must be an integer "
                    f"index (optionally 'group/index'), got {parts[1]!r}"
                ) from exc
            if replica < 0:
                raise ValueError(
                    f"chaos fault {clause!r}: replica index must be >= 0"
                )
            try:
                at = float(parts[2])
                value = float(parts[3]) if len(parts) > 3 else 0.0
            except ValueError as exc:
                raise ValueError(
                    f"chaos fault {clause!r}: numeric argument expected"
                ) from exc
            if kind != "die-at" and (at < 1 or at != int(at)):
                raise ValueError(
                    f"chaos fault {clause!r}: batch ordinal must be a "
                    f"positive integer"
                )
            if kind == "die-at" and at < 0:
                raise ValueError(
                    f"chaos fault {clause!r}: death time must be >= 0 ms"
                )
            if kind == "stall" and value <= 0:
                raise ValueError(
                    f"chaos fault {clause!r}: stall duration must be "
                    f"positive"
                )
            if kind == "degrade" and value <= 1.0:
                raise ValueError(
                    f"chaos fault {clause!r}: degrade multiplier must be "
                    f"> 1"
                )
            key = (kind, group, replica)
            if key in seen:
                raise ValueError(
                    f"chaos fault {clause!r}: duplicate {kind!r} clause "
                    f"for replica {parts[1]!r}"
                )
            seen.add(key)
            faults.append(
                ChaosFault(
                    kind=kind, group=group, replica=replica, at=at, value=value
                )
            )
        return cls(faults=tuple(faults))

    def to_spec(self) -> str:
        """Inverse of :meth:`parse`."""
        return ",".join(fault.to_spec() for fault in self.faults)

    def for_group(self, group_name: str) -> tuple[ChaosFault, ...]:
        return tuple(
            fault
            for fault in self.faults
            if not fault.group or fault.group == group_name
        )

    def states(self, group_name: str) -> dict[int, "ReplicaChaosState"]:
        """Fresh mutable per-replica fault state for one group's session.

        The plan itself stays frozen and reusable; each session gets its
        own counters.
        """
        states: dict[int, ReplicaChaosState] = {}
        for fault in self.for_group(group_name):
            state = states.setdefault(fault.replica, ReplicaChaosState())
            if fault.kind == "crash-at":
                state.crash_at = int(fault.at)
            elif fault.kind == "die-at":
                state.die_at_ms = fault.at
            elif fault.kind == "stall":
                state.stall_at = int(fault.at)
                state.stall_ms = fault.value
            elif fault.kind == "degrade":
                state.degrade_at = int(fault.at)
                state.degrade_factor = fault.value
        return states


@dataclass
class DispatchOutcome:
    """What the chaos layer decided for one dispatched batch."""

    crashed: bool  # the replica dies; this batch fails
    latency_factor: float  # stretch this batch's service times
    stall_ms: float  # hold the replica out this long after finishing


class ReplicaChaosState:
    """Mutable fault counters for one replica in one session."""

    def __init__(self) -> None:
        self.crash_at: int = 0
        self.die_at_ms: float | None = None
        self.stall_at: int = 0
        self.stall_ms: float = 0.0
        self.degrade_at: int = 0
        self.degrade_factor: float = 1.0
        self.dispatches = 0

    def on_dispatch(self, start_ms: float) -> DispatchOutcome:
        """Advance the counters for a batch dispatched at ``start_ms``."""
        self.dispatches += 1
        crashed = bool(
            (self.crash_at and self.dispatches >= self.crash_at)
            or (self.die_at_ms is not None and start_ms >= self.die_at_ms)
        )
        factor = (
            self.degrade_factor
            if self.degrade_at and self.dispatches >= self.degrade_at
            else 1.0
        )
        stall = (
            self.stall_ms
            if self.stall_at and self.dispatches == self.stall_at
            else 0.0
        )
        return DispatchOutcome(
            crashed=crashed, latency_factor=factor, stall_ms=stall
        )

    @property
    def degraded(self) -> bool:
        return bool(self.degrade_at and self.dispatches >= self.degrade_at)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the serving stack responds to replica faults.

    The defaults change nothing on a fault-free run: retries, hedging,
    breakers, and replacement only ever act *after* a failure or a
    predicted miss, and without a chaos plan (or a dying transport)
    neither occurs.
    """

    #: Times a frame whose batch failed is re-enqueued before it is
    #: counted ``failed`` (it keeps its original arrival and deadline,
    #: so elapsed latency is charged in full).
    max_retries: int = 2
    #: Duplicate a frame to a second free replica when its predicted
    #: completion exceeds its deadline; first finish wins, both replicas
    #: are charged their full occupancy.
    hedge: bool = False
    #: Consecutive failed batches that trip a group's circuit breaker
    #: (0 disables the breaker).
    breaker_threshold: int = 3
    #: Provision a cold replacement this many ms after a replica dies
    #: (``None`` disables replacement).
    replace_after_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.replace_after_ms is not None and self.replace_after_ms < 0:
            raise ValueError("replace_after_ms must be >= 0")


class CircuitBreaker:
    """Trip after K consecutive batch failures; close on any success.

    While open, the cluster front door (and the heap engine's router)
    divert new traffic away from the group — frames already queued there
    stay, and the first batch a surviving or replacement replica
    completes closes the breaker again. Purely event-driven, so both
    engines flip it at identical session times.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.consecutive_failures = 0
        self.open = False
        self.trips = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.threshold
            and not self.open
            and self.consecutive_failures >= self.threshold
        ):
            self.open = True
            self.trips += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.open = False


__all__ = [
    "ChaosFault",
    "ChaosPlan",
    "CircuitBreaker",
    "DispatchOutcome",
    "RecoveryPolicy",
    "ReplicaChaosState",
]
